//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this vendor
//! crate implements exactly the rand 0.9 API surface the workspace uses:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`] — seeded, portable,
//!   deterministic (xoshiro256** seeded through SplitMix64),
//! * [`Rng::random`] for `f64` and `bool`,
//! * [`Rng::random_range`] over integer and float ranges,
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Streams are *not* bit-compatible with the real `rand` crate; every
//! consumer in this workspace only relies on seed-determinism, which holds:
//! equal seeds give identical sequences on every platform.

/// Core source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a reproducible generator from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG via [`Rng::random`].
pub trait StandardSample: Sized {
    /// Draw one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges samplable via [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the (non-empty) range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the bias at
                // 64-bit spans is far below anything a test could observe.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// User-facing extension trait: `random`, `random_range`.
pub trait Rng: RngCore {
    /// Uniform value of type `T` (`f64` in `[0,1)`, fair `bool`, raw `u64`).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    /// Deterministic xoshiro256** generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard xoshiro seeding procedure.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice utilities.

    /// In-place uniform shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: crate::RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: crate::RngCore + ?Sized>(&mut self, rng: &mut R) {
            use crate::SampleRange;
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02, "mean {}", sum / 10_000.0);
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.random_range(0..5usize);
            seen[v] = true;
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.random_range(-4i32..4);
            assert!((-4..4).contains(&i));
        }
        assert!(seen.iter().all(|&s| s), "all of 0..5 hit: {seen:?}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "20 elements almost surely move");
    }
}
