//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this vendor crate
//! implements the criterion API surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, `Bencher::iter` — backed by plain
//! wall-clock measurement: each benchmark is warmed up once, sampled
//! `sample_size` times, and its min/mean/max per-iteration time printed.
//! Statistical analysis, plotting, and baselines are intentionally absent.

use std::hint;
use std::time::Instant;

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level driver handed to every `criterion_group!` target.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.default_sample_size, _c: self }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&id.into(), self.default_sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time `f` and print the result under `group/id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// End the group (no-op beyond matching criterion's API).
    pub fn finish(self) {}
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    samples_ns: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            hint::black_box(routine());
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
        }
    }
}

fn run_benchmark(id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { samples_ns: Vec::with_capacity(sample_size), sample_size };
    f(&mut b);
    if b.samples_ns.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let min = b.samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = b.samples_ns.iter().cloned().fold(0.0, f64::max);
    let mean = b.samples_ns.iter().sum::<f64>() / b.samples_ns.len() as f64;
    println!(
        "{id:<40} time: [{} {} {}] ({} samples)",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max),
        b.samples_ns.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declare a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert_eq!(calls, 4, "1 warm-up + 3 samples");
    }

    #[test]
    fn format_spans_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2e9).ends_with('s'));
    }
}
