//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this vendor crate
//! implements the criterion API surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, `Bencher::iter` — backed by plain
//! wall-clock measurement: each benchmark is warmed up once, sampled
//! `sample_size` times, and its summary statistics (min / mean ± stddev /
//! max) printed. Plotting and baseline comparison are intentionally absent.
//!
//! Two environment variables extend the harness for trajectory tracking
//! and CI smoke runs:
//!
//! * `PARALLAX_BENCH_SAMPLES=N` — override every benchmark's sample count
//!   (e.g. `1` for a single-sample CI smoke that only proves the bench
//!   still runs).
//! * `PARALLAX_BENCH_JSON_DIR=dir` — additionally write one
//!   `BENCH_<id>.json` per benchmark into `dir` (created if missing) with
//!   the raw samples and summary statistics, for `BENCH_*.json`
//!   trajectory tracking across commits.

use std::hint;
use std::time::Instant;

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level driver handed to every `criterion_group!` target.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.default_sample_size, _c: self }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&id.into(), self.default_sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time `f` and print the result under `group/id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// End the group (no-op beyond matching criterion's API).
    pub fn finish(self) {}
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    samples_ns: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            hint::black_box(routine());
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
        }
    }
}

/// Summary statistics over one benchmark's timed samples (nanoseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct SampleStats {
    /// Fastest sample.
    pub min_ns: f64,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Sample standard deviation (`n-1` denominator; 0 for one sample).
    pub stddev_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Number of timed samples.
    pub count: usize,
}

impl SampleStats {
    /// Compute statistics over `samples_ns`. Returns `None` when empty.
    pub fn from_samples(samples_ns: &[f64]) -> Option<Self> {
        if samples_ns.is_empty() {
            return None;
        }
        let count = samples_ns.len();
        let min_ns = samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_ns = samples_ns.iter().cloned().fold(0.0, f64::max);
        let mean_ns = samples_ns.iter().sum::<f64>() / count as f64;
        let stddev_ns = if count < 2 {
            0.0
        } else {
            let var = samples_ns.iter().map(|s| (s - mean_ns) * (s - mean_ns)).sum::<f64>()
                / (count - 1) as f64;
            var.sqrt()
        };
        Some(Self { min_ns, mean_ns, stddev_ns, max_ns, count })
    }

    /// Render as a JSON object (hand-rolled: the workspace is offline and
    /// has no serde).
    pub fn to_json(&self, id: &str) -> String {
        format!(
            "{{\"id\":{},\"samples\":{},\"min_ns\":{},\"mean_ns\":{},\
             \"stddev_ns\":{},\"max_ns\":{}}}",
            json_string(id),
            self.count,
            json_f64(self.min_ns),
            json_f64(self.mean_ns),
            json_f64(self.stddev_ns),
            json_f64(self.max_ns),
        )
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".to_string()
    }
}

/// Sanitize a benchmark id into a filename stem (`fig9/TFIM` →
/// `fig9_TFIM`).
fn sanitize_id(id: &str) -> String {
    id.chars().map(|c| if c.is_ascii_alphanumeric() || c == '-' { c } else { '_' }).collect()
}

fn sample_size_override() -> Option<usize> {
    std::env::var("PARALLAX_BENCH_SAMPLES").ok()?.parse::<usize>().ok().map(|n| n.max(1))
}

fn maybe_dump_json(id: &str, stats: &SampleStats) {
    let Ok(dir) = std::env::var("PARALLAX_BENCH_JSON_DIR") else { return };
    if dir.is_empty() {
        return;
    }
    let dir = std::path::Path::new(&dir);
    let write = |dir: &std::path::Path| {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("BENCH_{}.json", sanitize_id(id))), stats.to_json(id))
    };
    if let Err(e) = write(dir) {
        eprintln!("warning: PARALLAX_BENCH_JSON_DIR={}: {e}", dir.display());
    }
}

fn run_benchmark(id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let sample_size = sample_size_override().unwrap_or(sample_size);
    let mut b = Bencher { samples_ns: Vec::with_capacity(sample_size), sample_size };
    f(&mut b);
    let Some(stats) = SampleStats::from_samples(&b.samples_ns) else {
        println!("{id:<40} (no samples)");
        return;
    };
    println!(
        "{id:<40} time: [{} {} {}] σ {} ({} samples)",
        fmt_ns(stats.min_ns),
        fmt_ns(stats.mean_ns),
        fmt_ns(stats.max_ns),
        fmt_ns(stats.stddev_ns),
        stats.count
    );
    maybe_dump_json(id, &stats);
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declare a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert_eq!(calls, 4, "1 warm-up + 3 samples");
    }

    #[test]
    fn format_spans_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2e9).ends_with('s'));
    }

    #[test]
    fn stats_match_hand_computation() {
        let s = SampleStats::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.min_ns, 2.0);
        assert_eq!(s.max_ns, 9.0);
        assert_eq!(s.mean_ns, 5.0);
        assert_eq!(s.count, 8);
        // Sample stddev of this classic set: sqrt(32/7).
        assert!((s.stddev_ns - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn stats_degenerate_cases() {
        assert!(SampleStats::from_samples(&[]).is_none());
        let one = SampleStats::from_samples(&[5.0]).unwrap();
        assert_eq!(one.stddev_ns, 0.0);
        assert_eq!(one.min_ns, one.max_ns);
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let s = SampleStats::from_samples(&[1.0, 3.0]).unwrap();
        let j = s.to_json("fig9/TFIM \"q128\"");
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"id\":\"fig9/TFIM \\\"q128\\\"\""));
        assert!(j.contains("\"samples\":2"));
        assert!(j.contains("\"mean_ns\":2.0"));
    }

    #[test]
    fn sanitizes_ids_for_filenames() {
        assert_eq!(sanitize_id("fig9/TFIM q=128"), "fig9_TFIM_q_128");
        assert_eq!(sanitize_id("table4-runtime"), "table4-runtime");
    }

    #[test]
    fn json_dump_writes_bench_file() {
        let dir = std::env::temp_dir().join(format!("parallax-bench-json-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("PARALLAX_BENCH_JSON_DIR", &dir);
        let stats = SampleStats::from_samples(&[10.0, 20.0]).unwrap();
        maybe_dump_json("g/bench one", &stats);
        std::env::remove_var("PARALLAX_BENCH_JSON_DIR");
        let body = std::fs::read_to_string(dir.join("BENCH_g_bench_one.json")).unwrap();
        assert!(body.contains("\"samples\":2"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
