//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this vendor crate
//! implements the subset of proptest this workspace's property tests use:
//! range and tuple strategies, `prop_map`, `prop_oneof!`,
//! `proptest::collection::vec`, `ProptestConfig::with_cases`, and the
//! `proptest!`/`prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from real proptest: cases are generated from a fixed seed
//! (fully deterministic run-to-run) and failing cases are reported but
//! **not shrunk**.

use rand::rngs::StdRng;

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Output of [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            self.0.new_value(rng)
        }
    }

    /// Uniform choice among alternatives; output of [`crate::prop_oneof!`].
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Choose uniformly among `options` on every generated value.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            let i = rng.random_range(0..self.options.len());
            self.options[i].new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut StdRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    /// `Just`-style constant strategy.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case execution: config and failure type.

    /// Runner configuration (only `cases` is honoured).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// A failed property, carrying the `prop_assert!` message.
    #[derive(Debug)]
    pub struct TestCaseError {
        /// Human-readable failure description.
        pub message: String,
    }

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(message: impl Into<String>) -> Self {
            Self { message: message.into() }
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Drive `body` for `config.cases` deterministic cases; panic on the first
/// failure (no shrinking). Called by the [`proptest!`] macro expansion.
pub fn run_proptest(
    config: test_runner::ProptestConfig,
    name: &str,
    mut body: impl FnMut(&mut StdRng) -> Result<(), test_runner::TestCaseError>,
) {
    use rand::SeedableRng;
    // Per-test seed derived from the test name (FNV-1a) so sibling tests
    // explore different streams but every run is identical.
    let seed = name
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x1000_0000_01b3));
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..config.cases {
        if let Err(e) = body(&mut rng) {
            panic!("proptest '{name}' failed at case {case}/{}: {e}", config.cases);
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest($cfg, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), __proptest_rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: {:?} == {:?}", lhs, rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs == rhs, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs != rhs, "assertion failed: {:?} != {:?}", lhs, rhs);
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u32..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y), "y = {y}");
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0usize..5, 2..=6)) {
            prop_assert!(v.len() >= 2 && v.len() <= 6);
            for e in v {
                prop_assert!(e < 5);
            }
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                (0u32..4).prop_map(|x| x * 2),
                (10u32..14).prop_map(|x| x + 1),
            ]
        ) {
            prop_assert!(v % 2 == 0 && v < 8 || (11..15).contains(&v), "v = {v}");
        }
    }

    proptest! {
        #[test]
        fn early_ok_return_supported(x in 0u8..2) {
            if x == 0 {
                return Ok(());
            }
            prop_assert_eq!(x, 1);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        crate::run_proptest(ProptestConfig::with_cases(16), "failures_panic", |rng| {
            let x = Strategy::new_value(&(5u32..9), rng);
            prop_assert!(x < 7, "x was {}", x);
            Ok(())
        });
    }
}
