//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this vendor crate
//! implements the subset of proptest this workspace's property tests use:
//! range and tuple strategies, `prop_map`, `prop_oneof!`,
//! `proptest::collection::vec`, `ProptestConfig::with_cases`, and the
//! `proptest!`/`prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from real proptest: cases are generated from a fixed seed
//! (fully deterministic run-to-run) and failing cases are reported but
//! **not shrunk**.
//!
//! Two environment variables mirror real proptest's CI ergonomics:
//!
//! * `PROPTEST_CASES=<n>` overrides every test's case count (the nightly
//!   extended CI job raises it to hammer the same deterministic streams
//!   further than the fast default);
//! * `PROPTEST_FAILURES_DIR=<dir>` makes a failing property also write a
//!   `<test-name>.txt` replay file (test name, failing case index, derived
//!   stream seed, message) into `<dir>` before panicking, which CI uploads
//!   as an artifact. Because generation is name-seeded and deterministic,
//!   re-running the named test with at least `case + 1` cases replays the
//!   failure exactly.

use rand::rngs::StdRng;

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Output of [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            self.0.new_value(rng)
        }
    }

    /// Uniform choice among alternatives; output of [`crate::prop_oneof!`].
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Choose uniformly among `options` on every generated value.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            let i = rng.random_range(0..self.options.len());
            self.options[i].new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut StdRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    /// `Just`-style constant strategy.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case execution: config and failure type.

    /// Runner configuration (only `cases` is honoured).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// A failed property, carrying the `prop_assert!` message.
    #[derive(Debug)]
    pub struct TestCaseError {
        /// Human-readable failure description.
        pub message: String,
    }

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(message: impl Into<String>) -> Self {
            Self { message: message.into() }
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// The case count to actually run: the `PROPTEST_CASES` value when set
/// and parsable, the config's count otherwise.
pub fn effective_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Err(_) => configured,
        Ok(v) => match v.trim().parse::<u32>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!(
                    "warning: PROPTEST_CASES={v:?} is not a positive case count; \
                     keeping the configured {configured}"
                );
                configured
            }
        },
    }
}

/// Drive `body` for [`effective_cases`] deterministic cases; panic on the
/// first failure (no shrinking), writing a replay file when
/// `PROPTEST_FAILURES_DIR` is set. Called by the [`proptest!`] macro
/// expansion.
pub fn run_proptest(
    config: test_runner::ProptestConfig,
    name: &str,
    body: impl FnMut(&mut StdRng) -> Result<(), test_runner::TestCaseError>,
) {
    let failures_dir = std::env::var_os("PROPTEST_FAILURES_DIR").map(std::path::PathBuf::from);
    run_proptest_with(effective_cases(config.cases), name, failures_dir.as_deref(), body);
}

/// [`run_proptest`] with the case count and failure directory fully
/// explicit (tests drive this directly — mutating process environment
/// variables from concurrently running tests would race).
pub fn run_proptest_with(
    cases: u32,
    name: &str,
    failures_dir: Option<&std::path::Path>,
    mut body: impl FnMut(&mut StdRng) -> Result<(), test_runner::TestCaseError>,
) {
    use rand::SeedableRng;
    // Per-test seed derived from the test name (FNV-1a) so sibling tests
    // explore different streams but every run is identical.
    let seed = name
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x1000_0000_01b3));
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..cases {
        if let Err(e) = body(&mut rng) {
            let mut report = format!("proptest '{name}' failed at case {case}/{cases}: {e}");
            if let Some(dir) = failures_dir {
                match write_failure_file(dir, name, case, cases, seed, &e.message) {
                    Ok(path) => {
                        report.push_str(&format!(" (replay file: {})", path.display()));
                    }
                    Err(io) => {
                        report.push_str(&format!(" (could not write replay file: {io})"));
                    }
                }
            }
            panic!("{report}");
        }
    }
}

/// Write the deterministic replay recipe for a failing case; returns the
/// file's path.
fn write_failure_file(
    dir: &std::path::Path,
    name: &str,
    case: u32,
    cases: u32,
    seed: u64,
    message: &str,
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    // Test names are Rust identifiers, so they are safe as file names.
    let path = dir.join(format!("{name}.txt"));
    std::fs::write(
        &path,
        format!(
            "test: {name}\nfailing_case: {case}\ncases_run: {cases}\nstream_seed: {seed:#018x}\n\
             message: {message}\nreplay: cases are generated deterministically from the test \
             name; run the named test with PROPTEST_CASES={min_cases} or more to reproduce.\n",
            min_cases = case + 1
        ),
    )?;
    Ok(path)
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest($cfg, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), __proptest_rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: {:?} == {:?}", lhs, rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs == rhs, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs != rhs, "assertion failed: {:?} != {:?}", lhs, rhs);
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u32..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y), "y = {y}");
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0usize..5, 2..=6)) {
            prop_assert!(v.len() >= 2 && v.len() <= 6);
            for e in v {
                prop_assert!(e < 5);
            }
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                (0u32..4).prop_map(|x| x * 2),
                (10u32..14).prop_map(|x| x + 1),
            ]
        ) {
            prop_assert!(v % 2 == 0 && v < 8 || (11..15).contains(&v), "v = {v}");
        }
    }

    proptest! {
        #[test]
        fn early_ok_return_supported(x in 0u8..2) {
            if x == 0 {
                return Ok(());
            }
            prop_assert_eq!(x, 1);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        // run_proptest_with + None: this deliberate failure must not leave
        // a replay file behind when CI sets PROPTEST_FAILURES_DIR.
        crate::run_proptest_with(16, "failures_panic", None, |rng| {
            let x = Strategy::new_value(&(5u32..9), rng);
            prop_assert!(x < 7, "x was {}", x);
            Ok(())
        });
    }

    #[test]
    fn effective_cases_respects_config_without_env() {
        // The test environment never sets PROPTEST_CASES for the regular
        // run; with it set this assertion is vacuous but harmless.
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(crate::effective_cases(24), 24);
        }
    }

    #[test]
    fn failing_case_writes_a_replay_file() {
        let dir = std::env::temp_dir().join(format!("proptest-failures-{}", std::process::id()));
        let result = std::panic::catch_unwind(|| {
            crate::run_proptest_with(16, "write_replay_probe", Some(&dir), |rng| {
                let x = Strategy::new_value(&(5u32..9), rng);
                prop_assert!(x < 6, "x was {}", x);
                Ok(())
            });
        });
        assert!(result.is_err(), "the property must fail");
        let content = std::fs::read_to_string(dir.join("write_replay_probe.txt"))
            .expect("replay file must exist");
        assert!(content.contains("test: write_replay_probe"), "{content}");
        assert!(content.contains("failing_case:"), "{content}");
        assert!(content.contains("stream_seed: 0x"), "{content}");
        assert!(content.contains("PROPTEST_CASES="), "{content}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
