//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this vendor crate
//! implements the subset of proptest this workspace's property tests use:
//! range and tuple strategies, `prop_map`, `prop_oneof!`,
//! `proptest::collection::vec`, `ProptestConfig::with_cases`, and the
//! `proptest!`/`prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from real proptest: cases are generated from a fixed seed
//! (fully deterministic run-to-run), and shrinking is a bounded greedy
//! descent over [`strategy::Strategy::shrink`] candidates rather than a
//! full value-tree search. Range, tuple, and `collection::vec` strategies
//! shrink (toward the range minimum / fewer elements); `prop_map` and
//! `prop_oneof!` outputs do not (the map inverse and the producing arm are
//! unknown), and custom strategies opt in by overriding `shrink`.
//!
//! Two environment variables mirror real proptest's CI ergonomics:
//!
//! * `PROPTEST_CASES=<n>` overrides every test's case count (the nightly
//!   extended CI job raises it to hammer the same deterministic streams
//!   further than the fast default);
//! * `PROPTEST_FAILURES_DIR=<dir>` makes a failing property also write a
//!   `<test-name>.txt` replay file (test name, failing case index, derived
//!   stream seed, message, and the minimal shrunk counterexample) into
//!   `<dir>` before panicking, which CI uploads as an artifact. Because
//!   generation is name-seeded and deterministic, re-running the named
//!   test with at least `case + 1` cases replays the original failure
//!   exactly; the `minimal:` line records the shrunk value verbatim.

use rand::rngs::StdRng;

// For downstream custom `Strategy` impls (e.g. `parallax-testkit`): the
// RNG type `new_value` receives, so implementors can name it without
// depending on the vendored `rand` directly.
pub use rand::rngs::StdRng as TestRng;

pub mod strategy {
    //! Value-generation strategies with minimal greedy shrinking.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Candidate simplifications of a failing `value`, most aggressive
        /// first; the runner greedily descends through whichever candidate
        /// still fails. The default — no candidates — keeps strategies
        /// that cannot invert their construction (`prop_map`,
        /// `prop_oneof!`, custom impls) correct, just unshrunk.
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Output of [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            self.0.new_value(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            self.0.shrink(value)
        }
    }

    /// Uniform choice among alternatives; output of [`crate::prop_oneof!`].
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Choose uniformly among `options` on every generated value.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            let i = rng.random_range(0..self.options.len());
            self.options[i].new_value(rng)
        }
    }

    /// Shrink candidates for a numeric value toward the range minimum:
    /// straight to `lo`, halfway to `lo`, one step down. Shared by every
    /// integer range impl.
    macro_rules! int_shrink {
        ($value:expr, $lo:expr) => {{
            let (value, lo) = (*$value, $lo);
            let mut out = Vec::new();
            if value != lo {
                out.push(lo);
                let mid = lo + (value - lo) / 2;
                if mid != lo && mid != value {
                    out.push(mid);
                }
                let dec = value - 1;
                if dec != lo && dec != mid && dec != value {
                    out.push(dec);
                }
            }
            out
        }};
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    int_shrink!(value, self.start)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    int_shrink!(value, *self.start())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut StdRng) -> f64 {
            rng.random_range(self.clone())
        }
        fn shrink(&self, value: &f64) -> Vec<f64> {
            let lo = self.start;
            let mut out = Vec::new();
            if *value != lo {
                out.push(lo);
                // Zero is the canonical "simple" float when the range
                // straddles it (e.g. angle ranges like -3.2..3.2).
                if lo < 0.0 && *value != 0.0 && self.contains(&0.0) {
                    out.push(0.0);
                }
                let mid = lo + (*value - lo) / 2.0;
                if mid.is_finite() && mid != lo && mid != *value {
                    out.push(mid);
                }
            }
            out
        }
    }

    /// `Just`-style constant strategy.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($name:ident, $field:ident, $idx:tt)),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+)
            where
                $($name::Value: Clone),+
            {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
                /// Component-wise: every candidate of every component,
                /// substituted one at a time.
                #[allow(non_snake_case)]
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let ($($name,)+) = self;
                    let ($($field,)+) = value;
                    let mut out = Vec::new();
                    $(
                        for cand in $name.shrink($field) {
                            let mut next = value.clone();
                            next.$idx = cand;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        };
    }
    impl_tuple_strategy!((A, a, 0));
    impl_tuple_strategy!((A, a, 0), (B, b, 1));
    impl_tuple_strategy!((A, a, 0), (B, b, 1), (C, c, 2));
    impl_tuple_strategy!((A, a, 0), (B, b, 1), (C, c, 2), (D, d, 3));
    impl_tuple_strategy!((A, a, 0), (B, b, 1), (C, c, 2), (D, d, 3), (E, e, 4));
    impl_tuple_strategy!((A, a, 0), (B, b, 1), (C, c, 2), (D, d, 3), (E, e, 4), (F, f, 5));
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
        /// Structurally smaller first (respecting the minimum length):
        /// aggressive prefix truncations, then dropping each single
        /// element, then element-wise candidates substituted one at a
        /// time.
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let lo = self.size.lo;
            if value.len() > lo {
                out.push(value[..lo].to_vec());
                let half = lo.max(value.len() / 2);
                if half != lo && half != value.len() {
                    out.push(value[..half].to_vec());
                }
                // Dropping any one element keeps an offending element
                // reachable wherever it sits in the vector.
                for i in 0..value.len() {
                    let mut next = value.clone();
                    next.remove(i);
                    out.push(next);
                }
            }
            for (i, v) in value.iter().enumerate() {
                for cand in self.element.shrink(v) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }
}

pub mod test_runner {
    //! Case execution: config and failure type.

    /// Runner configuration (only `cases` is honoured).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// A failed property, carrying the `prop_assert!` message.
    #[derive(Debug)]
    pub struct TestCaseError {
        /// Human-readable failure description.
        pub message: String,
    }

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(message: impl Into<String>) -> Self {
            Self { message: message.into() }
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// The case count to actually run: the `PROPTEST_CASES` value when set
/// and parsable, the config's count otherwise.
pub fn effective_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Err(_) => configured,
        Ok(v) => match v.trim().parse::<u32>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!(
                    "warning: PROPTEST_CASES={v:?} is not a positive case count; \
                     keeping the configured {configured}"
                );
                configured
            }
        },
    }
}

/// Drive `body` for [`effective_cases`] deterministic cases; panic on the
/// first failure (no shrinking), writing a replay file when
/// `PROPTEST_FAILURES_DIR` is set. The raw rng-closure entry point for
/// callers that manage generation themselves; the [`proptest!`] macro goes
/// through the shrinking [`run_proptest_shrink`] instead.
pub fn run_proptest(
    config: test_runner::ProptestConfig,
    name: &str,
    body: impl FnMut(&mut StdRng) -> Result<(), test_runner::TestCaseError>,
) {
    let failures_dir = std::env::var_os("PROPTEST_FAILURES_DIR").map(std::path::PathBuf::from);
    run_proptest_with(effective_cases(config.cases), name, failures_dir.as_deref(), body);
}

/// [`run_proptest`] with the case count and failure directory fully
/// explicit (tests drive this directly — mutating process environment
/// variables from concurrently running tests would race).
pub fn run_proptest_with(
    cases: u32,
    name: &str,
    failures_dir: Option<&std::path::Path>,
    mut body: impl FnMut(&mut StdRng) -> Result<(), test_runner::TestCaseError>,
) {
    let seed = stream_seed(name);
    let mut rng = seeded_rng(seed);
    for case in 0..cases {
        if let Err(e) = body(&mut rng) {
            let mut report = format!("proptest '{name}' failed at case {case}/{cases}: {e}");
            if let Some(dir) = failures_dir {
                append_replay_note(&mut report, dir, name, case, cases, seed, &e.message, None);
            }
            panic!("{report}");
        }
    }
}

/// Upper bound on failing-candidate evaluations during one shrink descent,
/// so a pathological strategy cannot hang a failing test.
pub const MAX_SHRINK_ATTEMPTS: usize = 256;

/// Drive `strategy`-generated cases through `body`; on the first failure,
/// greedily descend through [`strategy::Strategy::shrink`] candidates (at
/// most [`MAX_SHRINK_ATTEMPTS`] evaluations) and report — and record in
/// the `PROPTEST_FAILURES_DIR` replay file — the minimal counterexample
/// found. Called by the [`proptest!`] macro expansion.
pub fn run_proptest_shrink<S: strategy::Strategy>(
    config: test_runner::ProptestConfig,
    name: &str,
    strategy: &S,
    body: impl FnMut(S::Value) -> Result<(), test_runner::TestCaseError>,
) where
    S::Value: Clone + core::fmt::Debug,
{
    let failures_dir = std::env::var_os("PROPTEST_FAILURES_DIR").map(std::path::PathBuf::from);
    run_proptest_shrink_with(
        effective_cases(config.cases),
        name,
        failures_dir.as_deref(),
        strategy,
        body,
    );
}

/// [`run_proptest_shrink`] with the case count and failure directory fully
/// explicit (see [`run_proptest_with`]).
pub fn run_proptest_shrink_with<S: strategy::Strategy>(
    cases: u32,
    name: &str,
    failures_dir: Option<&std::path::Path>,
    strategy: &S,
    mut body: impl FnMut(S::Value) -> Result<(), test_runner::TestCaseError>,
) where
    S::Value: Clone + core::fmt::Debug,
{
    let seed = stream_seed(name);
    let mut rng = seeded_rng(seed);
    for case in 0..cases {
        let value = strategy.new_value(&mut rng);
        if let Err(e) = body(value.clone()) {
            let (minimal, error, steps) = shrink_failure(strategy, &mut body, value, e);
            let minimal_repr = format!("{minimal:?}");
            let mut report = format!(
                "proptest '{name}' failed at case {case}/{cases}: {error}\n\
                 minimal counterexample ({steps} shrink steps): {minimal_repr}"
            );
            if let Some(dir) = failures_dir {
                append_replay_note(
                    &mut report,
                    dir,
                    name,
                    case,
                    cases,
                    seed,
                    &error.message,
                    Some((&minimal_repr, steps)),
                );
            }
            panic!("{report}");
        }
    }
}

/// Greedy descent: repeatedly take the first shrink candidate that still
/// fails, until no candidate fails or the attempt budget is spent.
fn shrink_failure<S: strategy::Strategy>(
    strategy: &S,
    body: &mut impl FnMut(S::Value) -> Result<(), test_runner::TestCaseError>,
    value: S::Value,
    error: test_runner::TestCaseError,
) -> (S::Value, test_runner::TestCaseError, usize)
where
    S::Value: Clone,
{
    let mut best = value;
    let mut best_err = error;
    let mut attempts = 0usize;
    let mut steps = 0usize;
    'descent: loop {
        for candidate in strategy.shrink(&best) {
            if attempts >= MAX_SHRINK_ATTEMPTS {
                break 'descent;
            }
            attempts += 1;
            if let Err(e) = body(candidate.clone()) {
                best = candidate;
                best_err = e;
                steps += 1;
                continue 'descent;
            }
        }
        break;
    }
    (best, best_err, steps)
}

/// Per-test stream seed derived from the test name (FNV-1a) so sibling
/// tests explore different streams but every run is identical.
pub fn stream_seed(name: &str) -> u64 {
    name.bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x1000_0000_01b3))
}

/// A deterministic [`TestRng`] for driving strategies outside the
/// [`proptest!`] harness (e.g. one seeded draw inside a plain `#[test]`)
/// without a direct `rand` dependency.
pub fn seeded_rng(seed: u64) -> StdRng {
    use rand::SeedableRng;
    StdRng::seed_from_u64(seed)
}

/// Write the replay file and append its outcome to the panic report.
#[allow(clippy::too_many_arguments)]
fn append_replay_note(
    report: &mut String,
    dir: &std::path::Path,
    name: &str,
    case: u32,
    cases: u32,
    seed: u64,
    message: &str,
    minimal: Option<(&str, usize)>,
) {
    match write_failure_file(dir, name, case, cases, seed, message, minimal) {
        Ok(path) => report.push_str(&format!(" (replay file: {})", path.display())),
        Err(io) => report.push_str(&format!(" (could not write replay file: {io})")),
    }
}

/// Write the deterministic replay recipe for a failing case; returns the
/// file's path.
fn write_failure_file(
    dir: &std::path::Path,
    name: &str,
    case: u32,
    cases: u32,
    seed: u64,
    message: &str,
    minimal: Option<(&str, usize)>,
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    // Test names are Rust identifiers, so they are safe as file names.
    let path = dir.join(format!("{name}.txt"));
    let minimal_lines = match minimal {
        Some((repr, steps)) => format!("minimal: {repr}\nshrink_steps: {steps}\n"),
        None => String::new(),
    };
    std::fs::write(
        &path,
        format!(
            "test: {name}\nfailing_case: {case}\ncases_run: {cases}\nstream_seed: {seed:#018x}\n\
             message: {message}\n{minimal_lines}replay: cases are generated deterministically \
             from the test name; run the named test with PROPTEST_CASES={min_cases} or more to \
             reproduce the original failure (the minimal line above is the shrunk form).\n",
            min_cases = case + 1
        ),
    )?;
    Ok(path)
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            // All argument strategies fuse into one tuple strategy, so the
            // runner can regenerate and shrink the whole argument list as
            // a unit. Generation order matches the per-argument expansion,
            // so existing name-seeded streams reproduce identically.
            let __proptest_strategy = ($(($strat),)+);
            $crate::run_proptest_shrink(
                $cfg,
                stringify!($name),
                &__proptest_strategy,
                |__proptest_value| {
                    let ($($arg,)+) = __proptest_value;
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: {:?} == {:?}", lhs, rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs == rhs, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs != rhs, "assertion failed: {:?} != {:?}", lhs, rhs);
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u32..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y), "y = {y}");
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0usize..5, 2..=6)) {
            prop_assert!(v.len() >= 2 && v.len() <= 6);
            for e in v {
                prop_assert!(e < 5);
            }
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                (0u32..4).prop_map(|x| x * 2),
                (10u32..14).prop_map(|x| x + 1),
            ]
        ) {
            prop_assert!(v % 2 == 0 && v < 8 || (11..15).contains(&v), "v = {v}");
        }
    }

    proptest! {
        #[test]
        fn early_ok_return_supported(x in 0u8..2) {
            if x == 0 {
                return Ok(());
            }
            prop_assert_eq!(x, 1);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        // run_proptest_with + None: this deliberate failure must not leave
        // a replay file behind when CI sets PROPTEST_FAILURES_DIR.
        crate::run_proptest_with(16, "failures_panic", None, |rng| {
            let x = Strategy::new_value(&(5u32..9), rng);
            prop_assert!(x < 7, "x was {}", x);
            Ok(())
        });
    }

    #[test]
    fn effective_cases_respects_config_without_env() {
        // The test environment never sets PROPTEST_CASES for the regular
        // run; with it set this assertion is vacuous but harmless.
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(crate::effective_cases(24), 24);
        }
    }

    fn panic_message(result: std::thread::Result<()>) -> String {
        let err = result.expect_err("the property must fail");
        err.downcast_ref::<String>().cloned().unwrap_or_else(|| {
            err.downcast_ref::<&str>().map(|s| s.to_string()).unwrap_or_default()
        })
    }

    #[test]
    fn integer_failures_shrink_to_the_boundary() {
        // x < 10 fails for any x in 10..100; the greedy descent over
        // range candidates (lo, midpoint, decrement) must land on 10.
        let message = panic_message(std::panic::catch_unwind(|| {
            crate::run_proptest_shrink_with(64, "int_shrink_probe", None, &(0u32..100), |x| {
                prop_assert!(x < 10, "x was {}", x);
                Ok(())
            });
        }));
        assert!(message.contains("minimal counterexample"), "{message}");
        assert!(message.contains(": 10"), "must shrink to the boundary: {message}");
    }

    #[test]
    fn vec_failures_shrink_to_one_offending_element() {
        // Any vector containing an element >= 50 fails; minimal form is a
        // single element at exactly 50 (prefix-drop + element shrinks).
        let message = panic_message(std::panic::catch_unwind(|| {
            crate::run_proptest_shrink_with(
                64,
                "vec_shrink_probe",
                None,
                &crate::collection::vec(0u32..100, 0..8),
                |v| {
                    prop_assert!(v.iter().all(|&x| x < 50), "v was {:?}", v);
                    Ok(())
                },
            );
        }));
        assert!(message.contains("minimal counterexample"), "{message}");
        assert!(message.contains("[50]"), "must shrink to the single boundary element: {message}");
    }

    #[test]
    fn tuple_failures_shrink_component_wise() {
        // Fails whenever a + b >= 30; the minimal failing tuple under
        // component-wise descent has one component at its range minimum.
        let message = panic_message(std::panic::catch_unwind(|| {
            crate::run_proptest_shrink_with(
                64,
                "tuple_shrink_probe",
                None,
                &(0u32..100, 0u32..100),
                |(a, b)| {
                    prop_assert!(a + b < 30, "({}, {})", a, b);
                    Ok(())
                },
            );
        }));
        assert!(message.contains("minimal counterexample"), "{message}");
        assert!(
            message.contains("(0, 30)") || message.contains("(30, 0)"),
            "must pin one component at the minimum: {message}"
        );
    }

    #[test]
    fn replay_file_records_the_minimal_counterexample() {
        let dir = std::env::temp_dir().join(format!("proptest-shrink-{}", std::process::id()));
        let result = std::panic::catch_unwind(|| {
            crate::run_proptest_shrink_with(
                16,
                "shrink_replay_probe",
                Some(&dir),
                &(0u32..100),
                |x| {
                    prop_assert!(x < 5, "x was {}", x);
                    Ok(())
                },
            );
        });
        assert!(result.is_err(), "the property must fail");
        let content = std::fs::read_to_string(dir.join("shrink_replay_probe.txt"))
            .expect("replay file must exist");
        assert!(content.contains("minimal: 5"), "{content}");
        assert!(content.contains("shrink_steps:"), "{content}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failing_case_writes_a_replay_file() {
        let dir = std::env::temp_dir().join(format!("proptest-failures-{}", std::process::id()));
        let result = std::panic::catch_unwind(|| {
            crate::run_proptest_with(16, "write_replay_probe", Some(&dir), |rng| {
                let x = Strategy::new_value(&(5u32..9), rng);
                prop_assert!(x < 6, "x was {}", x);
                Ok(())
            });
        });
        assert!(result.is_err(), "the property must fail");
        let content = std::fs::read_to_string(dir.join("write_replay_probe.txt"))
            .expect("replay file must exist");
        assert!(content.contains("test: write_replay_probe"), "{content}");
        assert!(content.contains("failing_case:"), "{content}");
        assert!(content.contains("stream_seed: 0x"), "{content}");
        assert!(content.contains("PROPTEST_CASES="), "{content}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
