//! Umbrella crate for the Parallax neutral-atom compiler suite.
//!
//! Re-exports every member crate under one roof so the examples and
//! integration tests (and downstream users who want a single dependency)
//! can reach the whole stack:
//!
//! * [`qasm`] — OpenQASM 2.0 front end
//! * [`circuit`] — {U3, CZ} circuit IR, transpiler, optimizer
//! * [`anneal`] — dual annealing optimizer
//! * [`graphine`] — annealed atom placement + interaction radius
//! * [`hardware`] — machine model (SLM/AOD, constraints, Table II)
//! * [`core`] — the Parallax compiler (Fig. 4 pipeline, Algorithm 1)
//! * [`baselines`] — ELDI and GRAPHINE comparison compilers
//! * [`sim`] — runtime/fidelity models, statevector verification
//! * [`workloads`] — the 18 Table III benchmarks

pub use parallax_anneal as anneal;
pub use parallax_baselines as baselines;
pub use parallax_circuit as circuit;
pub use parallax_core as core;
pub use parallax_graphine as graphine;
pub use parallax_hardware as hardware;
pub use parallax_qasm as qasm;
pub use parallax_sim as sim;
pub use parallax_workloads as workloads;
