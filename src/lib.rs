//! Umbrella crate for the Parallax neutral-atom compiler suite.
//!
//! Rust reproduction of *"Parallax: A Compiler for Neutral Atom Quantum
//! Computers under Hardware Constraints"* (Ludmir & Patel, SC 2024):
//! OpenQASM 2.0 in, a zero-SWAP schedule of {U3, CZ} gate layers and AOD
//! atom movements out, evaluated against the ELDI and GRAPHINE baselines.
//!
//! # Building and testing
//!
//! ```text
//! cargo build --release          # all 14 workspace crates
//! cargo test -q                  # end-to-end + property + differential tests
//! cargo test -q --workspace      # full tiered harness, every crate
//! cargo fmt --check && cargo clippy --workspace --all-targets -- -D warnings
//! PROPTEST_CASES=1024 cargo test -q --workspace   # the nightly CI sweep
//! ```
//!
//! External deps (`rand`, `proptest`, `criterion`) are vendored offline
//! stand-ins under `vendor/`; everything builds with no network.
//!
//! # Reproducing the paper's evaluation
//!
//! ```text
//! cargo run --release -p parallax-bench --bin experiments -- all
//! cargo run --release -p parallax-bench --bin parallax-compile -- file.qasm
//! cargo bench -p parallax-bench               # fig9-fig13, table4, stages
//! cargo bench -p parallax-bench --bench fig9_cz_counts
//! ```
//!
//! # Serving compilations
//!
//! ```text
//! cargo run --release -p parallax-service --bin parallax-serve
//! cargo run --release -p parallax-service --bin parallax-client -- submit --workload QFT
//! ```
//!
//! # Crate map
//!
//! Re-exports every member crate under one roof so the examples and
//! integration tests (and downstream users who want a single dependency)
//! can reach the whole stack:
//!
//! * [`qasm`] — OpenQASM 2.0 front end
//! * [`circuit`] — {U3, CZ} circuit IR, transpiler, optimizer
//! * [`anneal`] — dual annealing optimizer
//! * [`graphine`] — annealed atom placement + interaction radius
//! * [`hardware`] — machine model (SLM/AOD, constraints, Table II)
//! * [`core`] — the Parallax compiler (Fig. 4 pipeline, Algorithm 1)
//! * [`baselines`] — ELDI and GRAPHINE comparison compilers
//! * [`sim`] — runtime/fidelity models, statevector verification
//! * [`workloads`] — the 18 Table III benchmarks
//! * [`service`] — the concurrent compile server (`parallax-serve`,
//!   `parallax-client`, job queue, result cache, wire protocol)
//!
//! (`parallax-bench`, the experiment harness, is a binary/bench crate;
//! `parallax-testkit`, the shared seeded test-generator crate every
//! suite's dev-dependencies pull in, is test-only — neither is
//! re-exported.)

pub use parallax_anneal as anneal;
pub use parallax_baselines as baselines;
pub use parallax_circuit as circuit;
pub use parallax_core as core;
pub use parallax_graphine as graphine;
pub use parallax_hardware as hardware;
pub use parallax_qasm as qasm;
pub use parallax_service as service;
pub use parallax_sim as sim;
pub use parallax_workloads as workloads;
