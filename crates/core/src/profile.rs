//! Cheap opt-in pipeline profiling.
//!
//! Set `PARALLAX_PROFILE=1` to record, per pipeline stage, the call count,
//! cumulative wall-clock time, and the annealer's heap-allocation count.
//! When the variable is unset the instrumentation collapses to one branch
//! on a cached boolean per stage — no `Instant::now`, no atomics — so the
//! compile hot path pays nothing.
//!
//! Counters live in the process-wide `parallax-trace` metrics registry
//! (families `parallax_stage_calls_total`, `parallax_stage_time_ns_total`,
//! `parallax_stage_allocs_total`, one series per `stage` label), which lets
//! every surface report them: the compile service embeds [`snapshot`] in
//! its `STATS` response (rendered by `parallax-client stats`), the same
//! numbers appear in the `METRICS` Prometheus exposition, and the
//! `experiments` binary prints the table after a profiled run.

use parallax_trace::Counter;
use std::sync::OnceLock;
use std::time::Instant;

/// The profiled pipeline stages, in pipeline order. The `Schedule*`
/// entries are sub-stages of `Schedule`: they partition the scheduler's
/// per-layer loop (frontier build / movement resolution / blockade pass /
/// home return), so the scheduler's own bottleneck is visible without a
/// sampling profiler. Sub-stage times nest inside the `schedule` total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// GRAPHINE annealed placement (or a layout-cache lookup).
    Placement,
    /// Grid discretization.
    Discretize,
    /// AOD qubit selection.
    AodSelect,
    /// Gate/movement scheduling.
    Schedule,
    /// Scheduler sub-stage: dependency-frontier maintenance.
    ScheduleFrontier,
    /// Scheduler sub-stage: AOD movement planning and commits.
    ScheduleMovement,
    /// Scheduler sub-stage: Rydberg-blockade interference pass.
    ScheduleBlockade,
    /// Scheduler sub-stage: returning moved atoms home.
    ScheduleReturn,
}

/// Display names, indexed by `Stage as usize`.
pub const STAGE_NAMES: [&str; 8] = [
    "placement",
    "discretize",
    "aod_select",
    "schedule",
    "  frontier",
    "  movement",
    "  blockade",
    "  return",
];

struct StageCounters {
    calls: Counter,
    time_ns: Counter,
    allocs: Counter,
}

// Registry handles resolve once; afterwards a stage record is three
// relaxed fetch_adds, same as the pre-registry static table. Sub-stage
// display names carry a two-space indent for the text table; the metric
// label is the trimmed name.
fn table() -> &'static [StageCounters; 8] {
    static TABLE: OnceLock<[StageCounters; 8]> = OnceLock::new();
    TABLE.get_or_init(|| {
        STAGE_NAMES.map(|name| {
            let labels = [("stage", name.trim_start())];
            StageCounters {
                calls: parallax_trace::counter("parallax_stage_calls_total", &labels),
                time_ns: parallax_trace::counter("parallax_stage_time_ns_total", &labels),
                allocs: parallax_trace::counter("parallax_stage_allocs_total", &labels),
            }
        })
    })
}

static ENABLED: OnceLock<bool> = OnceLock::new();

/// Whether profiling is on (`PARALLAX_PROFILE=1`; read once per process).
pub fn enabled() -> bool {
    *ENABLED.get_or_init(|| std::env::var("PARALLAX_PROFILE").is_ok_and(|v| v == "1"))
}

/// Turn profiling on programmatically (the `profile_stages` example). Must
/// run before the first [`enabled`] call to take effect — the flag is
/// latched on first read so the hot path stays one branch on a cached bool.
pub fn force_enable() {
    let _ = ENABLED.set(true);
}

/// Start timing a stage; `None` (and therefore zero cost downstream) when
/// profiling is disabled.
#[inline]
pub fn begin() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Record a stage completion started at `begin()`'s return. A `None` start
/// (profiling disabled) is a no-op.
#[inline]
pub fn record(stage: Stage, started: Option<Instant>, allocs: u64) {
    if let Some(t0) = started {
        record_raw(stage, t0.elapsed().as_nanos() as u64, allocs);
    }
}

/// Record a stage observation directly (used by [`record`] and by tests,
/// which cannot set the environment variable process-wide).
pub fn record_raw(stage: Stage, time_ns: u64, allocs: u64) {
    let c = &table()[stage as usize];
    c.calls.inc();
    c.time_ns.add(time_ns);
    c.allocs.add(allocs);
}

/// One stage's accumulated counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Stage display name.
    pub stage: &'static str,
    /// Completed calls.
    pub calls: u64,
    /// Cumulative wall-clock time, µs.
    pub total_us: u64,
    /// Cumulative annealer heap allocations (placement stage only).
    pub allocs: u64,
}

/// Snapshot every stage (zeros when profiling never ran).
pub fn snapshot() -> Vec<StageSnapshot> {
    table()
        .iter()
        .zip(STAGE_NAMES)
        .map(|(c, stage)| StageSnapshot {
            stage,
            calls: c.calls.get(),
            total_us: c.time_ns.get() / 1_000,
            allocs: c.allocs.get(),
        })
        .collect()
}

/// Render the snapshot as an aligned text table (the `experiments` binary
/// prints this after a `PARALLAX_PROFILE=1` run).
pub fn render() -> String {
    let snap = snapshot();
    let mut out = String::from("stage        calls     total_ms      allocs\n");
    for s in &snap {
        out.push_str(&format!(
            "{:<12} {:>6} {:>12.3} {:>11}\n",
            s.stage,
            s.calls,
            s.total_us as f64 / 1e3,
            s.allocs
        ));
    }
    out
}

/// Zero every counter (test isolation).
pub fn reset() {
    for c in table() {
        c.calls.reset();
        c.time_ns.reset();
        c.allocs.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Touches the shared global table; keep every assertion delta-based so
    // concurrently running compiles can only add.
    #[test]
    fn records_accumulate_and_render() {
        let before = snapshot();
        record_raw(Stage::Placement, 2_500, 7);
        record_raw(Stage::Placement, 1_500, 3);
        record_raw(Stage::Schedule, 9_000, 0);
        let after = snapshot();
        let d = |i: usize| {
            (
                after[i].calls - before[i].calls,
                after[i].total_us - before[i].total_us,
                after[i].allocs - before[i].allocs,
            )
        };
        let (calls, us, allocs) = d(Stage::Placement as usize);
        assert!(calls >= 2 && us >= 4 && allocs >= 10, "{calls} {us} {allocs}");
        let (calls, us, _) = d(Stage::Schedule as usize);
        assert!(calls >= 1 && us >= 9);
        let table = render();
        assert!(table.contains("placement") && table.contains("schedule"));
    }

    #[test]
    fn disabled_begin_is_none_without_env() {
        // The test environment never sets PARALLAX_PROFILE, so begin() must
        // stay on the zero-cost path.
        if std::env::var("PARALLAX_PROFILE").is_err() {
            assert!(begin().is_none());
        }
    }
}
