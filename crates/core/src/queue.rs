//! Bounded, priority-ordered job queue with backpressure — the one
//! scheduler type shared by every concurrent entry point.
//!
//! A producer (the compile server's connection threads, or
//! [`compile_batch`](crate::compile_batch)'s dispatcher) accepts jobs
//! faster than the compiler can run them, so the queue is the pressure
//! point: it holds at most `capacity` jobs, pops the highest priority
//! first (FIFO within a priority level, by admission sequence number),
//! and tells producers apart by *why* a push failed —
//! [`PushError::Full`] is backpressure the client should retry,
//! [`PushError::Closed`] is a draining server that will never accept again.
//! `close()` wakes all consumers; they drain what was accepted and then
//! see `None`, which is what makes graceful shutdown lossless.
//!
//! `parallax-service` re-exports this module; batch compilation
//! ([`crate::parallel`]) dispatches through the same type at a single
//! priority level, where the admission-sequence tiebreak makes pop order
//! FIFO and the batch fan-out deterministic.

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push was refused (the job is handed back in both cases).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity — backpressure; retry later.
    Full(T),
    /// The queue is closed for new work (server draining).
    Closed(T),
}

struct Entry<T> {
    priority: u8,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then earlier sequence number.
        self.priority.cmp(&other.priority).then(other.seq.cmp(&self.seq))
    }
}

struct State<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    closed: bool,
}

/// The bounded priority queue. All methods are `&self`; share via `Arc`.
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    /// Signalled when an item arrives or the queue closes (consumers wait).
    nonempty: Condvar,
    /// Signalled when an item leaves (producers in `push_timeout` wait).
    nonfull: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// Create a queue holding at most `capacity` jobs (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(State { heap: BinaryHeap::new(), next_seq: 0, closed: false }),
            nonempty: Condvar::new(),
            nonfull: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").heap.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of queued jobs.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True once [`Self::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock").closed
    }

    /// Non-blocking push.
    pub fn try_push(&self, item: T, priority: u8) -> Result<(), PushError<T>> {
        let mut s = self.state.lock().expect("queue lock");
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.heap.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        let seq = s.next_seq;
        s.next_seq += 1;
        s.heap.push(Entry { priority, seq, item });
        drop(s);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Push, waiting up to `timeout` for space. A zero timeout degenerates
    /// to [`Self::try_push`].
    pub fn push_timeout(
        &self,
        item: T,
        priority: u8,
        timeout: Duration,
    ) -> Result<(), PushError<T>> {
        let deadline = Instant::now() + timeout;
        let mut s = self.state.lock().expect("queue lock");
        loop {
            if s.closed {
                return Err(PushError::Closed(item));
            }
            if s.heap.len() < self.capacity {
                let seq = s.next_seq;
                s.next_seq += 1;
                s.heap.push(Entry { priority, seq, item });
                drop(s);
                self.nonempty.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(PushError::Full(item));
            }
            let (guard, _) = self.nonfull.wait_timeout(s, deadline - now).expect("queue lock");
            s = guard;
        }
    }

    /// Pop the highest-priority job, blocking while the queue is empty and
    /// open. Returns `None` only when the queue is closed **and** drained —
    /// the worker-pool exit condition.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().expect("queue lock");
        loop {
            if let Some(entry) = s.heap.pop() {
                drop(s);
                self.nonfull.notify_one();
                return Some(entry.item);
            }
            if s.closed {
                return None;
            }
            s = self.nonempty.wait(s).expect("queue lock");
        }
    }

    /// Close the queue: subsequent pushes fail with [`PushError::Closed`],
    /// and consumers drain the remaining jobs before seeing `None`.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.nonempty.notify_all();
        self.nonfull.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pops_by_priority_then_fifo() {
        let q = JobQueue::new(8);
        q.try_push("low-1", 1).unwrap();
        q.try_push("high-1", 9).unwrap();
        q.try_push("mid", 5).unwrap();
        q.try_push("high-2", 9).unwrap();
        q.close();
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec!["high-1", "high-2", "mid", "low-1"]);
    }

    #[test]
    fn full_queue_applies_backpressure() {
        let q = JobQueue::new(2);
        q.try_push(1, 5).unwrap();
        q.try_push(2, 5).unwrap();
        assert_eq!(q.try_push(3, 5), Err(PushError::Full(3)));
        assert_eq!(q.push_timeout(3, 5, Duration::from_millis(10)), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3, 5).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn push_timeout_succeeds_when_space_frees_up() {
        let q = Arc::new(JobQueue::new(1));
        q.try_push(1, 5).unwrap();
        let q2 = q.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            q2.pop()
        });
        assert_eq!(q.push_timeout(2, 5, Duration::from_secs(5)), Ok(()));
        assert_eq!(t.join().unwrap(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn close_drains_then_stops() {
        let q = JobQueue::new(4);
        q.try_push(1, 5).unwrap();
        q.try_push(2, 7).unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.try_push(3, 5), Err(PushError::Closed(3)));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "closed+empty stays None");
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(JobQueue::<u32>::new(1));
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(t.join().unwrap(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_preserve_every_job() {
        let q = Arc::new(JobQueue::new(16));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..50u32 {
                        let mut v = p * 1000 + i;
                        loop {
                            match q.push_timeout(v, (i % 10) as u8, Duration::from_secs(10)) {
                                Ok(()) => break,
                                Err(PushError::Full(back)) => v = back,
                                Err(PushError::Closed(_)) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        let mut expected: Vec<u32> =
            (0..4).flat_map(|p| (0..50).map(move |i| p * 1000 + i)).collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }
}
