//! The multi-mover scheduling ablation ([`SchedulingMode::MultiMover`]).
//!
//! The paper's Algorithm 1 commits at most one AOD move batch per layer
//! (lines 16-17); every additional out-of-range gate defers. This module is
//! the ROADMAP item 3 "beyond the paper" arm: a layer may commit *several*
//! move plans when their interference regions are pairwise disjoint, so the
//! parallel motions cannot collide and the moved gates cannot blockade each
//! other when the Rydberg pulse fires. Candidates are ordered by ALAP
//! deadline ([`SlackTable`]): a gate's ALAP level is its static slack plus
//! its ASAP level, so zero-slack gates carry the earliest deadlines of
//! their dependency chain and claim the layer's movement budget first,
//! while slack-rich gates batch opportunistically into whatever disjoint
//! regions remain. Deadlines, unlike raw slack, stay meaningful as the
//! frontier advances: the frontier gate with the smallest ALAP level heads
//! the longest dependency chain still outstanding, even when an earlier
//! ejection has already consumed its nominal slack.
//!
//! A plan's interference region has two parts, checked separately because
//! they act in different phases of the layer:
//!
//! * **Transit** — the movement corridor, the segment each atom of the
//!   plan sweeps. Two corridors must keep the minimum atom separation:
//!   atoms in one AOD batch move simultaneously, and for points `p(t)`,
//!   `q(t)` interpolating along two segments, `|p(t) - q(t)|` is bounded
//!   below by the segment-to-segment distance, so disjoint corridors prove
//!   separation throughout the motion. Blockade does not constrain
//!   transit: no pulse is applied while atoms move.
//! * **Execution** — the Rydberg blockade disc around each atom of the
//!   gate pair at its *final* position. Pairs of distinct committed gates
//!   must be mutually outside the blockade radius
//!   (`r * blockade_factor`), or the downstream ejection pass would kick
//!   one gate out and its move would be wasted.
//!
//! The default path is untouched — every paper preset compiles through
//! [`schedule_gates_single`] byte-identically — and this path reuses its
//! exact machinery ([`SchedulerScratch`]: incremental frontier, failed-move
//! memo, two-level plan cache, bucketed blockade pass, batched home
//! return), so the two modes differ only in the per-layer movement rule.
//!
//! # Corridor disjointness
//!
//! Two move plans conflict when any corridor pair across them comes within
//! the transit clearance (the machine's minimum separation) — measured as
//! segment-to-segment distance — or names the same atom (a plan computed
//! after another committed this layer must not re-move its atoms, or the
//! concatenated layer batch would no longer replay from the layer-start
//! configuration). The fast path buckets committed corridors in a
//! [`CellGeometry`] grid: each corridor is inserted into every cell of its
//! clearance-inflated bounding box, and a candidate queries only the cells
//! of its raw bounding box. Any pair within clearance shares a cell — for
//! points `p`, `q` on the two segments with `|p - q| <` clearance, `p`'s
//! cell lies inside the other corridor's inflated box componentwise — so
//! the bucket sweep is a strict superset of the naive all-pairs predicate.
//! [`moves_conflict_naive`] is that all-pairs predicate, retained under
//! `#[cfg(any(test, debug_assertions))]` per the `docs/DATA_LAYOUT.md`
//! oracle convention; debug builds differentially assert every fast-path
//! decision against it, and the umbrella suite replays compiled schedules
//! through it.
//!
//! [`SchedulingMode::MultiMover`]: crate::config::SchedulingMode::MultiMover
//! [`schedule_gates_single`]: crate::scheduler::schedule_gates
//! [`SchedulerScratch`]: crate::scheduler::SchedulerScratch

use crate::aod_select::AodSelection;
use crate::config::CompilerConfig;
use crate::discretize::DiscretizedLayout;
use crate::profile::{self, Stage};
use crate::scheduler::{
    iteration_cap, record_moved_batch, return_home_batch, CompileStats, Schedule, ScheduledLayer,
    SchedulerScratch,
};
use parallax_circuit::{Circuit, DependencyDag, Gate, SlackTable};
use parallax_hardware::{segment_distance, within_blockade, AodMove, CellGeometry, Point};

/// The interference region of one atom's motion within a move plan: the
/// segment it sweeps from its pre-move position to its target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corridor {
    /// The moved atom.
    pub q: u32,
    /// Position before the plan commits, µm.
    pub from: Point,
    /// Move target, µm.
    pub to: Point,
}

/// Whether two corridors interfere: same atom, or swept segments closer
/// than `clearance_um` (the scheduler passes the machine's minimum
/// separation — parallel motions nearer than that could collide
/// mid-flight).
pub fn corridors_conflict(a: &Corridor, b: &Corridor, clearance_um: f64) -> bool {
    a.q == b.q || segment_distance(&a.from, &a.to, &b.from, &b.to) < clearance_um
}

/// Final positions of gate `(a, b)`'s atoms once `plan` commits: a plan
/// move's target if the atom is in the plan (chain pushes can relocate
/// either operand), its current position otherwise.
fn plan_pair(
    array: &parallax_hardware::AtomArray,
    moves: &[AodMove],
    a: u32,
    b: u32,
) -> [Point; 2] {
    let fp = |q: u32| {
        moves
            .iter()
            .find(|m| m.q == q)
            .map(|m| Point::new(m.x, m.y))
            .unwrap_or_else(|| array.position(q))
    };
    [fp(a), fp(b)]
}

/// Whether `pair` lands within the blockade radius of any previously
/// committed gate pair — the ejection pass would then drop one of the two
/// gates, wasting its move.
fn pair_blockaded(pair: &[Point; 2], committed: &[[Point; 2]], r: f64, factor: f64) -> bool {
    committed
        .iter()
        .any(|other| pair.iter().any(|p| other.iter().any(|q| within_blockade(p, q, r, factor))))
}

/// All-pairs conflict test between two move plans' corridor sets — the
/// differential oracle for [`CorridorIndex`]'s bucketed fast path (same
/// predicate, every pair checked). Kept per the `docs/DATA_LAYOUT.md`
/// oracle-retention convention.
#[cfg(any(test, debug_assertions))]
pub fn moves_conflict_naive(a: &[Corridor], b: &[Corridor], clearance_um: f64) -> bool {
    a.iter().any(|ca| b.iter().any(|cb| corridors_conflict(ca, cb, clearance_um)))
}

/// Bucketed index over the corridors committed so far this layer.
///
/// Insertion covers the corridor's bounding box inflated by the clearance;
/// queries sweep only the candidate's raw bounding box, which the module
/// docs prove sufficient. Buckets are cleared (not freed) per layer, and a
/// per-corridor query stamp dedupes corridors spanning several cells.
struct CorridorIndex {
    cells: CellGeometry,
    clearance_um: f64,
    buckets: Vec<Vec<u32>>,
    occupied: Vec<usize>,
    corridors: Vec<Corridor>,
    /// Last query that visited each corridor (bucket-dedupe stamp).
    seen: Vec<u64>,
    query: u64,
}

impl CorridorIndex {
    fn new(extent_um: f64, margin_um: f64, clearance_um: f64) -> Self {
        let cells = CellGeometry::new(extent_um, margin_um, clearance_um);
        Self {
            buckets: vec![Vec::new(); cells.num_cells()],
            cells,
            clearance_um,
            occupied: Vec::new(),
            corridors: Vec::new(),
            seen: Vec::new(),
            query: 0,
        }
    }

    fn clear(&mut self) {
        for &b in &self.occupied {
            self.buckets[b].clear();
        }
        self.occupied.clear();
        self.corridors.clear();
        self.seen.clear();
    }

    fn bbox(c: &Corridor) -> (Point, Point) {
        (
            Point::new(c.from.x.min(c.to.x), c.from.y.min(c.to.y)),
            Point::new(c.from.x.max(c.to.x), c.from.y.max(c.to.y)),
        )
    }

    fn insert(&mut self, c: Corridor) {
        let id = self.corridors.len() as u32;
        let (min, max) = Self::bbox(&c);
        self.corridors.push(c);
        self.seen.push(0);
        let (buckets, occupied) = (&mut self.buckets, &mut self.occupied);
        self.cells.for_each_cell_in_box(min, max, self.clearance_um, |cell| {
            if buckets[cell].is_empty() {
                occupied.push(cell);
            }
            buckets[cell].push(id);
        });
    }

    /// Whether `c` interferes with any committed corridor.
    fn probe(&mut self, c: &Corridor) -> bool {
        self.query += 1;
        let (min, max) = Self::bbox(c);
        let mut hit = false;
        let (buckets, corridors, seen) = (&self.buckets, &self.corridors, &mut self.seen);
        let (clearance, query) = (self.clearance_um, self.query);
        self.cells.for_each_cell_in_box(min, max, 0.0, |cell| {
            if hit {
                return;
            }
            for &id in &buckets[cell] {
                if seen[id as usize] == query {
                    continue;
                }
                seen[id as usize] = query;
                if corridors_conflict(c, &corridors[id as usize], clearance) {
                    hit = true;
                    return;
                }
            }
        });
        hit
    }

    /// Whether a candidate plan's corridor set interferes with any
    /// committed corridor. Debug builds diff the bucketed answer against
    /// the all-pairs oracle.
    fn conflicts_any(&mut self, candidate: &[Corridor]) -> bool {
        let mut fast = false;
        for c in candidate {
            if self.probe(c) {
                fast = true;
                break;
            }
        }
        #[cfg(debug_assertions)]
        assert_eq!(
            fast,
            moves_conflict_naive(candidate, &self.corridors, self.clearance_um),
            "corridor index disagrees with the all-pairs oracle"
        );
        fast
    }
}

/// Algorithm 1 with the multi-mover rule: per layer, movement candidates
/// are visited in (ALAP deadline, operand distance, gate index) order and
/// every plan whose interference region is disjoint from the layer's
/// committed regions commits; conflicting candidates defer to a later
/// layer (counted in [`MultiMoverStats::conflict_rejections`]). The
/// blockade ejection pass keeps that deadline order instead of the default
/// path's shuffle, so critical-path gates also win blockade contention.
/// Everything else — trap-change fallback, batched home return — is the
/// default path's machinery.
///
/// [`MultiMoverStats::conflict_rejections`]: crate::scheduler::MultiMoverStats
pub fn schedule_gates_multi(
    circuit: &Circuit,
    layout: &mut DiscretizedLayout,
    _selection: &AodSelection,
    config: &CompilerConfig,
) -> Schedule {
    let gates = circuit.gates();
    let num_gates = gates.len();
    let qubit_gates = circuit.qubit_gates_csr();
    let mut ptr = vec![0usize; circuit.num_qubits()];
    let mut executed = vec![false; num_gates];
    let mut executed_count = 0usize;
    let r = layout.interaction_radius_um;
    let blockade_factor = layout.array.spec().blockade_factor;
    let transit_um = layout.array.spec().min_separation_um;

    let slack = SlackTable::compute(&DependencyDag::build(circuit));

    let mut layers = Vec::new();
    let mut stats = CompileStats {
        cz_count: circuit.cz_count(),
        u3_count: circuit.u3_count(),
        ..Default::default()
    };
    stats.multi_mover.enabled = true;

    let mut scratch =
        SchedulerScratch::new(circuit.num_qubits(), num_gates, &layout.array, r * blockade_factor);
    scratch.frontier.seed(gates, &qubit_gates, &ptr);
    let mut corridors = CorridorIndex::new(
        layout.array.spec().extent_um(),
        layout.array.grid().pitch_um(),
        transit_um,
    );
    let mut candidate: Vec<Corridor> = Vec::new();
    let mut committed_pairs: Vec<[Point; 2]> = Vec::new();

    let mut guard = 0usize;
    let cap = iteration_cap(num_gates);
    while executed_count < num_gates {
        guard += 1;
        assert!(guard <= cap, "scheduler livelock: {executed_count}/{num_gates} gates executed");

        // ---- Dependency frontier, ordered by ALAP deadline. ----
        let t_frontier = profile::begin();
        let sp_frontier = parallax_trace::span!("schedule.frontier");
        let curr = &mut scratch.curr;
        scratch.frontier.collect(&qubit_gates, &ptr, curr);
        drop(sp_frontier);
        profile::record(Stage::ScheduleFrontier, t_frontier, 0);
        assert!(!curr.is_empty(), "dependency frontier is empty before completion");
        // Earliest ALAP deadline first: the frontier gate heading the
        // longest outstanding dependency chain claims the movement budget
        // and blockade space before anything else. Within a deadline
        // class, gates whose operands are closest go first: their
        // corridors are shortest, so they foreclose the least area for
        // the candidates after them. Whole-µm distance buckets keep the
        // order robust; gate index breaks the remaining ties
        // deterministically.
        curr.sort_unstable_by_key(|&g| {
            let span = match gates[g] {
                Gate::Cz { a, b } => layout.array.distance(a, b) as u64,
                Gate::U3 { .. } => 0,
            };
            (slack.alap(g), span, g)
        });

        // ---- Movement resolution: every disjoint-corridor plan commits. ----
        let t_movement = profile::begin();
        let sp_movement = parallax_trace::span!("schedule.movement");
        let mut committed_moves: Vec<AodMove> = Vec::new();
        let mut mover_plans: Vec<u32> = Vec::new();
        let mut move_distance_um = 0.0f64;
        let mut trap_changes = 0usize;
        let trap_changed = &mut scratch.trap_changed;
        trap_changed.clear();
        let kept = &mut scratch.kept;
        kept.clear();
        let mut deferred = 0usize;
        corridors.clear();
        committed_pairs.clear();

        for &g in curr.iter() {
            let Gate::Cz { a, b } = gates[g] else {
                kept.push(g);
                continue;
            };
            if layout.array.distance(a, b) <= r + 1e-9 {
                kept.push(g);
                continue;
            }
            let aod_operand = if layout.array.is_aod(a) {
                Some(a)
            } else if layout.array.is_aod(b) {
                Some(b)
            } else {
                None
            };
            match aod_operand {
                Some(mover) => {
                    let target = if mover == a { b } else { a };
                    if scratch.memo.still_failed(&layout.array, mover, target) {
                        stats.failed_moves += 1;
                        trap_changes += 1;
                        trap_changed.push((g, mover));
                        kept.push(g);
                        continue;
                    }
                    let mut attempt = scratch.plans.plan(
                        &layout.array,
                        mover,
                        target,
                        r,
                        config.max_move_recursion,
                    );
                    if attempt.is_err() && layout.array.is_aod(target) {
                        attempt = scratch.plans.plan(
                            &layout.array,
                            target,
                            mover,
                            r,
                            config.max_move_recursion,
                        );
                    }
                    match attempt {
                        Ok(mut plan) => {
                            // No atom of this plan was moved by an earlier
                            // plan this layer (that would be a same-qubit
                            // conflict), so its pre-move positions are the
                            // layer-start positions and the concatenated
                            // layer batch replays from the layer boundary.
                            let collect =
                                |plan: &crate::movement::MovePlan, out: &mut Vec<Corridor>| {
                                    out.clear();
                                    for m in &plan.moves {
                                        out.push(Corridor {
                                            q: m.q,
                                            from: layout.array.position(m.q),
                                            to: Point::new(m.x, m.y),
                                        });
                                    }
                                };
                            collect(&plan, &mut candidate);
                            let mut pair = plan_pair(&layout.array, &plan.moves, a, b);
                            if corridors.conflicts_any(&candidate)
                                || pair_blockaded(&pair, &committed_pairs, r, blockade_factor)
                            {
                                // The reverse mover starts from a different
                                // home, so its corridor may clear committed
                                // corridors the forward one crossed.
                                let reverse = if layout.array.is_aod(target) {
                                    scratch
                                        .plans
                                        .plan(
                                            &layout.array,
                                            target,
                                            mover,
                                            r,
                                            config.max_move_recursion,
                                        )
                                        .ok()
                                        .filter(|p| {
                                            collect(p, &mut candidate);
                                            pair = plan_pair(&layout.array, &p.moves, a, b);
                                            !corridors.conflicts_any(&candidate)
                                                && !pair_blockaded(
                                                    &pair,
                                                    &committed_pairs,
                                                    r,
                                                    blockade_factor,
                                                )
                                        })
                                } else {
                                    None
                                };
                                match reverse {
                                    Some(p) => plan = p,
                                    None => {
                                        stats.multi_mover.conflict_rejections += 1;
                                        deferred += 1;
                                        continue;
                                    }
                                }
                            }
                            record_moved_batch(
                                &mut scratch.home_pos,
                                &mut scratch.moved_list,
                                &mut scratch.moved_stamp,
                                &layout.array,
                                &plan.moves,
                                guard as u64,
                            );
                            layout
                                .array
                                .apply_aod_moves(&plan.moves)
                                .expect("validated plan must commit");
                            for c in candidate.drain(..) {
                                corridors.insert(c);
                            }
                            committed_pairs.push(pair);
                            mover_plans.push(plan.moves.len() as u32);
                            committed_moves.extend_from_slice(&plan.moves);
                            move_distance_um = move_distance_um.max(plan.max_distance_um);
                            stats.moves_planned += 1;
                            stats.total_move_distance_um += plan.max_distance_um;
                            kept.push(g);
                        }
                        Err(_) => {
                            scratch.memo.record(&layout.array, mover, target);
                            stats.failed_moves += 1;
                            trap_changes += 1;
                            trap_changed.push((g, mover));
                            kept.push(g);
                        }
                    }
                }
                None => {
                    trap_changes += 1;
                    trap_changed.push((g, a));
                    kept.push(g);
                }
            }
        }
        stats.deferred_gates += deferred;

        // Later plans may have chain-pushed operands of earlier kept gates
        // out of range; those defer (they cannot move again this layer).
        if !mover_plans.is_empty() {
            kept.retain(|&g| match gates[g] {
                Gate::Cz { a, b } => {
                    let in_range = layout.array.distance(a, b) <= r + 1e-9
                        || trap_changed.iter().any(|&(tg, _)| tg == g);
                    if !in_range {
                        stats.deferred_gates += 1;
                    }
                    in_range
                }
                _ => true,
            });
        }

        // ---- Rydberg blockade interference ejection. ----
        // The default path shuffles `kept` so no gate is starved by a fixed
        // ejection order. Here `kept` is already in (deadline, span, index)
        // order, and keeping it ordered lets critical-path gates win
        // blockade contention: the first gate in order is inserted into an
        // empty blockade index and can never be ejected, so every layer
        // still executes at least one frontier CZ and progress is
        // guaranteed without the shuffle.
        drop(sp_movement);
        profile::record(Stage::ScheduleMovement, t_movement, 0);

        let t_blockade = profile::begin();
        let blockade_allocs_before = scratch.blockade.allocs;
        let sp_blockade = parallax_trace::span!("schedule.blockade");
        for &g in kept.iter() {
            if let Gate::Cz { a, b } = gates[g] {
                let mut pa = layout.array.position(a);
                let mut pb = layout.array.position(b);
                if let Some(&(_, moved)) = trap_changed.iter().find(|&&(tg, _)| tg == g) {
                    if moved == a {
                        pa = pb;
                    } else if moved == b {
                        pb = pa;
                    }
                }
                scratch.eff_pos[g] = [pa, pb];
                scratch.eff_stamp[g] = guard as u64;
            }
        }
        let accepted = &mut scratch.accepted;
        accepted.clear();
        scratch.blockade.clear();
        for &g in kept.iter() {
            match gates[g] {
                Gate::U3 { .. } => accepted.push(g),
                Gate::Cz { .. } => {
                    debug_assert_eq!(scratch.eff_stamp[g], guard as u64);
                    let mine = scratch.eff_pos[g];
                    let conflict =
                        mine.iter().any(|p| scratch.blockade.conflicts(*p, r, blockade_factor));
                    if conflict {
                        stats.blockade_ejections += 1;
                        if let Some(pos) = trap_changed.iter().position(|&(tg, _)| tg == g) {
                            trap_changed.remove(pos);
                            trap_changes -= 1;
                        }
                    } else {
                        accepted.push(g);
                        scratch.blockade.insert(mine[0]);
                        scratch.blockade.insert(mine[1]);
                    }
                }
            }
        }
        drop(sp_blockade);
        profile::record(
            Stage::ScheduleBlockade,
            t_blockade,
            (scratch.blockade.allocs - blockade_allocs_before) as u64,
        );
        assert!(
            !accepted.is_empty(),
            "blockade pass emptied a layer: curr={curr:?} kept={kept:?} movers={} trap_changed={trap_changed:?}",
            mover_plans.len()
        );

        // ---- Execute. ----
        let mut has_u3 = false;
        let mut has_cz = false;
        let advanced = &mut scratch.advanced;
        advanced.clear();
        for &g in accepted.iter() {
            executed[g] = true;
            executed_count += 1;
            match gates[g] {
                Gate::U3 { q, .. } => {
                    has_u3 = true;
                    ptr[q as usize] += 1;
                    advanced.push(q);
                }
                Gate::Cz { a, b } => {
                    has_cz = true;
                    ptr[a as usize] += 1;
                    ptr[b as usize] += 1;
                    advanced.push(a);
                    advanced.push(b);
                }
            }
        }
        let t_frontier = profile::begin();
        let sp_frontier = parallax_trace::span!("schedule.frontier");
        scratch.frontier.advance(advanced, gates, &qubit_gates, &ptr);
        drop(sp_frontier);
        profile::record(Stage::ScheduleFrontier, t_frontier, 0);

        // ---- Return moved atoms home. ----
        let t_return = profile::begin();
        let sp_return = parallax_trace::span!("schedule.return");
        let mut return_distance_um = 0.0;
        if config.return_home {
            return_distance_um = return_home_batch(
                &scratch.home_pos,
                &scratch.moved_list,
                &scratch.moved_stamp,
                &mut scratch.return_moves,
                &mut scratch.return_skips,
                &mut layout.array,
                guard as u64,
            );
        }
        drop(sp_return);
        profile::record(Stage::ScheduleReturn, t_return, 0);

        stats.layer_count += 1;
        stats.trap_changes += trap_changes;
        let movers = mover_plans.len();
        if movers > 0 {
            stats.multi_mover.movers_per_layer[movers.min(8) - 1] += 1;
            stats.multi_mover.layers_saved += movers - 1;
        }
        layers.push(ScheduledLayer {
            gate_indices: accepted.clone(),
            moves: committed_moves,
            mover_plans,
            move_distance_um,
            return_distance_um,
            trap_changes,
            has_u3,
            has_cz,
        });
    }
    stats.failed_move_memo_hits = scratch.memo.hits;
    stats.plan_cache_hits = scratch.plans.memo.hits;
    stats.plan_cache_cross_hits = scratch.plans.cross_hits;
    stats.bucket_scratch_allocs = scratch.blockade.allocs;
    stats.home_return_skips = scratch.return_skips;
    stats.publish_metrics();

    let schedule = Schedule { layers, stats };
    debug_assert!(
        DependencyDag::build(circuit).respects_order(&schedule.gate_order()),
        "schedule violates gate dependencies"
    );
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aod_select::select_aod_qubits;
    use crate::discretize::discretize;
    use crate::scheduler::schedule_gates;
    use parallax_circuit::CircuitBuilder;
    use parallax_graphine::GraphineLayout;
    use parallax_hardware::MachineSpec;

    fn corridor(q: u32, fx: f64, fy: f64, tx: f64, ty: f64) -> Corridor {
        Corridor { q, from: Point::new(fx, fy), to: Point::new(tx, ty) }
    }

    #[test]
    fn conflict_predicate() {
        let a = corridor(0, 0.0, 0.0, 20.0, 0.0);
        // Parallel corridor beyond clearance: disjoint.
        assert!(!corridors_conflict(&a, &corridor(1, 0.0, 9.0, 20.0, 9.0), 5.0));
        // Parallel corridor inside clearance: conflict.
        assert!(corridors_conflict(&a, &corridor(1, 0.0, 4.0, 20.0, 4.0), 5.0));
        // Crossing corridors always conflict.
        assert!(corridors_conflict(&a, &corridor(1, 10.0, -8.0, 10.0, 8.0), 1.0));
        // Same atom conflicts regardless of geometry.
        assert!(corridors_conflict(&a, &corridor(0, 500.0, 500.0, 510.0, 500.0), 1.0));
    }

    #[test]
    fn index_matches_all_pairs_oracle() {
        // LCG-driven corridors across the extent; every probe's bucketed
        // answer must equal the naive all-pairs scan (the debug_assert in
        // conflicts_any re-checks, but assert explicitly for release-mode
        // coverage of this test).
        let extent = 180.0;
        let clearance = 10.0;
        let mut state = 0x5eed_cafe_u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (u32::MAX as f64 / 2.0)) * extent
        };
        let mut index = CorridorIndex::new(extent, 10.0, clearance);
        let mut committed: Vec<Corridor> = Vec::new();
        for i in 0..200u32 {
            let c = corridor(i, next(), next(), next(), next());
            let naive = moves_conflict_naive(std::slice::from_ref(&c), &committed, clearance);
            assert_eq!(index.conflicts_any(std::slice::from_ref(&c)), naive, "corridor {i}");
            if !naive {
                index.insert(c);
                committed.push(c);
            }
        }
        assert!(committed.len() > 2, "degenerate test: everything conflicted");
        // Clearing empties the committed set.
        index.clear();
        assert!(!index.conflicts_any(&[corridor(0, 0.0, 0.0, extent, extent)]));
    }

    fn compile_both(
        n: usize,
        build: impl Fn(&mut CircuitBuilder),
        seed: u64,
    ) -> (Schedule, Schedule) {
        let mut b = CircuitBuilder::new(n);
        build(&mut b);
        let c = b.build();
        let single_cfg = CompilerConfig::quick(seed);
        let multi_cfg = CompilerConfig::quick(seed).with_multi_mover();
        let layout = GraphineLayout::generate(&c, &single_cfg.placement);
        let mut d_single = discretize(&c, &layout, MachineSpec::quera_aquila_256());
        let mut d_multi = d_single.clone();
        let sel = select_aod_qubits(&c, &mut d_single, &single_cfg);
        let sel_multi = select_aod_qubits(&c, &mut d_multi, &multi_cfg);
        let s_single = schedule_gates(&c, &mut d_single, &sel, &single_cfg);
        let s_multi = schedule_gates(&c, &mut d_multi, &sel_multi, &multi_cfg);
        (s_single, s_multi)
    }

    fn ring_workload(b: &mut CircuitBuilder, n: usize, rounds: usize) {
        for _ in 0..rounds {
            for q in 0..n {
                b.h(q as u32);
            }
            for q in 0..n {
                b.cx(q as u32, ((q + 1) % n) as u32);
            }
        }
    }

    #[test]
    fn multi_mover_executes_every_gate_once_and_saves_layers() {
        let n = 24;
        let (s_single, s_multi) = compile_both(n, |b| ring_workload(b, 24, 3), 3);
        // Every gate exactly once.
        let mut order = s_multi.gate_order();
        order.sort_unstable();
        assert_eq!(order, (0..order.len()).collect::<Vec<_>>());
        // Stats wired up.
        assert!(s_multi.stats.multi_mover.enabled);
        assert!(!s_single.stats.multi_mover.enabled);
        assert_eq!(
            s_multi.stats.multi_mover.movers_per_layer.iter().sum::<usize>(),
            s_multi.layers.iter().filter(|l| !l.mover_plans.is_empty()).count(),
        );
        // The whole point of the ablation: no more layers than the default.
        assert!(
            s_multi.stats.layer_count <= s_single.stats.layer_count,
            "multi {} > single {}",
            s_multi.stats.layer_count,
            s_single.stats.layer_count
        );
        // mover_plans boundaries partition the move list.
        for l in &s_multi.layers {
            assert_eq!(l.mover_plans.iter().map(|&k| k as usize).sum::<usize>(), l.moves.len());
        }
    }

    /// Quantum-volume-style rounds: an LCG-shuffled perfect matching of
    /// CZs per round. Random pairings keep distant atoms interacting, so
    /// the multi-mover path finds disjoint-region batches (ring workloads
    /// never batch: consecutive ring CZs blockade each other on a compact
    /// placement).
    fn qv_workload(b: &mut CircuitBuilder, n: usize, rounds: usize) {
        let mut state = 0x51ed_0b5e_u64;
        let mut next = |m: usize| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % m
        };
        let mut perm: Vec<u32> = (0..n as u32).collect();
        for _ in 0..rounds {
            for q in 0..n {
                b.h(q as u32);
            }
            for i in (1..n).rev() {
                perm.swap(i, next(i + 1));
            }
            for pair in perm.chunks_exact(2) {
                b.cx(pair[0], pair[1]);
            }
        }
    }

    /// Compiles `c` in multi-mover mode at `seed`, replays the schedule
    /// layer by layer, and checks every layer's plan set against the
    /// all-pairs oracle. Returns the number of layers that batched more
    /// than one plan.
    fn replay_and_count_multi_layers(c: &Circuit, seed: u64) -> usize {
        let cfg = CompilerConfig::quick(seed).with_multi_mover();
        let layout = GraphineLayout::generate(c, &cfg.placement);
        let mut d = discretize(c, &layout, MachineSpec::quera_aquila_256());
        let sel = select_aod_qubits(c, &mut d, &cfg);
        let mut replay = d.clone();
        let s = schedule_gates(c, &mut d, &sel, &cfg);
        let clearance = replay.array.spec().min_separation_um;

        let mut homes: Vec<Option<Point>> = vec![None; c.num_qubits()];
        let mut multi_layers = 0usize;
        for layer in &s.layers {
            let plans: Vec<Vec<Corridor>> = {
                let mut out = Vec::new();
                let mut offset = 0usize;
                for &k in &layer.mover_plans {
                    let group = &layer.moves[offset..offset + k as usize];
                    out.push(
                        group
                            .iter()
                            .map(|m| Corridor {
                                q: m.q,
                                from: replay.array.position(m.q),
                                to: Point::new(m.x, m.y),
                            })
                            .collect(),
                    );
                    offset += k as usize;
                }
                assert_eq!(offset, layer.moves.len());
                out
            };
            for i in 0..plans.len() {
                for j in i + 1..plans.len() {
                    assert!(
                        !moves_conflict_naive(&plans[i], &plans[j], clearance),
                        "plans {i} and {j} interfere"
                    );
                }
            }
            if plans.len() > 1 {
                multi_layers += 1;
            }
            // The concatenated batch replays from the layer boundary.
            assert!(replay.array.check_aod_moves(&layer.moves).is_empty());
            for m in &layer.moves {
                if homes[m.q as usize].is_none() {
                    homes[m.q as usize] = Some(replay.array.position(m.q));
                }
            }
            replay.array.apply_aod_moves(&layer.moves).unwrap();
            // Home return, as the scheduler does after each layer.
            let returns: Vec<AodMove> = layer
                .moves
                .iter()
                .filter_map(|m| {
                    let home = homes[m.q as usize].unwrap();
                    (replay.array.position(m.q).distance(&home) > 1e-9).then_some(AodMove {
                        q: m.q,
                        x: home.x,
                        y: home.y,
                    })
                })
                .collect();
            replay.array.apply_aod_moves(&returns).unwrap();
        }
        multi_layers
    }

    #[test]
    fn committed_plans_are_pairwise_disjoint() {
        // Replay compiled schedules: per layer, reconstruct each plan's
        // corridors from the layer-start configuration (plans touch
        // disjoint qubits, so pre-move positions are layer-start
        // positions) and check pairwise disjointness with the oracle.
        // Batching depends on the placement's geometry, so sweep a few
        // placement seeds — every compile is replay-verified, and at
        // least one must actually batch for the sweep to prove anything.
        let mut b = CircuitBuilder::new(32);
        qv_workload(&mut b, 32, 6);
        let c = b.build();
        let mut batched = 0usize;
        for seed in 0..5 {
            batched += replay_and_count_multi_layers(&c, seed);
        }
        assert!(batched > 0, "no placement seed ever batched two plans in one layer");
    }
}
