//! Compiled parameterized templates: the variational-sweep fast path.
//!
//! Placement and movement scheduling read a circuit's *structure* only —
//! CZ topology, gate kinds, operand order — never its U3 rotation angles
//! (the angles flow through to execution, not to the planner). A
//! [`CompiledTemplate`] exploits that: it pairs the structural
//! [`CircuitTemplate`] of a circuit with its full [`CompilationResult`],
//! so every other member of a parameter sweep is served by
//! [`CompiledTemplate::rebind`] — parameter validation plus a circuit
//! materialization, microseconds instead of a placement + scheduling run.
//!
//! This is a *fast path that intentionally skips the compiler*, so its
//! guarantee is carried by the workspace differential layer rather than by
//! construction: the umbrella `tests/differential.rs` proves, per sweep
//! member, that the template's payload is byte-identical to an independent
//! cold compile of the bound circuit and statevector-equivalent via
//! `parallax-sim`.
//!
//! Templates are shared process-wide through the
//! [`layout_cache`](crate::layout_cache) layer ([`compiled_template`]),
//! keyed by (structural hash, machine+config fingerprint) and budgeted by
//! the same `PARALLAX_LAYOUT_CACHE` knob as the layout and plan caches.

use crate::layout_cache::{self, TemplateKey};
use crate::{CompilationResult, ParallaxCompiler};
use parallax_circuit::{structural_hash, BindError, Circuit, CircuitTemplate};
use std::sync::Arc;

/// A fully compiled artifact for one circuit *structure*: the angle-slot
/// template plus the schedule every angle assignment shares.
#[derive(Debug, Clone)]
pub struct CompiledTemplate {
    template: CircuitTemplate,
    result: CompilationResult,
}

impl CompiledTemplate {
    /// Compile `circuit` (through the regular pipeline, layout/plan caches
    /// included) and abstract its angles into a template.
    pub fn compile(compiler: &ParallaxCompiler, circuit: &Circuit) -> Self {
        Self { template: CircuitTemplate::from_circuit(circuit), result: compiler.compile(circuit) }
    }

    /// The angle-slot template (slot count, structural hash, gate list).
    pub fn template(&self) -> &CircuitTemplate {
        &self.template
    }

    /// The compiled artifact shared by every parameter assignment.
    pub fn result(&self) -> &CompilationResult {
        &self.result
    }

    /// Number of parameter slots a [`rebind`](Self::rebind) must fill.
    pub fn num_params(&self) -> usize {
        self.template.num_params()
    }

    /// Structural fingerprint of the compiled structure.
    pub fn structural_hash(&self) -> u64 {
        self.template.structural_hash()
    }

    /// Bind `params` into the template, returning the concrete circuit
    /// this artifact executes for them. Fails (never panics) on arity
    /// mismatch or non-finite parameters; on success the caller pairs the
    /// returned circuit with [`result`](Self::result) — the schedule and
    /// payload are identical for every binding, which the differential
    /// suite proves against independent cold compiles.
    pub fn rebind(&self, params: &[f64]) -> Result<Circuit, BindError> {
        self.template.bind(params)
    }
}

/// The template cache key for compiling `circuit` under `compiler`.
///
/// Computing the structural hash renders the slot-canonical QASM text, so
/// sweep loops should build the key **once** and probe with
/// [`compiled_template_keyed`] per point — re-keying every point would
/// put a text rendering inside the microsecond rebind budget.
pub fn template_key(compiler: &ParallaxCompiler, circuit: &Circuit) -> TemplateKey {
    TemplateKey { structural: structural_hash(circuit), compiler: compiler.fingerprint() }
}

/// Fetch or compile the process-wide template for `circuit` under
/// `compiler`; the boolean reports whether the template cache answered.
///
/// Misses compile **outside** the cache lock and publish afterwards; if
/// two threads race the same structure both compile the identical
/// (deterministic) artifact, so last-write-wins is harmless.
pub fn compiled_template(
    compiler: &ParallaxCompiler,
    circuit: &Circuit,
) -> (Arc<CompiledTemplate>, bool) {
    compiled_template_keyed(template_key(compiler, circuit), compiler, circuit)
}

/// [`compiled_template`] with a precomputed [`template_key`]: a hit is a
/// lock + map probe + pointer clone, nothing else.
pub fn compiled_template_keyed(
    key: TemplateKey,
    compiler: &ParallaxCompiler,
    circuit: &Circuit,
) -> (Arc<CompiledTemplate>, bool) {
    let probe = {
        let _s = parallax_trace::span!("cache.template.probe");
        layout_cache::lookup_template(&key)
    };
    if let Some(template) = probe {
        return (template, true);
    }
    let template = Arc::new(CompiledTemplate::compile(compiler, circuit));
    layout_cache::record_template(key, Arc::clone(&template));
    (template, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompilerConfig;
    use parallax_hardware::MachineSpec;

    fn ansatz(theta: f64) -> Circuit {
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.push(parallax_circuit::Gate::u3(q, theta, theta / 2.0, -theta));
        }
        for q in 0..3 {
            c.push(parallax_circuit::Gate::cz(q, q + 1));
        }
        c
    }

    #[test]
    fn rebind_validates_and_materializes() {
        let compiler =
            ParallaxCompiler::new(MachineSpec::quera_aquila_256(), CompilerConfig::quick(11));
        let t = CompiledTemplate::compile(&compiler, &ansatz(0.3));
        assert_eq!(t.num_params(), 12);
        let params: Vec<f64> = (0..12).map(|i| i as f64 / 7.0).collect();
        let bound = t.rebind(&params).unwrap();
        assert_eq!(parallax_circuit::structural_hash(&bound), t.structural_hash());
        assert!(t.rebind(&params[..5]).is_err());
        assert_eq!(t.result().num_qubits, 4);
    }

    #[test]
    fn global_template_cache_answers_angle_variants() {
        // Unique seed so this test's keys cannot collide with other tests
        // hitting the shared global cache; assertions are delta-based.
        let compiler =
            ParallaxCompiler::new(MachineSpec::quera_aquila_256(), CompilerConfig::quick(0xBEEF01));
        let before = layout_cache::template_cache_stats();
        let (cold, cold_hit) = compiled_template(&compiler, &ansatz(0.25));
        let (warm, warm_hit) = compiled_template(&compiler, &ansatz(1.75));
        let after = layout_cache::template_cache_stats();
        assert!(!cold_hit && warm_hit, "angle variant must be a structural hit");
        assert!(Arc::ptr_eq(&cold, &warm), "hit returns the shared artifact");
        assert!(after.hits > before.hits && after.misses > before.misses);

        // A different config fingerprint is a different key.
        let other =
            ParallaxCompiler::new(MachineSpec::quera_aquila_256(), CompilerConfig::quick(0xBEEF02));
        let (_, hit) = compiled_template(&other, &ansatz(0.25));
        assert!(!hit, "different compiler fingerprint must miss");
    }
}
