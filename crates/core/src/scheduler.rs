//! Step 4: gate and movement scheduling (Algorithm 1 of the paper).
//!
//! Layers are built greedily from the dependency frontier; out-of-range CZ
//! gates trigger at most one recursive AOD move per layer (others defer);
//! gates whose operands are both static and out of range fall back to a
//! trap change (release/retrap, 100 µs); the layer is shuffled before the
//! Rydberg-blockade interference pass ejects conflicting gates back to the
//! unexecuted list; and moved AOD atoms return to their pre-layer homes
//! after execution (the Fig. 12 ablation toggles this off).

use crate::aod_select::AodSelection;
use crate::config::CompilerConfig;
use crate::discretize::DiscretizedLayout;
use crate::movement::{plan_move_into_range, plan_return_home};
use parallax_circuit::{Circuit, DependencyDag, Gate};
use parallax_hardware::{within_blockade, AodMove, Point};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One executed layer of the compiled schedule.
#[derive(Debug, Clone)]
pub struct ScheduledLayer {
    /// Indices (into the input circuit's gate list) executed in this layer.
    pub gate_indices: Vec<usize>,
    /// AOD moves committed before the layer's gates fire.
    pub moves: Vec<AodMove>,
    /// Longest single-atom displacement of the move batch, µm (atoms move
    /// in parallel, so this bounds the movement time).
    pub move_distance_um: f64,
    /// Longest displacement of the home-return batch, µm.
    pub return_distance_um: f64,
    /// Trap changes (release/retrap) performed for this layer's gates.
    pub trap_changes: usize,
    /// Whether any U3 gate executes in this layer.
    pub has_u3: bool,
    /// Whether any CZ gate executes in this layer.
    pub has_cz: bool,
}

/// Aggregate statistics of a compilation (the paper's evaluation metrics).
#[derive(Debug, Clone, Default)]
pub struct CompileStats {
    /// Two-qubit CZ gates executed — identical to the input circuit's count
    /// because Parallax introduces zero SWAPs.
    pub cz_count: usize,
    /// One-qubit U3 gates executed.
    pub u3_count: usize,
    /// SWAP gates inserted (always 0 for Parallax; baselines differ).
    pub swap_count: usize,
    /// Number of executed layers.
    pub layer_count: usize,
    /// Total trap-change operations (the paper observes ~1.3% of CZ gates).
    pub trap_changes: usize,
    /// Successfully planned into-range AOD moves.
    pub moves_planned: usize,
    /// Moves that failed (recursion limit / no endpoint) and fell back to a
    /// trap change.
    pub failed_moves: usize,
    /// Sum of per-layer maximum move distances, µm.
    pub total_move_distance_um: f64,
    /// Gates deferred because the layer's single move was already spent.
    pub deferred_gates: usize,
    /// Gates ejected by the Rydberg blockade interference check.
    pub blockade_ejections: usize,
}

/// A compiled schedule: executable layers plus statistics.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Executed layers in order.
    pub layers: Vec<ScheduledLayer>,
    /// Aggregate statistics.
    pub stats: CompileStats,
}

impl Schedule {
    /// Flattened gate execution order (indices into the input circuit).
    pub fn gate_order(&self) -> Vec<usize> {
        self.layers.iter().flat_map(|l| l.gate_indices.iter().copied()).collect()
    }
}

/// Safety factor on scheduling iterations before declaring livelock.
fn iteration_cap(num_gates: usize) -> usize {
    10 * num_gates + 1000
}

/// Run Algorithm 1. Mutates `layout.array` (atom motion and trap state).
pub fn schedule_gates(
    circuit: &Circuit,
    layout: &mut DiscretizedLayout,
    _selection: &AodSelection,
    config: &CompilerConfig,
) -> Schedule {
    let gates = circuit.gates();
    let num_gates = gates.len();
    let qubit_gates = circuit.qubit_gate_indices();
    let mut ptr = vec![0usize; circuit.num_qubits()];
    let mut executed = vec![false; num_gates];
    let mut executed_count = 0usize;
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5eed);
    let r = layout.interaction_radius_um;
    let blockade_factor = layout.array.spec().blockade_factor;

    let mut layers = Vec::new();
    let mut stats = CompileStats {
        cz_count: circuit.cz_count(),
        u3_count: circuit.u3_count(),
        ..Default::default()
    };

    let mut guard = 0usize;
    let cap = iteration_cap(num_gates);
    while executed_count < num_gates {
        guard += 1;
        assert!(guard <= cap, "scheduler livelock: {executed_count}/{num_gates} gates executed");

        // ---- Lines 7-11: build the dependency frontier layer. ----
        let mut curr: Vec<usize> = Vec::new();
        for q in 0..circuit.num_qubits() {
            let Some(&g) = qubit_gates[q].get(ptr[q]) else { continue };
            match gates[g] {
                Gate::U3 { .. } => curr.push(g),
                Gate::Cz { a, b } => {
                    // Ready only when it is the next gate on *both* qubits;
                    // dedupe by letting the smaller operand add it.
                    let (ai, bi) = (a as usize, b as usize);
                    let ready = qubit_gates[ai].get(ptr[ai]) == Some(&g)
                        && qubit_gates[bi].get(ptr[bi]) == Some(&g);
                    if ready && q == ai.min(bi) {
                        curr.push(g);
                    }
                }
            }
        }
        assert!(!curr.is_empty(), "dependency frontier is empty before completion");

        // ---- Lines 12-19: movement resolution for out-of-range CZs. ----
        let mut moved_this_layer = false;
        let mut committed_moves: Vec<AodMove> = Vec::new();
        let mut move_distance_um = 0.0f64;
        let mut moved_homes: Vec<(u32, Point)> = Vec::new();
        let mut trap_changes = 0usize;
        // Gates that executed via trap change: (gate, virtually moved qubit).
        let mut trap_changed: Vec<(usize, u32)> = Vec::new();
        let mut kept: Vec<usize> = Vec::new();
        let mut deferred = 0usize;

        for &g in &curr {
            let Gate::Cz { a, b } = gates[g] else {
                kept.push(g);
                continue;
            };
            if layout.array.distance(a, b) <= r + 1e-9 {
                kept.push(g);
                continue;
            }
            let aod_operand = if layout.array.is_aod(a) {
                Some(a)
            } else if layout.array.is_aod(b) {
                Some(b)
            } else {
                None
            };
            match aod_operand {
                Some(mover) if !moved_this_layer => {
                    let target = if mover == a { b } else { a };
                    let mut attempt = plan_move_into_range(
                        &layout.array,
                        mover,
                        target,
                        r,
                        config.max_move_recursion,
                    );
                    // With both operands mobile, either may be the mover;
                    // retry in the other direction before giving up.
                    if attempt.is_err() && layout.array.is_aod(target) {
                        attempt = plan_move_into_range(
                            &layout.array,
                            target,
                            mover,
                            r,
                            config.max_move_recursion,
                        );
                    }
                    match attempt {
                        Ok(plan) => {
                            for m in &plan.moves {
                                moved_homes.push((m.q, layout.array.position(m.q)));
                            }
                            layout
                                .array
                                .apply_aod_moves(&plan.moves)
                                .expect("validated plan must commit");
                            committed_moves = plan.moves;
                            move_distance_um = plan.max_distance_um;
                            moved_this_layer = true;
                            stats.moves_planned += 1;
                            stats.total_move_distance_um += plan.max_distance_um;
                            kept.push(g);
                        }
                        Err(_) => {
                            // Failed move: resolve with a trap change
                            // (Section III: "Failed moves are resolved using
                            // trap changes").
                            stats.failed_moves += 1;
                            trap_changes += 1;
                            trap_changed.push((g, mover));
                            kept.push(g);
                        }
                    }
                }
                Some(_) => {
                    // Line 16-17: one move per layer; defer this gate.
                    deferred += 1;
                    continue;
                }
                None => {
                    // Lines 18-19: neither operand is mobile — release and
                    // retrap one of them (the ~1.3% case).
                    trap_changes += 1;
                    trap_changed.push((g, a));
                    kept.push(g);
                }
            }
        }
        stats.deferred_gates += deferred;

        // The committed move may have displaced atoms of *other* kept CZ
        // gates out of range; those defer too (they cannot move again).
        if moved_this_layer {
            kept.retain(|&g| match gates[g] {
                Gate::Cz { a, b } => {
                    let in_range = layout.array.distance(a, b) <= r + 1e-9
                        || trap_changed.iter().any(|&(tg, _)| tg == g);
                    if !in_range {
                        stats.deferred_gates += 1;
                    }
                    in_range
                }
                _ => true,
            });
        }

        // ---- Line 20: shuffle to avoid starving any one qubit. ----
        kept.shuffle(&mut rng);

        // ---- Lines 21-22: Rydberg blockade interference ejection. ----
        // A trap-changed atom spends the gate adjacent to its partner, so
        // its effective position is its partner's side. Precompute the
        // effective operand positions of every kept CZ gate.
        let mut effective: std::collections::HashMap<usize, [Point; 2]> =
            std::collections::HashMap::new();
        for &g in &kept {
            if let Gate::Cz { a, b } = gates[g] {
                let mut pa = layout.array.position(a);
                let mut pb = layout.array.position(b);
                if let Some(&(_, moved)) = trap_changed.iter().find(|&&(tg, _)| tg == g) {
                    if moved == a {
                        pa = pb;
                    } else if moved == b {
                        pb = pa;
                    }
                }
                effective.insert(g, [pa, pb]);
            }
        }
        let mut accepted: Vec<usize> = Vec::new();
        let mut accepted_cz: Vec<usize> = Vec::new();
        for &g in &kept {
            match gates[g] {
                Gate::U3 { .. } => accepted.push(g),
                Gate::Cz { .. } => {
                    let mine = effective[&g];
                    let conflict = accepted_cz.iter().any(|&other| {
                        let theirs = effective[&other];
                        mine.iter().any(|p| {
                            theirs.iter().any(|q| within_blockade(p, q, r, blockade_factor))
                        })
                    });
                    if conflict {
                        stats.blockade_ejections += 1;
                        // If this was the trap-changed gate, the trap change
                        // did not happen after all.
                        if let Some(pos) = trap_changed.iter().position(|&(tg, _)| tg == g) {
                            trap_changed.remove(pos);
                            trap_changes -= 1;
                        }
                    } else {
                        accepted.push(g);
                        accepted_cz.push(g);
                    }
                }
            }
        }
        assert!(
            !accepted.is_empty(),
            "blockade pass emptied a layer: curr={curr:?} kept={kept:?} moved={moved_this_layer} trap_changed={trap_changed:?}"
        );

        // ---- Line 23: execute. ----
        let mut has_u3 = false;
        let mut has_cz = false;
        for &g in &accepted {
            executed[g] = true;
            executed_count += 1;
            match gates[g] {
                Gate::U3 { q, .. } => {
                    has_u3 = true;
                    ptr[q as usize] += 1;
                }
                Gate::Cz { a, b } => {
                    has_cz = true;
                    ptr[a as usize] += 1;
                    ptr[b as usize] += 1;
                }
            }
        }

        // ---- Line 24: return moved atoms home. ----
        let mut return_distance_um = 0.0;
        if config.return_home && !moved_homes.is_empty() {
            let plan = plan_return_home(&layout.array, &moved_homes);
            return_distance_um = plan.max_distance_um;
            if !plan.moves.is_empty() {
                layout
                    .array
                    .apply_aod_moves(&plan.moves)
                    .expect("home configuration is always valid");
            }
        }

        stats.layer_count += 1;
        stats.trap_changes += trap_changes;
        layers.push(ScheduledLayer {
            gate_indices: accepted,
            moves: committed_moves,
            move_distance_um,
            return_distance_um,
            trap_changes,
            has_u3,
            has_cz,
        });
    }

    let schedule = Schedule { layers, stats };
    debug_assert!(
        DependencyDag::build(circuit).respects_order(&schedule.gate_order()),
        "schedule violates gate dependencies"
    );
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aod_select::select_aod_qubits;
    use crate::discretize::discretize;
    use parallax_circuit::CircuitBuilder;
    use parallax_graphine::GraphineLayout;
    use parallax_hardware::MachineSpec;

    fn compile_with(
        n: usize,
        build: impl Fn(&mut CircuitBuilder),
        cfg: &CompilerConfig,
    ) -> (Circuit, Schedule) {
        let mut b = CircuitBuilder::new(n);
        build(&mut b);
        let c = b.build();
        let layout = GraphineLayout::generate(&c, &cfg.placement);
        let mut d = discretize(&c, &layout, MachineSpec::quera_aquila_256());
        let sel = select_aod_qubits(&c, &mut d, cfg);
        let s = schedule_gates(&c, &mut d, &sel, cfg);
        (c, s)
    }

    #[test]
    fn all_gates_execute_exactly_once() {
        let cfg = CompilerConfig::quick(1);
        let (c, s) = compile_with(
            4,
            |b| {
                b.h(0).cx(0, 1).cx(1, 2).cx(2, 3).cx(0, 3).h(3);
            },
            &cfg,
        );
        let order = s.gate_order();
        assert_eq!(order.len(), c.len());
        let mut seen = vec![false; c.len()];
        for g in order {
            assert!(!seen[g], "gate {g} executed twice");
            seen[g] = true;
        }
    }

    #[test]
    fn schedule_respects_dependencies() {
        let cfg = CompilerConfig::quick(2);
        let (c, s) = compile_with(
            5,
            |b| {
                b.h(0).cx(0, 1).cx(1, 2).rz(0.4, 2).cx(2, 3).cx(3, 4).cx(0, 4);
            },
            &cfg,
        );
        let dag = DependencyDag::build(&c);
        assert!(dag.respects_order(&s.gate_order()));
    }

    #[test]
    fn zero_swaps_always() {
        let cfg = CompilerConfig::quick(3);
        let (c, s) = compile_with(
            6,
            |b| {
                for i in 0..6u32 {
                    for j in (i + 1)..6 {
                        b.cx(i, j);
                    }
                }
            },
            &cfg,
        );
        assert_eq!(s.stats.swap_count, 0);
        assert_eq!(s.stats.cz_count, c.cz_count());
    }

    #[test]
    fn stats_account_for_every_gate() {
        let cfg = CompilerConfig::quick(4);
        let (c, s) = compile_with(
            3,
            |b| {
                b.h(0).h(1).h(2).cx(0, 1).cx(1, 2).ccx(0, 1, 2);
            },
            &cfg,
        );
        assert_eq!(s.stats.cz_count + s.stats.u3_count, c.len());
        assert_eq!(s.stats.layer_count, s.layers.len());
        let executed: usize = s.layers.iter().map(|l| l.gate_indices.len()).sum();
        assert_eq!(executed, c.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let build = |b: &mut CircuitBuilder| {
            b.h(0).cx(0, 3).cx(1, 2).cx(0, 2).cx(1, 3).ccx(0, 1, 2);
        };
        let cfg = CompilerConfig::quick(7);
        let (_, s1) = compile_with(4, build, &cfg);
        let (_, s2) = compile_with(4, build, &cfg);
        assert_eq!(s1.gate_order(), s2.gate_order());
        assert_eq!(s1.stats.trap_changes, s2.stats.trap_changes);
    }

    #[test]
    fn array_state_stays_valid_throughout() {
        let cfg = CompilerConfig::quick(5);
        let mut b = CircuitBuilder::new(8);
        for i in 0..8u32 {
            b.h(i);
        }
        for i in 0..8u32 {
            b.cx(i, (i + 3) % 8);
        }
        let c = b.build();
        let layout = GraphineLayout::generate(&c, &cfg.placement);
        let mut d = discretize(&c, &layout, MachineSpec::quera_aquila_256());
        let sel = select_aod_qubits(&c, &mut d, &cfg);
        let _ = schedule_gates(&c, &mut d, &sel, &cfg);
        assert!(d.array.validate().is_empty());
    }

    #[test]
    fn home_return_restores_aod_positions() {
        let cfg = CompilerConfig::quick(6);
        let mut b = CircuitBuilder::new(6);
        for i in 0..6u32 {
            b.cx(i, (i + 2) % 6);
        }
        let c = b.build();
        let layout = GraphineLayout::generate(&c, &cfg.placement);
        let mut d = discretize(&c, &layout, MachineSpec::quera_aquila_256());
        let sel = select_aod_qubits(&c, &mut d, &cfg);
        let homes: Vec<(u32, Point)> =
            sel.selected.iter().map(|&q| (q, d.array.position(q))).collect();
        let _ = schedule_gates(&c, &mut d, &sel, &cfg);
        for (q, home) in homes {
            assert!(d.array.position(q).distance(&home) < 1e-6, "q{q} did not return home");
        }
    }

    #[test]
    fn without_home_return_atoms_may_stay_displaced() {
        // Same circuit twice; the no-return variant accumulates movement
        // savings (Fig. 12 shows lower *total* distance is NOT guaranteed,
        // only that the toggle changes behaviour).
        let cfg_home = CompilerConfig::quick(8);
        let cfg_stay = CompilerConfig::quick(8).without_home_return();
        let build = |b: &mut CircuitBuilder| {
            for i in 0..6u32 {
                b.cx(i, (i + 2) % 6);
            }
            for i in 0..6u32 {
                b.cx(i, (i + 3) % 6);
            }
        };
        let (_, s_home) = compile_with(6, build, &cfg_home);
        let (_, s_stay) = compile_with(6, build, &cfg_stay);
        let return_home_total: f64 = s_home.layers.iter().map(|l| l.return_distance_um).sum();
        let return_stay_total: f64 = s_stay.layers.iter().map(|l| l.return_distance_um).sum();
        assert!(return_stay_total <= return_home_total);
        assert_eq!(s_stay.stats.cz_count, s_home.stats.cz_count);
    }

    #[test]
    fn single_qubit_circuit_schedules() {
        let cfg = CompilerConfig::quick(9);
        let (c, s) = compile_with(
            1,
            |b| {
                b.h(0).rz(0.5, 0).h(0);
            },
            &cfg,
        );
        assert_eq!(s.gate_order().len(), c.len());
        assert_eq!(s.stats.trap_changes, 0);
        assert_eq!(s.stats.moves_planned, 0);
    }

    #[test]
    fn parallel_u3_gates_share_a_layer() {
        let cfg = CompilerConfig::quick(10);
        let (_, s) = compile_with(
            4,
            |b| {
                b.h(0).h(1).h(2).h(3);
            },
            &cfg,
        );
        assert_eq!(s.layers.len(), 1);
        assert_eq!(s.layers[0].gate_indices.len(), 4);
    }
}
