//! Step 4: gate and movement scheduling (Algorithm 1 of the paper).
//!
//! Layers are built greedily from the dependency frontier; out-of-range CZ
//! gates trigger at most one recursive AOD move per layer (others defer);
//! gates whose operands are both static and out of range fall back to a
//! trap change (release/retrap, 100 µs); the layer is shuffled before the
//! Rydberg-blockade interference pass ejects conflicting gates back to the
//! unexecuted list; and moved AOD atoms return to their pre-layer homes
//! after execution (the Fig. 12 ablation toggles this off).
//!
//! # The hot path
//!
//! On large circuits the scheduler dominates warm-cache compiles, so its
//! per-layer loop is engineered around five structures, each bit-identical
//! to the straightforward implementation it replaces (`schedule_gates_naive`
//! is kept under `#[cfg(any(test, debug_assertions))]` as the oracle, and
//! proptests diff the two on random circuits):
//!
//! * an **incremental dependency frontier** — the ready set is updated from
//!   the qubits whose gate pointer advanced in the previous layer instead
//!   of rescanning every qubit, and emits gates in the same
//!   ascending-qubit order by construction;
//! * a **bucketed blockade pass** — accepted CZ endpoints go into a
//!   uniform grid with blockade-diameter cells, so each candidate gate is
//!   tested only against endpoints in the neighbouring cells instead of
//!   all accepted gates (the conflict predicate is unchanged, so the
//!   accept/eject decisions are identical);
//! * **failed-move memoization** — a gate whose endpoint probes all failed
//!   is not re-probed in later layers while the AOD configuration is
//!   unchanged (position-epoch fast path, exact position comparison
//!   fallback), because the planner is a pure function of the array state;
//! * **successful-plan caching** — the dual of the failed-move memo plus a
//!   process-wide cross-compile layer ([`crate::layout_cache::PlanCache`]):
//!   a gate whose move was planned before against the exact current AOD
//!   configuration (the home-return steady state, within a compile or
//!   across repeat compiles of the same layout) reuses the recorded plan
//!   instead of re-running the endpoint cascade, with
//!   [`CompileStats::plan_cache_hits`]/[`CompileStats::plan_cache_cross_hits`]
//!   counting the savings;
//! * a reusable [`SchedulerScratch`] so the per-layer loop performs no
//!   allocations beyond the `ScheduledLayer` outputs themselves.
//!
//! `PARALLAX_PROFILE=1` additionally records per-sub-stage timers
//! (frontier / movement / blockade / return-home) through
//! [`crate::profile`], one call per executed layer.

use crate::aod_select::AodSelection;
use crate::config::CompilerConfig;
use crate::discretize::DiscretizedLayout;
#[cfg(any(test, debug_assertions))]
use crate::movement::plan_return_home;
use crate::movement::{plan_move_into_range, MovePlan};
use crate::profile::{self, Stage};
use parallax_circuit::{Circuit, DependencyDag, Gate, QubitGatesCsr};
use parallax_hardware::{within_blockade, AodMove, AtomArray, CellGeometry, Point};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// One executed layer of the compiled schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledLayer {
    /// Indices (into the input circuit's gate list) executed in this layer.
    pub gate_indices: Vec<usize>,
    /// AOD moves committed before the layer's gates fire.
    pub moves: Vec<AodMove>,
    /// Longest single-atom displacement of the move batch, µm (atoms move
    /// in parallel, so this bounds the movement time).
    pub move_distance_um: f64,
    /// Longest displacement of the home-return batch, µm.
    pub return_distance_um: f64,
    /// Trap changes (release/retrap) performed for this layer's gates.
    pub trap_changes: usize,
    /// Whether any U3 gate executes in this layer.
    pub has_u3: bool,
    /// Whether any CZ gate executes in this layer.
    pub has_cz: bool,
    /// How many of [`ScheduledLayer::moves`] each committed move plan
    /// contributed, in commit order. The default scheduler emits at most
    /// one plan per layer; the multi-mover ablation emits several, and the
    /// differential suite uses these boundaries to re-check pairwise
    /// corridor disjointness between concurrent plans.
    pub mover_plans: Vec<u32>,
}

/// Aggregate statistics of a compilation (the paper's evaluation metrics).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompileStats {
    /// Two-qubit CZ gates executed — identical to the input circuit's count
    /// because Parallax introduces zero SWAPs.
    pub cz_count: usize,
    /// One-qubit U3 gates executed.
    pub u3_count: usize,
    /// SWAP gates inserted (always 0 for Parallax; baselines differ).
    pub swap_count: usize,
    /// Number of executed layers.
    pub layer_count: usize,
    /// Total trap-change operations (the paper observes ~1.3% of CZ gates).
    pub trap_changes: usize,
    /// Successfully planned into-range AOD moves.
    pub moves_planned: usize,
    /// Moves that failed (recursion limit / no endpoint) and fell back to a
    /// trap change.
    pub failed_moves: usize,
    /// Sum of per-layer maximum move distances, µm.
    pub total_move_distance_um: f64,
    /// Gates deferred because the layer's single move was already spent.
    pub deferred_gates: usize,
    /// Gates ejected by the Rydberg blockade interference check.
    pub blockade_ejections: usize,
    /// [`CompileStats::failed_moves`] answered by the failed-move memo
    /// table instead of a fresh probe cascade (a scheduling-cost counter;
    /// the compiled schedule is identical with the memo off).
    pub failed_move_memo_hits: usize,
    /// Successful move plans answered by the **per-compile** plan memo
    /// (the home-return steady state: the same gate re-planned against an
    /// AOD configuration that returned to a recorded one). Like the memo
    /// hits, a scheduling-cost counter — reused plans are bit-identical
    /// to fresh cascades by planner purity, so the schedule is unchanged.
    pub plan_cache_hits: usize,
    /// Successful move plans answered by the **process-wide** plan cache
    /// ([`crate::layout_cache::PlanCache`]) — repeat traffic across
    /// compiles of the same layout skips the probe cascade entirely.
    pub plan_cache_cross_hits: usize,
    /// Heap allocations performed by the scheduler's bucketed blockade
    /// scratch over the whole compile: the bucket grid itself plus every
    /// capacity growth of a bucket or the occupied-cell list. The scratch
    /// is cleared (not freed) between layers, so in the steady state this
    /// stays at its warm-up value no matter how many layers run — a
    /// scheduling-cost counter like the memo hits; the naive twin has no
    /// buckets and reports 0.
    pub bucket_scratch_allocs: usize,
    /// Home-return entries skipped because the atom's position epoch is
    /// unchanged since the layer that last moved it — it is already parked
    /// at home, so the batched return pass drops it without a distance
    /// re-check. A scheduling-cost counter: the emitted return moves are
    /// identical with the skip off, and the naive twin (which rebuilds its
    /// per-layer home list from scratch) reports 0.
    pub home_return_skips: usize,
    /// Multi-mover ablation counters (all zero on the default path).
    pub multi_mover: MultiMoverStats,
}

/// Counters specific to the [`SchedulingMode::MultiMover`] ablation path.
///
/// [`SchedulingMode::MultiMover`]: crate::config::SchedulingMode::MultiMover
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MultiMoverStats {
    /// Whether this compile ran the multi-mover path at all.
    pub enabled: bool,
    /// Movers-per-layer histogram: `movers_per_layer[k-1]` counts layers
    /// that committed exactly `k` move plans (the last bucket absorbs 8+).
    pub movers_per_layer: [usize; 8],
    /// Extra move plans committed beyond the first of each layer — each
    /// one is a layer the single-mover rule would have needed on its own,
    /// so this is the layers-saved estimate the `METRICS` exposition
    /// reports.
    pub layers_saved: usize,
    /// Movement candidates rejected because their corridor came within the
    /// blockade radius of an already-committed plan's corridor.
    pub conflict_rejections: usize,
}

impl CompileStats {
    /// Accumulate this compile's statistics into the process-wide metrics
    /// registry (`parallax_compile_stat_total{stat=...}`), so fleet-level
    /// gate/move/trap-change totals show up in the `METRICS` exposition
    /// alongside the stage timers. Registry handles resolve once per
    /// process; afterwards this is a dozen relaxed adds per compile —
    /// noise next to the compile itself. Distances are rounded to whole
    /// µm (counters are integral).
    pub fn publish_metrics(&self) {
        type StatRow = (parallax_trace::Counter, fn(&CompileStats) -> u64);
        struct Handles {
            table: [StatRow; 18],
        }
        static HANDLES: std::sync::OnceLock<Handles> = std::sync::OnceLock::new();
        let h = HANDLES.get_or_init(|| {
            let c = |stat: &str| {
                parallax_trace::counter("parallax_compile_stat_total", &[("stat", stat)])
            };
            Handles {
                table: [
                    (c("compiles"), |_| 1),
                    (c("cz_gates"), |s| s.cz_count as u64),
                    (c("u3_gates"), |s| s.u3_count as u64),
                    (c("layers"), |s| s.layer_count as u64),
                    (c("trap_changes"), |s| s.trap_changes as u64),
                    (c("moves_planned"), |s| s.moves_planned as u64),
                    (c("failed_moves"), |s| s.failed_moves as u64),
                    (c("move_distance_um"), |s| s.total_move_distance_um.round() as u64),
                    (c("deferred_gates"), |s| s.deferred_gates as u64),
                    (c("blockade_ejections"), |s| s.blockade_ejections as u64),
                    (c("plan_memo_hits"), |s| s.plan_cache_hits as u64),
                    (c("plan_cross_hits"), |s| s.plan_cache_cross_hits as u64),
                    (c("bucket_scratch_allocs"), |s| s.bucket_scratch_allocs as u64),
                    (c("home_return_skips"), |s| s.home_return_skips as u64),
                    (c("multi_mover_compiles"), |s| u64::from(s.multi_mover.enabled)),
                    (c("multi_mover_layers_saved"), |s| s.multi_mover.layers_saved as u64),
                    (c("multi_mover_conflicts"), |s| s.multi_mover.conflict_rejections as u64),
                    (c("multi_mover_multi_layers"), |s| {
                        s.multi_mover.movers_per_layer[1..].iter().sum::<usize>() as u64
                    }),
                ],
            }
        });
        for (counter, extract) in &h.table {
            counter.add(extract(self));
        }
        if self.multi_mover.enabled {
            // Movers-per-layer histogram (bucket k holds layers that
            // committed k move plans; 8+ overflows).
            static MOVERS: std::sync::OnceLock<parallax_trace::Histogram> =
                std::sync::OnceLock::new();
            let h = MOVERS.get_or_init(|| {
                parallax_trace::histogram(
                    "parallax_multi_mover_movers_per_layer",
                    &[],
                    &[1, 2, 3, 4, 5, 6, 7],
                )
            });
            for (i, &count) in self.multi_mover.movers_per_layer.iter().enumerate() {
                for _ in 0..count {
                    h.record(i as u64 + 1);
                }
            }
        }
    }
}

/// A compiled schedule: executable layers plus statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Executed layers in order.
    pub layers: Vec<ScheduledLayer>,
    /// Aggregate statistics.
    pub stats: CompileStats,
}

impl Schedule {
    /// Flattened gate execution order (indices into the input circuit).
    pub fn gate_order(&self) -> Vec<usize> {
        self.layers.iter().flat_map(|l| l.gate_indices.iter().copied()).collect()
    }
}

/// Safety factor on scheduling iterations before declaring livelock.
pub(crate) fn iteration_cap(num_gates: usize) -> usize {
    10 * num_gates + 1000
}

// ---------------------------------------------------------------------------
// Incremental dependency frontier
// ---------------------------------------------------------------------------

/// The ready set of Algorithm 1's lines 7-11, maintained incrementally.
///
/// A qubit *emits* its head gate (`qubit_gates[q][ptr[q]]`) into the layer
/// when the gate is a U3, or a CZ that is at the head of **both** operands
/// with `q` the smaller one (the dedupe rule of the naive scan). Emission
/// can only change for a qubit whose pointer advanced, or for the operands
/// of such a qubit's new head gate — a CZ waiting on its partner becomes
/// ready exactly when the partner's pointer reaches it. Rebuilding `curr`
/// from the sorted emitter list therefore reproduces the naive full scan's
/// gate order at every layer by construction.
pub(crate) struct Frontier {
    emits: Vec<bool>,
    /// Emitting qubits, ascending (the naive scan's visit order).
    emitters: Vec<u32>,
}

impl Frontier {
    fn new(num_qubits: usize) -> Self {
        Self { emits: vec![false; num_qubits], emitters: Vec::with_capacity(num_qubits) }
    }

    fn emission(q: usize, gates: &[Gate], qubit_gates: &QubitGatesCsr, ptr: &[usize]) -> bool {
        let Some(g) = qubit_gates.gate_at(q, ptr[q]) else { return false };
        match gates[g] {
            Gate::U3 { .. } => true,
            Gate::Cz { a, b } => {
                let (ai, bi) = (a as usize, b as usize);
                q == ai.min(bi)
                    && qubit_gates.gate_at(ai, ptr[ai]) == Some(g)
                    && qubit_gates.gate_at(bi, ptr[bi]) == Some(g)
            }
        }
    }

    fn refresh(&mut self, q: usize, gates: &[Gate], qubit_gates: &QubitGatesCsr, ptr: &[usize]) {
        let e = Self::emission(q, gates, qubit_gates, ptr);
        if e != self.emits[q] {
            self.emits[q] = e;
            match self.emitters.binary_search(&(q as u32)) {
                Ok(i) if !e => {
                    self.emitters.remove(i);
                }
                Err(i) if e => self.emitters.insert(i, q as u32),
                _ => {}
            }
        }
    }

    /// Initial population: one full scan, identical to the naive rebuild.
    pub(crate) fn seed(&mut self, gates: &[Gate], qubit_gates: &QubitGatesCsr, ptr: &[usize]) {
        for q in 0..self.emits.len() {
            self.refresh(q, gates, qubit_gates, ptr);
        }
    }

    /// Update after a layer advanced the pointers of `advanced` qubits.
    pub(crate) fn advance(
        &mut self,
        advanced: &[u32],
        gates: &[Gate],
        qubit_gates: &QubitGatesCsr,
        ptr: &[usize],
    ) {
        for &q in advanced {
            let q = q as usize;
            self.refresh(q, gates, qubit_gates, ptr);
            if let Some(g) = qubit_gates.gate_at(q, ptr[q]) {
                if let Gate::Cz { a, b } = gates[g] {
                    self.refresh(a as usize, gates, qubit_gates, ptr);
                    self.refresh(b as usize, gates, qubit_gates, ptr);
                }
            }
        }
    }

    /// Write the current layer's gate list into `curr` (ascending emitter
    /// order, one gate per emitter — a gate's emitter is unique).
    pub(crate) fn collect(
        &self,
        qubit_gates: &QubitGatesCsr,
        ptr: &[usize],
        curr: &mut Vec<usize>,
    ) {
        curr.clear();
        for &q in &self.emitters {
            curr.push(qubit_gates.row(q as usize)[ptr[q as usize]] as usize);
        }
    }
}

// ---------------------------------------------------------------------------
// Bucketed blockade-interference index
// ---------------------------------------------------------------------------

/// Uniform grid over the *effective* endpoints of the layer's accepted CZ
/// gates, with cells the size of the blockade radius: any endpoint within
/// blockade range of a query point lies in one of the 3×3 neighbouring
/// cells, so the interference test probes a local neighbourhood instead
/// of every accepted gate. The cell math is the hardware crate's
/// [`CellGeometry`] — the same clamped-superset guarantees as the atom
/// occupancy index. Cleared per layer via the occupied-cell list.
pub(crate) struct BlockadeIndex {
    cells: CellGeometry,
    /// Query reach, µm: the blockade radius plus slack covering
    /// [`within_blockade`]'s `+1e-9` squared-distance epsilon — the
    /// predicate accepts pairs up to `sqrt(br² + 1e-9)`, a hair beyond
    /// `br`, and the cell sweep must remain a strict superset of its
    /// acceptance region or a boundary pair could slip between cells.
    reach_um: f64,
    buckets: Vec<Vec<Point>>,
    occupied: Vec<usize>,
    /// Heap allocations this scratch has performed: the bucket grid plus
    /// every capacity growth of a bucket or the occupied list. Feeds
    /// [`CompileStats::bucket_scratch_allocs`] — `clear` keeps capacity,
    /// so a compile's count plateaus once the per-layer working set fits.
    pub(crate) allocs: usize,
}

impl BlockadeIndex {
    fn new(extent_um: f64, margin_um: f64, blockade_um: f64) -> Self {
        let cells = CellGeometry::new(extent_um, margin_um, blockade_um);
        Self {
            buckets: vec![Vec::new(); cells.num_cells()],
            cells,
            reach_um: blockade_um + 1e-3,
            occupied: Vec::new(),
            allocs: 1,
        }
    }

    pub(crate) fn clear(&mut self) {
        for &b in &self.occupied {
            self.buckets[b].clear();
        }
        self.occupied.clear();
    }

    pub(crate) fn insert(&mut self, p: Point) {
        let b = self.cells.cell_of(p);
        if self.buckets[b].is_empty() {
            if self.occupied.len() == self.occupied.capacity() {
                self.allocs += 1;
            }
            self.occupied.push(b);
        }
        if self.buckets[b].len() == self.buckets[b].capacity() {
            self.allocs += 1;
        }
        self.buckets[b].push(p);
    }

    /// Whether any stored endpoint blockades `p` (exactly the naive
    /// all-pairs predicate, restricted to the cells that can contain hits).
    pub(crate) fn conflicts(&self, p: Point, r: f64, factor: f64) -> bool {
        let mut hit = false;
        self.cells.for_each_cell_within(p, self.reach_um, |cell| {
            if !hit {
                hit = self.buckets[cell].iter().any(|q| within_blockade(&p, q, r, factor));
            }
        });
        hit
    }
}

// ---------------------------------------------------------------------------
// Failed-move memoization
// ---------------------------------------------------------------------------

/// Per-compile memo of failed movement plans.
///
/// [`plan_move_into_range`] is a pure function of the array state and its
/// `(mover, target)` arguments, and the only array mutations during
/// scheduling are AOD move batches — SLM atoms never move (trap changes
/// are virtual). A failed probe cascade therefore stays failed for as long
/// as no AOD atom has a different position than when it failed. Each entry
/// snapshots every AOD atom's position at failure time; a later query hits
/// when the array's position epoch is unchanged (nothing at all moved) or,
/// after the epoch moved on, when an exact comparison shows the AOD
/// configuration returned to the recorded one (the common case under
/// home-return, where every layer's moves are undone).
pub(crate) struct FailedMoveMemo {
    entries: HashMap<(u32, u32), MemoEntry>,
    pub(crate) hits: usize,
}

struct MemoEntry {
    epoch: u64,
    aod_snapshot: Vec<(u32, Point)>,
}

impl FailedMoveMemo {
    fn new() -> Self {
        Self { entries: HashMap::new(), hits: 0 }
    }

    /// Whether a recorded failure for `(mover, target)` is still valid.
    /// Re-arms the epoch fast path when the configuration matches under a
    /// newer epoch.
    pub(crate) fn still_failed(&mut self, array: &AtomArray, mover: u32, target: u32) -> bool {
        let Some(entry) = self.entries.get_mut(&(mover, target)) else {
            return false;
        };
        if entry.epoch == array.positions_epoch() {
            self.hits += 1;
            return true;
        }
        if array.aod_config_matches(&entry.aod_snapshot) {
            entry.epoch = array.positions_epoch();
            self.hits += 1;
            true
        } else {
            false
        }
    }

    /// Record that `(mover, target)` failed against the current state.
    pub(crate) fn record(&mut self, array: &AtomArray, mover: u32, target: u32) {
        let mut aod_snapshot = Vec::new();
        array.aod_snapshot(&mut aod_snapshot);
        self.entries
            .insert((mover, target), MemoEntry { epoch: array.positions_epoch(), aod_snapshot });
    }
}

// ---------------------------------------------------------------------------
// Successful-plan caching (per-compile memo + cross-compile layer)
// ---------------------------------------------------------------------------

/// Per-compile memo of **successful** movement plans, the dual of
/// [`FailedMoveMemo`] with the same validity argument: the planner is a
/// pure function of the array state and its arguments, and only AOD move
/// batches mutate the array during scheduling, so a plan recorded against
/// an AOD configuration is exactly what a fresh cascade would produce
/// whenever that configuration recurs. Under home-return the configuration
/// recurs every layer (atoms move out and back), which makes the epoch
/// re-arm path the steady state on repetitive circuits.
pub(crate) struct PlanMemo {
    entries: HashMap<(u32, u32), PlanMemoEntry>,
    pub(crate) hits: usize,
}

struct PlanMemoEntry {
    epoch: u64,
    aod_snapshot: Vec<(u32, Point)>,
    plan: MovePlan,
}

impl PlanMemo {
    fn new() -> Self {
        Self { entries: HashMap::new(), hits: 0 }
    }

    /// The recorded plan for `(mover, target)` if the AOD configuration is
    /// exactly the one it was planned against (epoch fast path, exact
    /// snapshot fallback that re-arms the epoch).
    fn lookup(&mut self, array: &AtomArray, mover: u32, target: u32) -> Option<MovePlan> {
        let entry = self.entries.get_mut(&(mover, target))?;
        if entry.epoch == array.positions_epoch() {
            self.hits += 1;
            return Some(entry.plan.clone());
        }
        if array.aod_config_matches(&entry.aod_snapshot) {
            entry.epoch = array.positions_epoch();
            self.hits += 1;
            Some(entry.plan.clone())
        } else {
            None
        }
    }

    /// Record a fresh success against the current state.
    fn record(&mut self, array: &AtomArray, mover: u32, target: u32, plan: MovePlan) {
        let mut aod_snapshot = Vec::new();
        array.aod_snapshot(&mut aod_snapshot);
        self.entries.insert(
            (mover, target),
            PlanMemoEntry { epoch: array.positions_epoch(), aod_snapshot, plan },
        );
    }
}

/// The scheduler's two-level plan-reuse state: the per-compile [`PlanMemo`]
/// plus the content address into the process-wide
/// [`crate::layout_cache::PlanCache`]. The static half of the key is
/// computed once per compile (SLM atoms never move while scheduling runs);
/// the AOD half is re-fingerprinted at most once per position epoch.
pub(crate) struct PlanCaches {
    pub(crate) memo: PlanMemo,
    static_fp: u64,
    aod_fp: u64,
    aod_fp_epoch: u64,
    aod_fp_valid: bool,
    pub(crate) cross_hits: usize,
}

impl PlanCaches {
    fn new(array: &AtomArray) -> Self {
        Self {
            memo: PlanMemo::new(),
            static_fp: array.static_fingerprint(),
            aod_fp: 0,
            aod_fp_epoch: 0,
            aod_fp_valid: false,
            cross_hits: 0,
        }
    }

    fn aod_fp(&mut self, array: &AtomArray) -> u64 {
        if !self.aod_fp_valid || self.aod_fp_epoch != array.positions_epoch() {
            self.aod_fp = array.aod_fingerprint();
            self.aod_fp_epoch = array.positions_epoch();
            self.aod_fp_valid = true;
        }
        self.aod_fp
    }

    /// [`plan_move_into_range`] behind both cache levels: the per-compile
    /// memo first, then the cross-compile cache (exact-state verified),
    /// then the real probe cascade — recording a success in both layers.
    /// Bit-identical to calling the planner directly, by purity plus the
    /// exact-configuration checks on every reuse.
    pub(crate) fn plan(
        &mut self,
        array: &AtomArray,
        mover: u32,
        target: u32,
        r_um: f64,
        max_recursion: usize,
    ) -> Result<MovePlan, crate::movement::MoveFailure> {
        if let Some(plan) = self.memo.lookup(array, mover, target) {
            return Ok(plan);
        }
        let _probe = parallax_trace::span!("cache.plan.probe");
        let key = crate::layout_cache::PlanKey {
            layout: self.static_fp,
            aod_config: self.aod_fp(array),
            mover,
            target,
        };
        if let Some(plan) = crate::layout_cache::lookup_plan(&key, array, r_um, max_recursion) {
            self.cross_hits += 1;
            self.memo.record(array, mover, target, plan.clone());
            return Ok(plan);
        }
        let plan = plan_move_into_range(array, mover, target, r_um, max_recursion)?;
        self.memo.record(array, mover, target, plan.clone());
        crate::layout_cache::record_plan(key, array, r_um, max_recursion, &plan);
        Ok(plan)
    }
}

// ---------------------------------------------------------------------------
// Layer scratch
// ---------------------------------------------------------------------------

/// Reusable per-compile scratch for the scheduling loop: every vector the
/// naive implementation allocated per layer lives here and is cleared (not
/// freed) between layers, and the per-layer `effective`-position map is an
/// index-keyed stamped array instead of a `HashMap`.
pub(crate) struct SchedulerScratch {
    pub(crate) frontier: Frontier,
    pub(crate) curr: Vec<usize>,
    pub(crate) kept: Vec<usize>,
    pub(crate) accepted: Vec<usize>,
    pub(crate) trap_changed: Vec<(usize, u32)>,
    pub(crate) advanced: Vec<u32>,
    /// Effective operand positions keyed by gate index, valid when the
    /// stamp matches the current layer.
    pub(crate) eff_pos: Vec<[Point; 2]>,
    pub(crate) eff_stamp: Vec<u64>,
    pub(crate) blockade: BlockadeIndex,
    pub(crate) memo: FailedMoveMemo,
    pub(crate) plans: PlanCaches,
    /// Per-compile home-return bookkeeping: each AOD atom's home is
    /// recorded once, the first layer that ever moves it (under
    /// home-return it is back at that exact position at every layer
    /// boundary, so the record never goes stale), and `moved_stamp` marks
    /// the layer that last displaced it. The return pass walks the
    /// ever-moved list instead of rebuilding a per-layer home list per
    /// mover — the batching that used to pay one `Vec` push per plan move
    /// per layer.
    pub(crate) home_pos: Vec<Point>,
    pub(crate) moved_list: Vec<u32>,
    pub(crate) moved_stamp: Vec<u64>,
    pub(crate) return_moves: Vec<AodMove>,
    /// Ever-moved atoms the return pass skipped because their position
    /// epoch is unchanged since the layer that last moved them (they are
    /// already home). Feeds [`CompileStats::home_return_skips`].
    pub(crate) return_skips: usize,
}

impl SchedulerScratch {
    pub(crate) fn new(
        num_qubits: usize,
        num_gates: usize,
        array: &AtomArray,
        blockade_um: f64,
    ) -> Self {
        let margin = array.grid().pitch_um();
        Self {
            frontier: Frontier::new(num_qubits),
            curr: Vec::new(),
            kept: Vec::new(),
            accepted: Vec::new(),
            trap_changed: Vec::new(),
            advanced: Vec::new(),
            eff_pos: vec![[Point::default(); 2]; num_gates],
            eff_stamp: vec![0; num_gates],
            blockade: BlockadeIndex::new(array.spec().extent_um(), margin, blockade_um),
            memo: FailedMoveMemo::new(),
            plans: PlanCaches::new(array),
            home_pos: vec![Point::default(); num_qubits],
            moved_list: Vec::new(),
            moved_stamp: vec![0; num_qubits],
            return_moves: Vec::new(),
            return_skips: 0,
        }
    }
}

/// Record a committed move batch for the home-return pass: first-ever
/// movers get their home (current, pre-commit position) recorded, and
/// every mover is stamped with this layer's guard count. Call **before**
/// applying the batch. Free function over split [`SchedulerScratch`]
/// fields so it can run while the layer loop holds borrows of the other
/// scratch vectors.
pub(crate) fn record_moved_batch(
    home_pos: &mut [Point],
    moved_list: &mut Vec<u32>,
    moved_stamp: &mut [u64],
    array: &AtomArray,
    moves: &[AodMove],
    guard: u64,
) {
    for m in moves {
        let q = m.q as usize;
        if moved_stamp[q] == 0 {
            home_pos[q] = array.position(m.q);
            moved_list.push(m.q);
        }
        moved_stamp[q] = guard;
    }
}

/// The batched home-return pass: emit one return move per atom moved this
/// layer, skip (and count) every ever-moved atom whose position epoch is
/// unchanged since the last layer — it is parked at home and needs no
/// distance re-check. Returns the longest return displacement.
#[allow(clippy::too_many_arguments)]
pub(crate) fn return_home_batch(
    home_pos: &[Point],
    moved_list: &[u32],
    moved_stamp: &[u64],
    return_moves: &mut Vec<AodMove>,
    return_skips: &mut usize,
    array: &mut AtomArray,
    guard: u64,
) -> f64 {
    return_moves.clear();
    let mut max_distance_um = 0.0f64;
    for &q in moved_list {
        if moved_stamp[q as usize] != guard {
            *return_skips += 1;
            continue;
        }
        let home = home_pos[q as usize];
        let distance = array.position(q).distance(&home);
        // Same sub-nanometre filter as `plan_return_home`, so the emitted
        // moves (and the serialized max distance) stay byte-identical to
        // the per-layer oracle path.
        if distance <= 1e-9 {
            continue;
        }
        max_distance_um = max_distance_um.max(distance);
        return_moves.push(AodMove { q, x: home.x, y: home.y });
    }
    if !return_moves.is_empty() {
        array.apply_aod_moves(return_moves).expect("home configuration is always valid");
    }
    max_distance_um
}

/// Run Algorithm 1. Mutates `layout.array` (atom motion and trap state).
///
/// Dispatches on [`CompilerConfig::scheduling`]: the default
/// [`SchedulingMode::Single`] path is the paper's one-move-per-layer rule,
/// byte-identical to every pre-ablation build; the
/// [`SchedulingMode::MultiMover`] path batches disjoint-corridor moves
/// (see [`crate::multi_mover`]).
///
/// [`SchedulingMode::Single`]: crate::config::SchedulingMode::Single
/// [`SchedulingMode::MultiMover`]: crate::config::SchedulingMode::MultiMover
pub fn schedule_gates(
    circuit: &Circuit,
    layout: &mut DiscretizedLayout,
    selection: &AodSelection,
    config: &CompilerConfig,
) -> Schedule {
    match config.scheduling {
        crate::config::SchedulingMode::Single => schedule_gates_single(circuit, layout, config),
        crate::config::SchedulingMode::MultiMover => {
            crate::multi_mover::schedule_gates_multi(circuit, layout, selection, config)
        }
    }
}

/// The default one-move-per-layer scheduling loop (paper Algorithm 1).
fn schedule_gates_single(
    circuit: &Circuit,
    layout: &mut DiscretizedLayout,
    config: &CompilerConfig,
) -> Schedule {
    let gates = circuit.gates();
    let num_gates = gates.len();
    let qubit_gates = circuit.qubit_gates_csr();
    let mut ptr = vec![0usize; circuit.num_qubits()];
    let mut executed = vec![false; num_gates];
    let mut executed_count = 0usize;
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5eed);
    let r = layout.interaction_radius_um;
    let blockade_factor = layout.array.spec().blockade_factor;

    let mut layers = Vec::new();
    let mut stats = CompileStats {
        cz_count: circuit.cz_count(),
        u3_count: circuit.u3_count(),
        ..Default::default()
    };

    let mut scratch =
        SchedulerScratch::new(circuit.num_qubits(), num_gates, &layout.array, r * blockade_factor);
    scratch.frontier.seed(gates, &qubit_gates, &ptr);

    let mut guard = 0usize;
    let cap = iteration_cap(num_gates);
    while executed_count < num_gates {
        guard += 1;
        assert!(guard <= cap, "scheduler livelock: {executed_count}/{num_gates} gates executed");

        // ---- Lines 7-11: build the dependency frontier layer. ----
        let t_frontier = profile::begin();
        let sp_frontier = parallax_trace::span!("schedule.frontier");
        let curr = &mut scratch.curr;
        scratch.frontier.collect(&qubit_gates, &ptr, curr);
        drop(sp_frontier);
        profile::record(Stage::ScheduleFrontier, t_frontier, 0);
        assert!(!curr.is_empty(), "dependency frontier is empty before completion");

        // ---- Lines 12-19: movement resolution for out-of-range CZs. ----
        let t_movement = profile::begin();
        let sp_movement = parallax_trace::span!("schedule.movement");
        let mut moved_this_layer = false;
        let mut committed_moves: Vec<AodMove> = Vec::new();
        let mut move_distance_um = 0.0f64;
        let mut trap_changes = 0usize;
        // Gates that executed via trap change: (gate, virtually moved qubit).
        let trap_changed = &mut scratch.trap_changed;
        trap_changed.clear();
        let kept = &mut scratch.kept;
        kept.clear();
        let mut deferred = 0usize;

        for &g in curr.iter() {
            let Gate::Cz { a, b } = gates[g] else {
                kept.push(g);
                continue;
            };
            if layout.array.distance(a, b) <= r + 1e-9 {
                kept.push(g);
                continue;
            }
            let aod_operand = if layout.array.is_aod(a) {
                Some(a)
            } else if layout.array.is_aod(b) {
                Some(b)
            } else {
                None
            };
            match aod_operand {
                Some(mover) if !moved_this_layer => {
                    let target = if mover == a { b } else { a };
                    if scratch.memo.still_failed(&layout.array, mover, target) {
                        // The probe cascade failed against this exact AOD
                        // configuration before; the planner is pure, so it
                        // would fail identically — resolve with a trap
                        // change straight away.
                        stats.failed_moves += 1;
                        trap_changes += 1;
                        trap_changed.push((g, mover));
                        kept.push(g);
                        continue;
                    }
                    // Both cache levels sit in front of the probe cascade;
                    // every reuse is exact-configuration verified, so the
                    // plan is the one a fresh cascade would produce.
                    let mut attempt = scratch.plans.plan(
                        &layout.array,
                        mover,
                        target,
                        r,
                        config.max_move_recursion,
                    );
                    // With both operands mobile, either may be the mover;
                    // retry in the other direction before giving up.
                    if attempt.is_err() && layout.array.is_aod(target) {
                        attempt = scratch.plans.plan(
                            &layout.array,
                            target,
                            mover,
                            r,
                            config.max_move_recursion,
                        );
                    }
                    match attempt {
                        Ok(plan) => {
                            record_moved_batch(
                                &mut scratch.home_pos,
                                &mut scratch.moved_list,
                                &mut scratch.moved_stamp,
                                &layout.array,
                                &plan.moves,
                                guard as u64,
                            );
                            layout
                                .array
                                .apply_aod_moves(&plan.moves)
                                .expect("validated plan must commit");
                            committed_moves = plan.moves;
                            move_distance_um = plan.max_distance_um;
                            moved_this_layer = true;
                            stats.moves_planned += 1;
                            stats.total_move_distance_um += plan.max_distance_um;
                            kept.push(g);
                        }
                        Err(_) => {
                            // Failed move: resolve with a trap change
                            // (Section III: "Failed moves are resolved using
                            // trap changes").
                            scratch.memo.record(&layout.array, mover, target);
                            stats.failed_moves += 1;
                            trap_changes += 1;
                            trap_changed.push((g, mover));
                            kept.push(g);
                        }
                    }
                }
                Some(_) => {
                    // Line 16-17: one move per layer; defer this gate.
                    deferred += 1;
                    continue;
                }
                None => {
                    // Lines 18-19: neither operand is mobile — release and
                    // retrap one of them (the ~1.3% case).
                    trap_changes += 1;
                    trap_changed.push((g, a));
                    kept.push(g);
                }
            }
        }
        stats.deferred_gates += deferred;

        // The committed move may have displaced atoms of *other* kept CZ
        // gates out of range; those defer too (they cannot move again).
        if moved_this_layer {
            kept.retain(|&g| match gates[g] {
                Gate::Cz { a, b } => {
                    let in_range = layout.array.distance(a, b) <= r + 1e-9
                        || trap_changed.iter().any(|&(tg, _)| tg == g);
                    if !in_range {
                        stats.deferred_gates += 1;
                    }
                    in_range
                }
                _ => true,
            });
        }

        // ---- Line 20: shuffle to avoid starving any one qubit. ----
        kept.shuffle(&mut rng);
        drop(sp_movement);
        profile::record(Stage::ScheduleMovement, t_movement, 0);

        // ---- Lines 21-22: Rydberg blockade interference ejection. ----
        // A trap-changed atom spends the gate adjacent to its partner, so
        // its effective position is its partner's side. Precompute the
        // effective operand positions of every kept CZ gate (stamped
        // index-keyed scratch; the stamp is this layer's guard count).
        let t_blockade = profile::begin();
        let blockade_allocs_before = scratch.blockade.allocs;
        let sp_blockade = parallax_trace::span!("schedule.blockade");
        for &g in kept.iter() {
            if let Gate::Cz { a, b } = gates[g] {
                let mut pa = layout.array.position(a);
                let mut pb = layout.array.position(b);
                if let Some(&(_, moved)) = trap_changed.iter().find(|&&(tg, _)| tg == g) {
                    if moved == a {
                        pa = pb;
                    } else if moved == b {
                        pb = pa;
                    }
                }
                scratch.eff_pos[g] = [pa, pb];
                scratch.eff_stamp[g] = guard as u64;
            }
        }
        let accepted = &mut scratch.accepted;
        accepted.clear();
        scratch.blockade.clear();
        for &g in kept.iter() {
            match gates[g] {
                Gate::U3 { .. } => accepted.push(g),
                Gate::Cz { .. } => {
                    debug_assert_eq!(scratch.eff_stamp[g], guard as u64);
                    let mine = scratch.eff_pos[g];
                    let conflict =
                        mine.iter().any(|p| scratch.blockade.conflicts(*p, r, blockade_factor));
                    if conflict {
                        stats.blockade_ejections += 1;
                        // If this was the trap-changed gate, the trap change
                        // did not happen after all.
                        if let Some(pos) = trap_changed.iter().position(|&(tg, _)| tg == g) {
                            trap_changed.remove(pos);
                            trap_changes -= 1;
                        }
                    } else {
                        accepted.push(g);
                        scratch.blockade.insert(mine[0]);
                        scratch.blockade.insert(mine[1]);
                    }
                }
            }
        }
        drop(sp_blockade);
        profile::record(
            Stage::ScheduleBlockade,
            t_blockade,
            (scratch.blockade.allocs - blockade_allocs_before) as u64,
        );
        assert!(
            !accepted.is_empty(),
            "blockade pass emptied a layer: curr={curr:?} kept={kept:?} moved={moved_this_layer} trap_changed={trap_changed:?}"
        );

        // ---- Line 23: execute. ----
        let mut has_u3 = false;
        let mut has_cz = false;
        let advanced = &mut scratch.advanced;
        advanced.clear();
        for &g in accepted.iter() {
            executed[g] = true;
            executed_count += 1;
            match gates[g] {
                Gate::U3 { q, .. } => {
                    has_u3 = true;
                    ptr[q as usize] += 1;
                    advanced.push(q);
                }
                Gate::Cz { a, b } => {
                    has_cz = true;
                    ptr[a as usize] += 1;
                    ptr[b as usize] += 1;
                    advanced.push(a);
                    advanced.push(b);
                }
            }
        }
        let t_frontier = profile::begin();
        let sp_frontier = parallax_trace::span!("schedule.frontier");
        scratch.frontier.advance(advanced, gates, &qubit_gates, &ptr);
        drop(sp_frontier);
        profile::record(Stage::ScheduleFrontier, t_frontier, 0);

        // ---- Line 24: return moved atoms home. ----
        let t_return = profile::begin();
        let sp_return = parallax_trace::span!("schedule.return");
        let mut return_distance_um = 0.0;
        if config.return_home {
            return_distance_um = return_home_batch(
                &scratch.home_pos,
                &scratch.moved_list,
                &scratch.moved_stamp,
                &mut scratch.return_moves,
                &mut scratch.return_skips,
                &mut layout.array,
                guard as u64,
            );
        }
        drop(sp_return);
        profile::record(Stage::ScheduleReturn, t_return, 0);

        stats.layer_count += 1;
        stats.trap_changes += trap_changes;
        let mover_plans =
            if moved_this_layer { vec![committed_moves.len() as u32] } else { Vec::new() };
        layers.push(ScheduledLayer {
            gate_indices: accepted.clone(),
            moves: committed_moves,
            mover_plans,
            move_distance_um,
            return_distance_um,
            trap_changes,
            has_u3,
            has_cz,
        });
    }
    stats.failed_move_memo_hits = scratch.memo.hits;
    stats.plan_cache_hits = scratch.plans.memo.hits;
    stats.plan_cache_cross_hits = scratch.plans.cross_hits;
    stats.bucket_scratch_allocs = scratch.blockade.allocs;
    stats.home_return_skips = scratch.return_skips;
    stats.publish_metrics();

    let schedule = Schedule { layers, stats };
    debug_assert!(
        DependencyDag::build(circuit).respects_order(&schedule.gate_order()),
        "schedule violates gate dependencies"
    );
    schedule
}

/// The pre-optimization Algorithm 1 implementation, verbatim: full frontier
/// rescan per layer, `HashMap` effective positions, all-pairs blockade
/// pass, no memoization, no plan caching. Kept as the test oracle — the
/// proptests (in-crate and in the umbrella differential suite, which is
/// why this is `pub` in debug builds) assert [`schedule_gates`] produces
/// bit-identical layers, moves, and stats (modulo the memo/plan-cache hit
/// counters, which the naive path cannot have) on random circuits.
#[cfg(any(test, debug_assertions))]
pub fn schedule_gates_naive(
    circuit: &Circuit,
    layout: &mut DiscretizedLayout,
    _selection: &AodSelection,
    config: &CompilerConfig,
) -> Schedule {
    let gates = circuit.gates();
    let num_gates = gates.len();
    let qubit_gates = circuit.qubit_gate_indices();
    let mut ptr = vec![0usize; circuit.num_qubits()];
    let mut executed = vec![false; num_gates];
    let mut executed_count = 0usize;
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5eed);
    let r = layout.interaction_radius_um;
    let blockade_factor = layout.array.spec().blockade_factor;

    let mut layers = Vec::new();
    let mut stats = CompileStats {
        cz_count: circuit.cz_count(),
        u3_count: circuit.u3_count(),
        ..Default::default()
    };

    let mut guard = 0usize;
    let cap = iteration_cap(num_gates);
    while executed_count < num_gates {
        guard += 1;
        assert!(guard <= cap, "scheduler livelock: {executed_count}/{num_gates} gates executed");

        let mut curr: Vec<usize> = Vec::new();
        for q in 0..circuit.num_qubits() {
            let Some(&g) = qubit_gates[q].get(ptr[q]) else { continue };
            match gates[g] {
                Gate::U3 { .. } => curr.push(g),
                Gate::Cz { a, b } => {
                    let (ai, bi) = (a as usize, b as usize);
                    let ready = qubit_gates[ai].get(ptr[ai]) == Some(&g)
                        && qubit_gates[bi].get(ptr[bi]) == Some(&g);
                    if ready && q == ai.min(bi) {
                        curr.push(g);
                    }
                }
            }
        }
        assert!(!curr.is_empty(), "dependency frontier is empty before completion");

        let mut moved_this_layer = false;
        let mut committed_moves: Vec<AodMove> = Vec::new();
        let mut move_distance_um = 0.0f64;
        let mut moved_homes: Vec<(u32, Point)> = Vec::new();
        let mut trap_changes = 0usize;
        let mut trap_changed: Vec<(usize, u32)> = Vec::new();
        let mut kept: Vec<usize> = Vec::new();
        let mut deferred = 0usize;

        for &g in &curr {
            let Gate::Cz { a, b } = gates[g] else {
                kept.push(g);
                continue;
            };
            if layout.array.distance(a, b) <= r + 1e-9 {
                kept.push(g);
                continue;
            }
            let aod_operand = if layout.array.is_aod(a) {
                Some(a)
            } else if layout.array.is_aod(b) {
                Some(b)
            } else {
                None
            };
            match aod_operand {
                Some(mover) if !moved_this_layer => {
                    let target = if mover == a { b } else { a };
                    let mut attempt = plan_move_into_range(
                        &layout.array,
                        mover,
                        target,
                        r,
                        config.max_move_recursion,
                    );
                    if attempt.is_err() && layout.array.is_aod(target) {
                        attempt = plan_move_into_range(
                            &layout.array,
                            target,
                            mover,
                            r,
                            config.max_move_recursion,
                        );
                    }
                    match attempt {
                        Ok(plan) => {
                            for m in &plan.moves {
                                moved_homes.push((m.q, layout.array.position(m.q)));
                            }
                            layout
                                .array
                                .apply_aod_moves(&plan.moves)
                                .expect("validated plan must commit");
                            committed_moves = plan.moves;
                            move_distance_um = plan.max_distance_um;
                            moved_this_layer = true;
                            stats.moves_planned += 1;
                            stats.total_move_distance_um += plan.max_distance_um;
                            kept.push(g);
                        }
                        Err(_) => {
                            stats.failed_moves += 1;
                            trap_changes += 1;
                            trap_changed.push((g, mover));
                            kept.push(g);
                        }
                    }
                }
                Some(_) => {
                    deferred += 1;
                    continue;
                }
                None => {
                    trap_changes += 1;
                    trap_changed.push((g, a));
                    kept.push(g);
                }
            }
        }
        stats.deferred_gates += deferred;

        if moved_this_layer {
            kept.retain(|&g| match gates[g] {
                Gate::Cz { a, b } => {
                    let in_range = layout.array.distance(a, b) <= r + 1e-9
                        || trap_changed.iter().any(|&(tg, _)| tg == g);
                    if !in_range {
                        stats.deferred_gates += 1;
                    }
                    in_range
                }
                _ => true,
            });
        }

        kept.shuffle(&mut rng);

        let mut effective: HashMap<usize, [Point; 2]> = HashMap::new();
        for &g in &kept {
            if let Gate::Cz { a, b } = gates[g] {
                let mut pa = layout.array.position(a);
                let mut pb = layout.array.position(b);
                if let Some(&(_, moved)) = trap_changed.iter().find(|&&(tg, _)| tg == g) {
                    if moved == a {
                        pa = pb;
                    } else if moved == b {
                        pb = pa;
                    }
                }
                effective.insert(g, [pa, pb]);
            }
        }
        let mut accepted: Vec<usize> = Vec::new();
        let mut accepted_cz: Vec<usize> = Vec::new();
        for &g in &kept {
            match gates[g] {
                Gate::U3 { .. } => accepted.push(g),
                Gate::Cz { .. } => {
                    let mine = effective[&g];
                    let conflict = accepted_cz.iter().any(|&other| {
                        let theirs = effective[&other];
                        mine.iter().any(|p| {
                            theirs.iter().any(|q| within_blockade(p, q, r, blockade_factor))
                        })
                    });
                    if conflict {
                        stats.blockade_ejections += 1;
                        if let Some(pos) = trap_changed.iter().position(|&(tg, _)| tg == g) {
                            trap_changed.remove(pos);
                            trap_changes -= 1;
                        }
                    } else {
                        accepted.push(g);
                        accepted_cz.push(g);
                    }
                }
            }
        }
        assert!(
            !accepted.is_empty(),
            "blockade pass emptied a layer: curr={curr:?} kept={kept:?} moved={moved_this_layer} trap_changed={trap_changed:?}"
        );

        let mut has_u3 = false;
        let mut has_cz = false;
        for &g in &accepted {
            executed[g] = true;
            executed_count += 1;
            match gates[g] {
                Gate::U3 { q, .. } => {
                    has_u3 = true;
                    ptr[q as usize] += 1;
                }
                Gate::Cz { a, b } => {
                    has_cz = true;
                    ptr[a as usize] += 1;
                    ptr[b as usize] += 1;
                }
            }
        }

        let mut return_distance_um = 0.0;
        if config.return_home && !moved_homes.is_empty() {
            let plan = plan_return_home(&layout.array, &moved_homes);
            return_distance_um = plan.max_distance_um;
            if !plan.moves.is_empty() {
                layout
                    .array
                    .apply_aod_moves(&plan.moves)
                    .expect("home configuration is always valid");
            }
        }

        stats.layer_count += 1;
        stats.trap_changes += trap_changes;
        let mover_plans =
            if moved_this_layer { vec![committed_moves.len() as u32] } else { Vec::new() };
        layers.push(ScheduledLayer {
            gate_indices: accepted,
            moves: committed_moves,
            mover_plans,
            move_distance_um,
            return_distance_um,
            trap_changes,
            has_u3,
            has_cz,
        });
    }

    Schedule { layers, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aod_select::select_aod_qubits;
    use crate::discretize::discretize;
    use parallax_circuit::CircuitBuilder;
    use parallax_graphine::GraphineLayout;
    use parallax_hardware::MachineSpec;

    fn compile_with(
        n: usize,
        build: impl Fn(&mut CircuitBuilder),
        cfg: &CompilerConfig,
    ) -> (Circuit, Schedule) {
        let mut b = CircuitBuilder::new(n);
        build(&mut b);
        let c = b.build();
        let layout = GraphineLayout::generate(&c, &cfg.placement);
        let mut d = discretize(&c, &layout, MachineSpec::quera_aquila_256());
        let sel = select_aod_qubits(&c, &mut d, cfg);
        let s = schedule_gates(&c, &mut d, &sel, cfg);
        (c, s)
    }

    #[test]
    fn all_gates_execute_exactly_once() {
        let cfg = CompilerConfig::quick(1);
        let (c, s) = compile_with(
            4,
            |b| {
                b.h(0).cx(0, 1).cx(1, 2).cx(2, 3).cx(0, 3).h(3);
            },
            &cfg,
        );
        let order = s.gate_order();
        assert_eq!(order.len(), c.len());
        let mut seen = vec![false; c.len()];
        for g in order {
            assert!(!seen[g], "gate {g} executed twice");
            seen[g] = true;
        }
    }

    #[test]
    fn schedule_respects_dependencies() {
        let cfg = CompilerConfig::quick(2);
        let (c, s) = compile_with(
            5,
            |b| {
                b.h(0).cx(0, 1).cx(1, 2).rz(0.4, 2).cx(2, 3).cx(3, 4).cx(0, 4);
            },
            &cfg,
        );
        let dag = DependencyDag::build(&c);
        assert!(dag.respects_order(&s.gate_order()));
    }

    #[test]
    fn zero_swaps_always() {
        let cfg = CompilerConfig::quick(3);
        let (c, s) = compile_with(
            6,
            |b| {
                for i in 0..6u32 {
                    for j in (i + 1)..6 {
                        b.cx(i, j);
                    }
                }
            },
            &cfg,
        );
        assert_eq!(s.stats.swap_count, 0);
        assert_eq!(s.stats.cz_count, c.cz_count());
    }

    #[test]
    fn stats_account_for_every_gate() {
        let cfg = CompilerConfig::quick(4);
        let (c, s) = compile_with(
            3,
            |b| {
                b.h(0).h(1).h(2).cx(0, 1).cx(1, 2).ccx(0, 1, 2);
            },
            &cfg,
        );
        assert_eq!(s.stats.cz_count + s.stats.u3_count, c.len());
        assert_eq!(s.stats.layer_count, s.layers.len());
        let executed: usize = s.layers.iter().map(|l| l.gate_indices.len()).sum();
        assert_eq!(executed, c.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let build = |b: &mut CircuitBuilder| {
            b.h(0).cx(0, 3).cx(1, 2).cx(0, 2).cx(1, 3).ccx(0, 1, 2);
        };
        let cfg = CompilerConfig::quick(7);
        let (_, s1) = compile_with(4, build, &cfg);
        let (_, s2) = compile_with(4, build, &cfg);
        assert_eq!(s1.gate_order(), s2.gate_order());
        assert_eq!(s1.stats.trap_changes, s2.stats.trap_changes);
    }

    #[test]
    fn array_state_stays_valid_throughout() {
        let cfg = CompilerConfig::quick(5);
        let mut b = CircuitBuilder::new(8);
        for i in 0..8u32 {
            b.h(i);
        }
        for i in 0..8u32 {
            b.cx(i, (i + 3) % 8);
        }
        let c = b.build();
        let layout = GraphineLayout::generate(&c, &cfg.placement);
        let mut d = discretize(&c, &layout, MachineSpec::quera_aquila_256());
        let sel = select_aod_qubits(&c, &mut d, &cfg);
        let _ = schedule_gates(&c, &mut d, &sel, &cfg);
        assert!(d.array.validate().is_empty());
    }

    #[test]
    fn home_return_restores_aod_positions() {
        let cfg = CompilerConfig::quick(6);
        let mut b = CircuitBuilder::new(6);
        for i in 0..6u32 {
            b.cx(i, (i + 2) % 6);
        }
        let c = b.build();
        let layout = GraphineLayout::generate(&c, &cfg.placement);
        let mut d = discretize(&c, &layout, MachineSpec::quera_aquila_256());
        let sel = select_aod_qubits(&c, &mut d, &cfg);
        let homes: Vec<(u32, Point)> =
            sel.selected.iter().map(|&q| (q, d.array.position(q))).collect();
        let _ = schedule_gates(&c, &mut d, &sel, &cfg);
        for (q, home) in homes {
            assert!(d.array.position(q).distance(&home) < 1e-6, "q{q} did not return home");
        }
    }

    #[test]
    fn without_home_return_atoms_may_stay_displaced() {
        // Same circuit twice; the no-return variant accumulates movement
        // savings (Fig. 12 shows lower *total* distance is NOT guaranteed,
        // only that the toggle changes behaviour).
        let cfg_home = CompilerConfig::quick(8);
        let cfg_stay = CompilerConfig::quick(8).without_home_return();
        let build = |b: &mut CircuitBuilder| {
            for i in 0..6u32 {
                b.cx(i, (i + 2) % 6);
            }
            for i in 0..6u32 {
                b.cx(i, (i + 3) % 6);
            }
        };
        let (_, s_home) = compile_with(6, build, &cfg_home);
        let (_, s_stay) = compile_with(6, build, &cfg_stay);
        let return_home_total: f64 = s_home.layers.iter().map(|l| l.return_distance_um).sum();
        let return_stay_total: f64 = s_stay.layers.iter().map(|l| l.return_distance_um).sum();
        assert!(return_stay_total <= return_home_total);
        assert_eq!(s_stay.stats.cz_count, s_home.stats.cz_count);
    }

    #[test]
    fn single_qubit_circuit_schedules() {
        let cfg = CompilerConfig::quick(9);
        let (c, s) = compile_with(
            1,
            |b| {
                b.h(0).rz(0.5, 0).h(0);
            },
            &cfg,
        );
        assert_eq!(s.gate_order().len(), c.len());
        assert_eq!(s.stats.trap_changes, 0);
        assert_eq!(s.stats.moves_planned, 0);
    }

    #[test]
    fn parallel_u3_gates_share_a_layer() {
        let cfg = CompilerConfig::quick(10);
        let (_, s) = compile_with(
            4,
            |b| {
                b.h(0).h(1).h(2).h(3);
            },
            &cfg,
        );
        assert_eq!(s.layers.len(), 1);
        assert_eq!(s.layers[0].gate_indices.len(), 4);
    }

    // -- Oracle comparisons: fast scheduler vs the naive implementation --

    /// Run both schedulers from identical starting states and assert the
    /// results are bit-identical (layers, moves, distances, stats — the
    /// memo-hit counter excluded, since the naive path has no memo) and
    /// that both leave the array in the same final state.
    fn assert_matches_naive(n: usize, build: impl Fn(&mut CircuitBuilder), cfg: &CompilerConfig) {
        let mut b = CircuitBuilder::new(n);
        build(&mut b);
        let c = b.build();
        let layout = GraphineLayout::generate(&c, &cfg.placement);
        let mut fast = discretize(&c, &layout, MachineSpec::quera_aquila_256());
        let sel = select_aod_qubits(&c, &mut fast, cfg);
        let mut naive = fast.clone();
        let s_fast = schedule_gates(&c, &mut fast, &sel, cfg);
        let s_naive = schedule_gates_naive(&c, &mut naive, &sel, cfg);
        assert_eq!(s_fast.layers, s_naive.layers);
        let mut stats = s_fast.stats.clone();
        stats.failed_move_memo_hits = 0;
        stats.plan_cache_hits = 0;
        stats.plan_cache_cross_hits = 0;
        stats.bucket_scratch_allocs = 0;
        stats.home_return_skips = 0;
        assert_eq!(stats, s_naive.stats);
        for q in 0..n as u32 {
            assert_eq!(fast.array.position(q), naive.array.position(q), "q{q} position");
            assert_eq!(fast.array.trap(q), naive.array.trap(q), "q{q} trap");
        }
    }

    #[test]
    fn matches_naive_on_dense_all_to_all() {
        let cfg = CompilerConfig::quick(11);
        assert_matches_naive(
            8,
            |b| {
                for i in 0..8u32 {
                    for j in (i + 1)..8 {
                        b.cx(i, j);
                    }
                }
            },
            &cfg,
        );
    }

    #[test]
    fn matches_naive_with_tight_recursion_budget() {
        // A tiny recursion budget forces failed moves, exercising the memo
        // path against the naive re-probing path.
        let mut cfg = CompilerConfig::quick(12);
        cfg.max_move_recursion = 1;
        assert_matches_naive(
            10,
            |b| {
                for i in 0..10u32 {
                    b.cx(i, (i + 4) % 10);
                }
                for i in 0..10u32 {
                    b.cx(i, (i + 5) % 10);
                }
            },
            &cfg,
        );
    }

    #[test]
    fn matches_naive_without_home_return() {
        // With home-return off the AOD configuration drifts layer to
        // layer, exercising the memo's exact-position staleness check.
        let cfg = CompilerConfig::quick(13).without_home_return();
        assert_matches_naive(
            9,
            |b| {
                for i in 0..9u32 {
                    b.h(i).cx(i, (i + 3) % 9);
                }
                for i in 0..9u32 {
                    b.cx(i, (i + 4) % 9);
                }
            },
            &cfg,
        );
    }

    // -- Failed-move memoization unit tests --

    fn memo_array() -> AtomArray {
        // Same shape as movement.rs's zero-budget test: q0 is the mover,
        // q1 the target, q2 an AOD blocker parked next to the target.
        let mut a = AtomArray::new(MachineSpec::quera_aquila_256(), 3);
        a.place_in_slm(0, (2, 2));
        a.place_in_slm(1, (12, 3));
        a.place_in_slm(2, (11, 3));
        a.transfer_to_aod(0, 0, 0).unwrap();
        a.transfer_to_aod(2, 1, 1).unwrap();
        a
    }

    #[test]
    fn memo_hits_while_nothing_moved_and_goes_stale_when_blocker_moves() {
        let mut a = memo_array();
        let r = 7.5;
        // With zero recursion budget the blocked approach cannot resolve.
        assert!(plan_move_into_range(&a, 0, 1, r, 0).is_err());
        let mut memo = FailedMoveMemo::new();
        memo.record(&a, 0, 1);
        assert!(memo.still_failed(&a, 0, 1), "identical state must hit");
        assert_eq!(memo.hits, 1);

        // The blocker moves well clear of the target (its column stays
        // right of any approach endpoint): the memo entry must go stale,
        // and the re-probe now succeeds — the gate became plannable.
        a.apply_aod_moves(&[AodMove { q: 2, x: 98.0, y: 70.0 }]).unwrap();
        assert!(!memo.still_failed(&a, 0, 1), "stale entry must force a re-probe");
        assert!(plan_move_into_range(&a, 0, 1, r, 0).is_ok());
    }

    #[test]
    fn memo_rearms_epoch_when_configuration_returns() {
        let mut a = memo_array();
        let mut memo = FailedMoveMemo::new();
        memo.record(&a, 0, 1);
        // Move the blocker away and back: the epoch moved on, but the
        // exact-position comparison recognises the configuration.
        let home = a.position(2);
        a.apply_aod_moves(&[AodMove { q: 2, x: 77.0, y: 70.0 }]).unwrap();
        a.apply_aod_moves(&[AodMove { q: 2, x: home.x, y: home.y }]).unwrap();
        assert!(memo.still_failed(&a, 0, 1), "returned configuration must hit");
        // The second query takes the re-armed epoch fast path.
        assert!(memo.still_failed(&a, 0, 1));
        assert_eq!(memo.hits, 2);
    }

    #[test]
    fn memo_misses_for_unknown_pair() {
        let a = memo_array();
        let mut memo = FailedMoveMemo::new();
        assert!(!memo.still_failed(&a, 0, 1));
        assert_eq!(memo.hits, 0);
    }

    // -- Successful-plan caching unit tests --

    /// An array where the q0 -> q1 move plans successfully.
    fn plannable_array() -> AtomArray {
        let mut a = AtomArray::new(MachineSpec::quera_aquila_256(), 2);
        a.place_in_slm(0, (2, 2));
        a.place_in_slm(1, (12, 12));
        a.transfer_to_aod(0, 0, 0).unwrap();
        a
    }

    #[test]
    fn plan_memo_reuses_only_the_exact_configuration() {
        let mut a = plannable_array();
        let plan = plan_move_into_range(&a, 0, 1, 7.0, 80).unwrap();
        let mut memo = PlanMemo::new();
        memo.record(&a, 0, 1, plan.clone());

        // Identical state: epoch fast path.
        let hit = memo.lookup(&a, 0, 1).expect("identical state must hit");
        assert_eq!(hit.moves, plan.moves);
        assert_eq!(memo.hits, 1);

        // Commit the plan: the configuration changed, the memo must not
        // serve the stale plan.
        let home = a.position(0);
        a.apply_aod_moves(&plan.moves).unwrap();
        assert!(memo.lookup(&a, 0, 1).is_none(), "moved state must miss");

        // Home return restores the recorded configuration: exact-snapshot
        // fallback hits and re-arms the epoch for the next query.
        a.apply_aod_moves(&[AodMove { q: 0, x: home.x, y: home.y }]).unwrap();
        let back = memo.lookup(&a, 0, 1).expect("returned configuration must hit");
        assert_eq!(back.moves, plan.moves);
        assert!(memo.lookup(&a, 0, 1).is_some(), "re-armed epoch fast path");
        assert_eq!(memo.hits, 3);
    }

    #[test]
    fn plan_caches_serve_bit_identical_plans_end_to_end() {
        // The two-level wrapper must hand back exactly what the planner
        // would produce, from either level.
        let a = plannable_array();
        let direct = plan_move_into_range(&a, 0, 1, 7.0, 80).unwrap();
        let mut caches = PlanCaches::new(&a);
        let cold = caches.plan(&a, 0, 1, 7.0, 80).unwrap();
        assert_eq!(cold.moves, direct.moves);
        let warm = caches.plan(&a, 0, 1, 7.0, 80).unwrap();
        assert_eq!(warm.moves, direct.moves);
        assert_eq!(warm.max_distance_um.to_bits(), direct.max_distance_um.to_bits());
        assert_eq!(caches.memo.hits, 1, "second query answers from the per-compile memo");

        // A fresh compile's caches (new memo, same process): the global
        // layer answers with the identical plan.
        let mut fresh = PlanCaches::new(&a);
        let cross = fresh.plan(&a, 0, 1, 7.0, 80).unwrap();
        assert_eq!(cross.moves, direct.moves);
        assert_eq!(fresh.cross_hits, 1, "fresh compile must hit the cross-compile layer");

        // Different knobs bypass both levels (and re-plan).
        let other = fresh.plan(&a, 0, 1, 7.5, 80).unwrap();
        assert_eq!(fresh.cross_hits, 1);
        assert_eq!(other.moves, plan_move_into_range(&a, 0, 1, 7.5, 80).unwrap().moves);
    }

    #[test]
    fn repetitive_circuit_reuses_plans_within_and_across_compiles() {
        // A Trotter-style circuit: the same long-range interactions repeat
        // step after step, so under home-return the scheduler re-plans the
        // same (mover, target) against the same configuration every step.
        let mut b = CircuitBuilder::new(10);
        for _step in 0..4 {
            for i in 0..10u32 {
                b.cx(i, (i + 5) % 10);
            }
        }
        let c = b.build();
        let cfg = CompilerConfig::quick(0xCAFE01);
        let layout = GraphineLayout::generate(&c, &cfg.placement);
        let mut first = discretize(&c, &layout, MachineSpec::quera_aquila_256());
        let sel = select_aod_qubits(&c, &mut first, &cfg);
        let mut second = first.clone();

        let s1 = schedule_gates(&c, &mut first, &sel, &cfg);
        assert!(s1.stats.moves_planned > 0, "circuit must exercise the movement planner");
        assert!(
            s1.stats.plan_cache_hits > 0,
            "repeating steps must reuse plans within the compile: {:?}",
            s1.stats
        );

        // The identical schedule again (same process): the cross-compile
        // layer now answers first-time probes, and the schedule is
        // bit-identical.
        let s2 = schedule_gates(&c, &mut second, &sel, &cfg);
        assert_eq!(s1.layers, s2.layers);
        assert!(
            s2.stats.plan_cache_cross_hits > 0,
            "repeat compile must hit the cross-compile plan cache: {:?}",
            s2.stats
        );
        let global = crate::layout_cache::plan_cache_stats();
        assert!(global.hits >= u64::try_from(s2.stats.plan_cache_cross_hits).unwrap());
    }

    mod matches_naive_on_random_circuits {
        use super::*;
        use parallax_testkit::arb_hcz_circuit;
        use proptest::prelude::*;

        /// A random circuit interleaving H and CZ over `n` qubits (the
        /// workspace-shared generator).
        fn random_circuit(n: u32) -> impl Strategy<Value = Circuit> {
            arb_hcz_circuit(n, 4, 40)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            /// The incremental-frontier + bucketed-blockade + memoized
            /// scheduler must be bit-identical to the naive Algorithm 1
            /// on random circuits: same layers, same moves, same stats,
            /// same final array state.
            #[test]
            fn full_schedules_are_bit_identical(
                circuit in random_circuit(10),
                seed in 0u64..32,
            ) {
                let cfg = CompilerConfig::quick(seed);
                let layout = GraphineLayout::generate(&circuit, &cfg.placement);
                let mut fast = discretize(&circuit, &layout, MachineSpec::quera_aquila_256());
                let sel = select_aod_qubits(&circuit, &mut fast, &cfg);
                let mut naive = fast.clone();
                let s_fast = schedule_gates(&circuit, &mut fast, &sel, &cfg);
                let s_naive = schedule_gates_naive(&circuit, &mut naive, &sel, &cfg);
                prop_assert_eq!(&s_fast.layers, &s_naive.layers);
                let mut stats = s_fast.stats.clone();
                stats.failed_move_memo_hits = 0;
                stats.plan_cache_hits = 0;
                stats.plan_cache_cross_hits = 0;
                stats.bucket_scratch_allocs = 0;
                stats.home_return_skips = 0;
                prop_assert_eq!(&stats, &s_naive.stats);
                for q in 0..10u32 {
                    prop_assert_eq!(fast.array.position(q), naive.array.position(q));
                    prop_assert_eq!(fast.array.trap(q), naive.array.trap(q));
                }
            }

            /// Same property under a starved move budget (forces the
            /// failed-move memo) and with home-return disabled (forces the
            /// memo's exact-position staleness checks as the AOD drifts).
            #[test]
            fn bit_identical_under_failure_heavy_configs(
                circuit in random_circuit(8),
                seed in 0u64..16,
                recursion in 0usize..3,
                return_home in (0u8..2).prop_map(|b| b == 1),
            ) {
                let mut cfg = CompilerConfig::quick(seed);
                cfg.max_move_recursion = recursion;
                cfg.return_home = return_home;
                let layout = GraphineLayout::generate(&circuit, &cfg.placement);
                let mut fast = discretize(&circuit, &layout, MachineSpec::quera_aquila_256());
                let sel = select_aod_qubits(&circuit, &mut fast, &cfg);
                let mut naive = fast.clone();
                let s_fast = schedule_gates(&circuit, &mut fast, &sel, &cfg);
                let s_naive = schedule_gates_naive(&circuit, &mut naive, &sel, &cfg);
                prop_assert_eq!(&s_fast.layers, &s_naive.layers);
                let mut stats = s_fast.stats.clone();
                stats.failed_move_memo_hits = 0;
                stats.plan_cache_hits = 0;
                stats.plan_cache_cross_hits = 0;
                stats.bucket_scratch_allocs = 0;
                stats.home_return_skips = 0;
                prop_assert_eq!(&stats, &s_naive.stats);
            }
        }
    }
}
