//! Process-wide caches of the expensive per-compile intermediates: annealed
//! GRAPHINE **layouts** and successful AOD **move plans**.
//!
//! The service's result cache can only answer *exact* repeats: the same
//! circuit with different scheduling knobs (home-return, move recursion,
//! AOD weights) re-paid the full placement cost even though the layout is
//! untouched by those knobs. This cache keys the layout stage alone, by
//!
//! * the **interaction-graph** stable hash (placement sees only the graph,
//!   so different circuits with equal graphs share layouts),
//! * the **machine** fingerprint, and
//! * the **placement-parameter** fingerprint (seed, iteration budget,
//!   repulsion scale, restart count — everything that steers the anneal;
//!   the worker count is excluded because it never changes the result).
//!
//! A hit returns a clone of a layout that is bit-identical to what a fresh
//! anneal would produce (the whole placement stage is deterministic per
//! key), so compilations through the cache are byte-identical to cold
//! compilations. The cache is a process global guarded by one mutex —
//! generation happens *outside* the lock, so concurrent compiles never
//! serialize on the anneal, only on the map probe. Both direct
//! [`crate::ParallaxCompiler::compile`] calls and the compile service
//! share it; `PARALLAX_LAYOUT_CACHE=<qubit-units>` resizes it and `0`
//! disables it. Eviction is size-aware: an entry costs its qubit count,
//! so a 256-qubit layout is charged 256 units while a 4-qubit one costs
//! 4, and large stale layouts are displaced before hordes of small ones.
//!
//! The **move-plan cache** ([`PlanCache`]) rides the same layer: the
//! scheduler's movement planner is a pure function of the array state and
//! its `(mover, target, radius, recursion)` arguments, and under
//! home-return the effective AOD configuration repeats — not only layer to
//! layer within a compile (the scheduler's per-compile memo handles that),
//! but across *compiles* of the same layout, which is exactly the repeat
//! traffic a serving deployment sees after a layout-cache hit. Entries are
//! keyed by ([`AtomArray::static_fingerprint`],
//! [`AtomArray::aod_fingerprint`], mover, target) and store the complete
//! placed-atom snapshot plus the radius/recursion knobs; a hit is honoured
//! only after an **exact** state comparison
//! ([`AtomArray::placed_state_matches`]), so a reused plan is bit-identical
//! to what a fresh cascade would produce — by planner purity, not by
//! trust in a 64-bit hash. The same `PARALLAX_LAYOUT_CACHE` budget governs
//! both layers (plan entries are charged their snapshot + move counts in
//! the same position-sized units; `0` disables both), and [`resize`]
//! adjusts both at runtime.
//!
//! [`AtomArray::static_fingerprint`]: parallax_hardware::AtomArray::static_fingerprint
//! [`AtomArray::aod_fingerprint`]: parallax_hardware::AtomArray::aod_fingerprint
//! [`AtomArray::placed_state_matches`]: parallax_hardware::AtomArray::placed_state_matches

use crate::profile::{self, Stage};
use parallax_graphine::{GraphineLayout, InteractionGraph, PlacementConfig};
use parallax_hardware::MachineSpec;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Content address of one layout computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayoutKey {
    /// [`InteractionGraph::stable_hash`] of the circuit's graph.
    pub graph: u64,
    /// [`MachineSpec::fingerprint`] of the target machine.
    pub machine: u64,
    /// [`PlacementConfig::fingerprint`] of the placement parameters.
    pub placement: u64,
}

impl LayoutKey {
    /// Build the key for (graph, machine, placement parameters).
    pub fn new(
        graph: &InteractionGraph,
        machine: &MachineSpec,
        placement: &PlacementConfig,
    ) -> Self {
        Self {
            graph: graph.stable_hash(),
            machine: machine.fingerprint(),
            placement: placement.fingerprint(),
        }
    }
}

/// Counters and gauges of the layout cache (the `STATS` sub-object).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LayoutCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to anneal.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Maximum total weight in qubit-units (0 = disabled).
    pub capacity: usize,
    /// Total weight of the cached entries, qubit-units.
    pub weight: usize,
}

struct Entry {
    layout: GraphineLayout,
    /// Last-touch tick for LRU eviction.
    tick: u64,
    /// Size of this entry in qubit-units (its position count): a
    /// 256-qubit layout holds 256x the data of a 1-qubit one and is
    /// charged accordingly.
    weight: usize,
}

fn weight_of(layout: &GraphineLayout) -> usize {
    layout.positions.len().max(1)
}

/// Bounded LRU map from [`LayoutKey`] to annealed layouts. Capacity is
/// **size-aware**: entries are charged their qubit count rather than a
/// flat 1, so one giant layout cannot silently occupy as little budget as
/// a trivial one. Eviction scans for the stalest tick — O(entries), which
/// is noise next to the anneal the cache avoids.
pub struct LayoutCache {
    map: HashMap<LayoutKey, Entry>,
    tick: u64,
    capacity: usize,
    weight: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl LayoutCache {
    /// Create a cache holding at most `capacity` qubit-units of layouts
    /// (0 disables).
    pub fn new(capacity: usize) -> Self {
        Self { map: HashMap::new(), tick: 0, capacity, weight: 0, hits: 0, misses: 0, evictions: 0 }
    }

    /// Look up `key`, refreshing its recency and counting the hit/miss.
    pub fn get(&mut self, key: &LayoutKey) -> Option<GraphineLayout> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.tick = self.tick;
                self.hits += 1;
                Some(entry.layout.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) `key`, evicting least-recently-used layouts
    /// until the new entry's weight fits. No-op when the cache is disabled
    /// or the layout alone exceeds the whole budget (caching it would
    /// wipe everything else for an entry that can never share) — the
    /// latter warns once per process, because an operator carrying a
    /// small entry-count-era `PARALLAX_LAYOUT_CACHE` value would
    /// otherwise see their hit rate silently drop to zero.
    pub fn insert(&mut self, key: LayoutKey, layout: GraphineLayout) {
        if self.capacity == 0 {
            return;
        }
        let weight = weight_of(&layout);
        if weight > self.capacity {
            static OVERSIZED: std::sync::Once = std::sync::Once::new();
            let capacity = self.capacity;
            OVERSIZED.call_once(|| {
                eprintln!(
                    "warning: a {weight}-qubit layout exceeds the whole layout-cache budget \
                     ({capacity} qubit-units) and will not be cached; PARALLAX_LAYOUT_CACHE \
                     is measured in qubit-units (it used to count entries) — raise it to \
                     at least the largest circuit's qubit count"
                );
            });
            return;
        }
        self.tick += 1;
        if let Some(old) = self.map.remove(&key) {
            self.weight -= old.weight;
        }
        while self.weight + weight > self.capacity {
            self.evict_stalest();
        }
        self.weight += weight;
        self.map.insert(key, Entry { layout, tick: self.tick, weight });
    }

    /// Current counters and gauges.
    pub fn stats(&self) -> LayoutCacheStats {
        LayoutCacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.map.len(),
            capacity: self.capacity,
            weight: self.weight,
        }
    }

    /// Drop the least-recently-touched entry (callers guarantee the cache
    /// is non-empty whenever they loop on this).
    fn evict_stalest(&mut self) {
        let stalest = self
            .map
            .iter()
            .min_by_key(|(_, e)| e.tick)
            .map(|(k, _)| *k)
            .expect("nonzero weight implies an entry to evict");
        self.weight -= self.map.remove(&stalest).expect("stalest key present").weight;
        self.evictions += 1;
    }

    /// Change the budget at runtime: shrinking evicts stalest-first down
    /// to the new capacity, `0` disables and clears.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        if capacity == 0 {
            self.weight = 0;
            self.map.clear();
            return;
        }
        while self.weight > capacity {
            self.evict_stalest();
        }
    }
}

/// Default capacity: `PARALLAX_LAYOUT_CACHE` (qubit-units; `0` disables)
/// or 8192 — room for e.g. 64 layouts of 128 qubits or thousands of small
/// ones. An unparsable value warns and keeps the default rather than
/// silently re-enabling a cache someone tried to turn off with e.g. `=off`.
const DEFAULT_CAPACITY: usize = 8192;

fn configured_capacity() -> usize {
    match std::env::var("PARALLAX_LAYOUT_CACHE") {
        Err(_) => DEFAULT_CAPACITY,
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!(
                    "warning: PARALLAX_LAYOUT_CACHE={v:?} is not a number of qubit-units \
                     (use 0 to disable); keeping the default capacity {DEFAULT_CAPACITY}"
                );
                DEFAULT_CAPACITY
            }
        },
    }
}

fn global() -> &'static Mutex<LayoutCache> {
    static CACHE: OnceLock<Mutex<LayoutCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(LayoutCache::new(configured_capacity())))
}

/// Fetch or anneal the layout for `graph` under the given machine and
/// placement parameters; the boolean reports whether the cache answered.
///
/// Misses anneal **outside** the cache lock and publish afterwards; if two
/// threads race the same key both anneal the identical (deterministic)
/// layout, so last-write-wins is harmless.
pub fn lookup_or_generate(
    graph: &InteractionGraph,
    machine: &MachineSpec,
    placement: &PlacementConfig,
) -> (GraphineLayout, bool) {
    let key = LayoutKey::new(graph, machine, placement);
    let probe = {
        let _s = parallax_trace::span!("cache.layout.probe");
        global().lock().expect("layout cache lock").get(&key)
    };
    if let Some(layout) = probe {
        return (layout, true);
    }
    let layout = GraphineLayout::from_graph(graph, placement);
    global().lock().expect("layout cache lock").insert(key, layout.clone());
    (layout, false)
}

/// [`lookup_or_generate`] starting from a circuit, with the placement
/// stage profiled — the entry point `ParallaxCompiler::compile` and the
/// bench harness share.
pub fn cached_layout(
    circuit: &parallax_circuit::Circuit,
    machine: &MachineSpec,
    placement: &PlacementConfig,
) -> GraphineLayout {
    let _sp = parallax_trace::span!("stage.placement");
    let started = profile::begin();
    let graph = InteractionGraph::from_circuit(circuit);
    let (layout, hit) = lookup_or_generate(&graph, machine, placement);
    profile::record(Stage::Placement, started, if hit { 0 } else { layout.anneal_allocs as u64 });
    layout
}

/// Snapshot of the process-wide layout cache counters.
pub fn layout_cache_stats() -> LayoutCacheStats {
    global().lock().expect("layout cache lock").stats()
}

// ---------------------------------------------------------------------------
// Cross-compile move-plan cache
// ---------------------------------------------------------------------------

use crate::movement::MovePlan;
use parallax_hardware::{AodMove, AtomArray, Point, Trap};

/// Content address of one successful movement plan: the immutable half of
/// the array state, the mobile half, and the planner's arguments. The
/// radius/recursion knobs are verified exactly on the entry rather than
/// hashed into the key — they change with the compiler config, and folding
/// them into `layout` would be redundant with that verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`AtomArray::static_fingerprint`] — machine + trap structure + SLM
    /// positions, fixed for the whole compile.
    pub layout: u64,
    /// [`AtomArray::aod_fingerprint`] — the current AOD configuration.
    pub aod_config: u64,
    /// The planned mover (AOD-trapped operand).
    pub mover: u32,
    /// The gate's stationary operand.
    pub target: u32,
}

/// Counters and gauges of the plan cache (the `STATS` sub-object).
/// The process-wide instance is sharded ([`ShardedPlanCache`]); these are
/// the counters summed across every shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache (exact state match).
    pub hits: u64,
    /// Lookups that had to run the probe cascade.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Probes that found their shard's lock held and had to block — the
    /// residual serialization the sharding did not remove. With one global
    /// mutex every concurrent probe pair collided; sharded, only probes
    /// that hash to the same of [`PLAN_SHARDS`] locks can.
    pub contended: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Maximum total weight in position-units (0 = disabled).
    pub capacity: usize,
    /// Total weight of the cached entries, position-units.
    pub weight: usize,
}

struct PlanEntry {
    /// Complete placed-atom state the plan was computed against; reuse
    /// requires an exact match, so hash collisions degrade to misses.
    snapshot: Vec<(u32, Trap, Point)>,
    /// Interaction radius the plan was computed for (bit pattern).
    r_bits: u64,
    /// Recursion budget the plan was computed under.
    max_recursion: usize,
    moves: Vec<AodMove>,
    max_distance_um: f64,
    recursion_used: usize,
    tick: u64,
    weight: usize,
}

/// Bounded LRU map from [`PlanKey`] to validated move plans. Same
/// size-aware eviction discipline as [`LayoutCache`]: an entry is charged
/// one unit per snapshot position plus one per stored move, so plans for
/// big arrays displace proportionally more than plans for small ones.
pub struct PlanCache {
    map: HashMap<PlanKey, PlanEntry>,
    tick: u64,
    capacity: usize,
    weight: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCache {
    /// Create a cache holding at most `capacity` position-units of plans
    /// (0 disables).
    pub fn new(capacity: usize) -> Self {
        Self { map: HashMap::new(), tick: 0, capacity, weight: 0, hits: 0, misses: 0, evictions: 0 }
    }

    /// Look up `key`, honouring a hit only when the entry's recorded state
    /// and planner knobs match `array`/`r_um`/`max_recursion` exactly.
    pub fn get(
        &mut self,
        key: &PlanKey,
        array: &AtomArray,
        r_um: f64,
        max_recursion: usize,
    ) -> Option<MovePlan> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(e)
                if e.r_bits == r_um.to_bits()
                    && e.max_recursion == max_recursion
                    && array.placed_state_matches(&e.snapshot) =>
            {
                e.tick = self.tick;
                self.hits += 1;
                Some(MovePlan {
                    moves: e.moves.clone(),
                    max_distance_um: e.max_distance_um,
                    recursion_used: e.recursion_used,
                })
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) `key`, evicting stalest entries until the new
    /// entry fits. `snapshot` is the complete placed-atom state the plan
    /// was computed against ([`AtomArray::placed_snapshot`]) — built by
    /// the caller so the O(atoms) walk happens *outside* this cache's
    /// lock. Like the layout cache: disabled at capacity 0, and an entry
    /// outweighing the whole budget warns once per process and is not
    /// cached.
    pub fn insert(
        &mut self,
        key: PlanKey,
        snapshot: Vec<(u32, Trap, Point)>,
        r_um: f64,
        rec: usize,
        plan: &MovePlan,
    ) {
        if self.capacity == 0 {
            return;
        }
        let weight = (snapshot.len() + plan.moves.len()).max(1);
        if weight > self.capacity {
            static OVERSIZED: std::sync::Once = std::sync::Once::new();
            let capacity = self.capacity;
            OVERSIZED.call_once(|| {
                eprintln!(
                    "warning: a {weight}-position move plan exceeds the whole plan-cache \
                     budget ({capacity} position-units) and will not be cached; \
                     PARALLAX_LAYOUT_CACHE sizes both the layout and plan caches — raise \
                     it to at least the largest circuit's qubit count"
                );
            });
            return;
        }
        self.tick += 1;
        if let Some(old) = self.map.remove(&key) {
            self.weight -= old.weight;
        }
        while self.weight + weight > self.capacity {
            self.evict_stalest();
        }
        self.weight += weight;
        self.map.insert(
            key,
            PlanEntry {
                snapshot,
                r_bits: r_um.to_bits(),
                max_recursion: rec,
                moves: plan.moves.clone(),
                max_distance_um: plan.max_distance_um,
                recursion_used: plan.recursion_used,
                tick: self.tick,
                weight,
            },
        );
    }

    /// Current counters and gauges. `contended` is owned by the sharded
    /// wrapper — a single unshared shard never contends with itself.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            contended: 0,
            len: self.map.len(),
            capacity: self.capacity,
            weight: self.weight,
        }
    }

    /// Drop the least-recently-touched entry (callers guarantee the cache
    /// is non-empty whenever they loop on this).
    fn evict_stalest(&mut self) {
        let stalest = self
            .map
            .iter()
            .min_by_key(|(_, e)| e.tick)
            .map(|(k, _)| *k)
            .expect("nonzero weight implies an entry to evict");
        self.weight -= self.map.remove(&stalest).expect("stalest key present").weight;
        self.evictions += 1;
    }

    /// Change the budget at runtime: shrinking evicts stalest-first down
    /// to the new capacity, `0` disables and clears.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        if capacity == 0 {
            self.weight = 0;
            self.map.clear();
            return;
        }
        while self.weight > capacity {
            self.evict_stalest();
        }
    }
}

/// Number of independent locks the process-wide plan cache is split
/// across. The plan cache is the hottest of the three layers — it is
/// probed once per *movement plan* rather than once per compile — so under
/// concurrent serving traffic a single mutex serializes every scheduler
/// on one cache line. Eight shards keyed by a stable fold of [`PlanKey`]
/// cut that collision probability 8x while keeping each shard a plain
/// [`PlanCache`] whose LRU/size-aware semantics are tested directly.
pub const PLAN_SHARDS: usize = 8;

/// Stable shard selector: an FNV-1a fold of the key's four words. Not
/// `std::hash::Hash` — the shard of a key must not depend on hasher
/// randomization, or the per-shard LRU contents (and therefore eviction
/// traffic) would differ run to run.
fn plan_shard_index(key: &PlanKey) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in [key.layout, key.aod_config, u64::from(key.mover), u64::from(key.target)] {
        h ^= w;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    // FNV's multiply only carries entropy upward; fold the high half back
    // down so keys differing in late-folded words spread across shards.
    ((h ^ (h >> 32)) as usize) % PLAN_SHARDS
}

/// Per-shard budget for a `total` position-unit budget: an even split,
/// rounded up so the shard sum never undercuts the configured total.
/// `0` (disabled) stays `0` for every shard.
fn plan_shard_capacity(total: usize) -> usize {
    if total == 0 {
        0
    } else {
        total.div_ceil(PLAN_SHARDS)
    }
}

/// The process-wide plan cache: [`PLAN_SHARDS`] independently locked
/// [`PlanCache`]s plus a contention counter. A probe takes exactly one
/// shard lock, chosen by [`plan_shard_index`]; the counter records how
/// often `try_lock` found that shard held (the probe then blocks as
/// before — sharding narrows the window, the counter measures what's
/// left of it).
struct ShardedPlanCache {
    shards: [Mutex<PlanCache>; PLAN_SHARDS],
    /// The configured *total* budget — what [`PlanCacheStats::capacity`]
    /// reports. Each shard holds `ceil(total / PLAN_SHARDS)`.
    capacity: AtomicUsize,
    contended: AtomicU64,
}

impl ShardedPlanCache {
    fn new(capacity: usize) -> Self {
        let per_shard = plan_shard_capacity(capacity);
        Self {
            shards: std::array::from_fn(|_| Mutex::new(PlanCache::new(per_shard))),
            capacity: AtomicUsize::new(capacity),
            contended: AtomicU64::new(0),
        }
    }

    /// Lock the shard owning `key`, counting the probe as contended when
    /// the lock was already held.
    fn shard(&self, key: &PlanKey) -> std::sync::MutexGuard<'_, PlanCache> {
        let i = plan_shard_index(key);
        match self.shards[i].try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                self.shards[i].lock().expect("plan cache shard lock")
            }
            Err(std::sync::TryLockError::Poisoned(e)) => panic!("plan cache shard lock: {e}"),
        }
    }

    /// Counters summed across every shard; `capacity` is the configured
    /// total rather than the per-shard sum (which rounds up).
    fn stats(&self) -> PlanCacheStats {
        let mut total = PlanCacheStats {
            capacity: self.capacity.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
            ..PlanCacheStats::default()
        };
        for shard in &self.shards {
            let s = shard.lock().expect("plan cache shard lock").stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.len += s.len;
            total.weight += s.weight;
        }
        total
    }

    fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity, Ordering::Relaxed);
        let per_shard = plan_shard_capacity(capacity);
        for shard in &self.shards {
            shard.lock().expect("plan cache shard lock").set_capacity(per_shard);
        }
    }
}

fn plan_global() -> &'static ShardedPlanCache {
    static CACHE: OnceLock<ShardedPlanCache> = OnceLock::new();
    CACHE.get_or_init(|| ShardedPlanCache::new(configured_capacity()))
}

/// Look up a cross-compile move plan for `(mover, target)` against the
/// array's current exact state. `None` means the caller must run the probe
/// cascade (and should [`record_plan`] a success). Only the key's shard
/// is locked, so concurrent compiles collide on a probe only when their
/// keys fold to the same shard.
pub fn lookup_plan(
    key: &PlanKey,
    array: &AtomArray,
    r_um: f64,
    max_recursion: usize,
) -> Option<MovePlan> {
    plan_global().shard(key).get(key, array, r_um, max_recursion)
}

/// Publish a freshly planned success for cross-compile reuse. The
/// verification snapshot is taken before the lock, so concurrent compiles
/// contend only on the (single-shard) map insert itself.
pub fn record_plan(key: PlanKey, array: &AtomArray, r_um: f64, rec: usize, plan: &MovePlan) {
    let snapshot = array.placed_snapshot();
    plan_global().shard(&key).insert(key, snapshot, r_um, rec, plan);
}

/// Snapshot of the process-wide plan cache counters, summed across shards.
pub fn plan_cache_stats() -> PlanCacheStats {
    plan_global().stats()
}

// ---------------------------------------------------------------------------
// Compiled-template cache (variational sweeps)
// ---------------------------------------------------------------------------

use crate::template::CompiledTemplate;
use std::sync::Arc;

/// Content address of one compiled template: the circuit's structural
/// fingerprint (angles canonicalized to ordinal slots) and the
/// machine+config fingerprint of the compiler. Two sweep members that
/// differ only in rotation angles share a key; any structural or
/// configuration change does not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TemplateKey {
    /// [`parallax_circuit::structural_hash`] of the circuit.
    pub structural: u64,
    /// [`crate::ParallaxCompiler::fingerprint`] (machine + config).
    pub compiler: u64,
}

/// Counters and gauges of the template cache (the `STATS` sub-object).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TemplateCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Maximum total weight in qubit-units (0 = disabled).
    pub capacity: usize,
    /// Total weight of the cached entries, qubit-units.
    pub weight: usize,
}

struct TemplateEntry {
    template: Arc<CompiledTemplate>,
    tick: u64,
    weight: usize,
}

/// A template entry holds a full compiled artifact, so it is charged its
/// qubit count plus one unit per scheduled gate index and move — the same
/// qubit/position-sized units as the other two layers.
fn template_weight(template: &CompiledTemplate) -> usize {
    let result = template.result();
    let schedule: usize =
        result.schedule.layers.iter().map(|l| l.gate_indices.len() + l.moves.len()).sum();
    (result.num_qubits + schedule).max(1)
}

/// Bounded LRU map from [`TemplateKey`] to shared compiled templates —
/// same size-aware eviction discipline as [`LayoutCache`]. Entries are
/// `Arc`-shared: a hit is a pointer clone, so sweep traffic never copies
/// the schedule.
pub struct TemplateCache {
    map: HashMap<TemplateKey, TemplateEntry>,
    tick: u64,
    capacity: usize,
    weight: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl TemplateCache {
    /// Create a cache holding at most `capacity` qubit-units of compiled
    /// templates (0 disables).
    pub fn new(capacity: usize) -> Self {
        Self { map: HashMap::new(), tick: 0, capacity, weight: 0, hits: 0, misses: 0, evictions: 0 }
    }

    /// Look up `key`, refreshing its recency and counting the hit/miss.
    pub fn get(&mut self, key: &TemplateKey) -> Option<Arc<CompiledTemplate>> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.tick = self.tick;
                self.hits += 1;
                Some(Arc::clone(&entry.template))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) `key`, evicting least-recently-used templates
    /// until the new entry fits. Like the other layers: disabled at
    /// capacity 0, and an entry outweighing the whole budget warns once
    /// per process and is not cached.
    pub fn insert(&mut self, key: TemplateKey, template: Arc<CompiledTemplate>) {
        if self.capacity == 0 {
            return;
        }
        let weight = template_weight(&template);
        if weight > self.capacity {
            static OVERSIZED: std::sync::Once = std::sync::Once::new();
            let capacity = self.capacity;
            OVERSIZED.call_once(|| {
                eprintln!(
                    "warning: a {weight}-unit compiled template exceeds the whole \
                     template-cache budget ({capacity} qubit-units) and will not be cached; \
                     PARALLAX_LAYOUT_CACHE sizes the layout, plan, and template caches — \
                     raise it to at least the largest sweep circuit's schedule size"
                );
            });
            return;
        }
        self.tick += 1;
        if let Some(old) = self.map.remove(&key) {
            self.weight -= old.weight;
        }
        while self.weight + weight > self.capacity {
            self.evict_stalest();
        }
        self.weight += weight;
        self.map.insert(key, TemplateEntry { template, tick: self.tick, weight });
    }

    /// Current counters and gauges.
    pub fn stats(&self) -> TemplateCacheStats {
        TemplateCacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.map.len(),
            capacity: self.capacity,
            weight: self.weight,
        }
    }

    /// Drop the least-recently-touched entry (callers guarantee the cache
    /// is non-empty whenever they loop on this).
    fn evict_stalest(&mut self) {
        let stalest = self
            .map
            .iter()
            .min_by_key(|(_, e)| e.tick)
            .map(|(k, _)| *k)
            .expect("nonzero weight implies an entry to evict");
        self.weight -= self.map.remove(&stalest).expect("stalest key present").weight;
        self.evictions += 1;
    }

    /// Change the budget at runtime: shrinking evicts stalest-first down
    /// to the new capacity, `0` disables and clears.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        if capacity == 0 {
            self.weight = 0;
            self.map.clear();
            return;
        }
        while self.weight > capacity {
            self.evict_stalest();
        }
    }
}

fn template_global() -> &'static Mutex<TemplateCache> {
    static CACHE: OnceLock<Mutex<TemplateCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(TemplateCache::new(configured_capacity())))
}

/// Look up a process-wide compiled template. `None` means the caller must
/// compile (and should [`record_template`] the result). Most callers want
/// the [`crate::template::compiled_template`] front door instead.
pub fn lookup_template(key: &TemplateKey) -> Option<Arc<CompiledTemplate>> {
    template_global().lock().expect("template cache lock").get(key)
}

/// Publish a freshly compiled template for process-wide reuse. Compilation
/// happens outside the lock ([`crate::template::compiled_template`]), so
/// concurrent sweeps contend only on the map insert itself.
pub fn record_template(key: TemplateKey, template: Arc<CompiledTemplate>) {
    template_global().lock().expect("template cache lock").insert(key, template);
}

/// Snapshot of the process-wide template cache counters.
pub fn template_cache_stats() -> TemplateCacheStats {
    template_global().lock().expect("template cache lock").stats()
}

/// Resize **all three** process-wide cache layers at runtime (the same
/// effect as restarting with `PARALLAX_LAYOUT_CACHE=<units>`): shrinking
/// evicts stalest-first down to the new budget, `0` disables and clears
/// every layer. Concurrent compiles stay correct at any capacity — caches
/// only ever change *when* work is recomputed, never its result.
pub fn resize(capacity: usize) {
    global().lock().expect("layout cache lock").set_capacity(capacity);
    plan_global().set_capacity(capacity);
    template_global().lock().expect("template cache lock").set_capacity(capacity);
}

/// Register the three cache layers with the process-wide metrics registry
/// as a pull-model collector: the caches keep their own counters under
/// their own locks, and exposition samples them on demand instead of
/// mirroring every probe into a second atomic. Idempotent — safe to call
/// from every entry point (compiler construction, service start,
/// `experiments --metrics`).
pub fn register_cache_metrics() {
    parallax_trace::register_collector(
        "parallax_core.caches",
        Box::new(|out| {
            let push = |out: &mut Vec<parallax_trace::Sample>,
                        cache: &str,
                        hits: u64,
                        misses: u64,
                        evictions: u64,
                        len: usize,
                        capacity: usize,
                        weight: usize| {
                let l = [("cache", cache)];
                out.push(parallax_trace::Sample::counter("parallax_cache_hits_total", &l, hits));
                out.push(parallax_trace::Sample::counter(
                    "parallax_cache_misses_total",
                    &l,
                    misses,
                ));
                out.push(parallax_trace::Sample::counter(
                    "parallax_cache_evictions_total",
                    &l,
                    evictions,
                ));
                out.push(parallax_trace::Sample::gauge("parallax_cache_entries", &l, len as u64));
                out.push(parallax_trace::Sample::gauge(
                    "parallax_cache_capacity_units",
                    &l,
                    capacity as u64,
                ));
                out.push(parallax_trace::Sample::gauge(
                    "parallax_cache_weight_units",
                    &l,
                    weight as u64,
                ));
            };
            let s = layout_cache_stats();
            push(out, "layout", s.hits, s.misses, s.evictions, s.len, s.capacity, s.weight);
            let s = plan_cache_stats();
            push(out, "plan", s.hits, s.misses, s.evictions, s.len, s.capacity, s.weight);
            out.push(parallax_trace::Sample::counter(
                "parallax_cache_lock_contended_total",
                &[("cache", "plan")],
                s.contended,
            ));
            let s = template_cache_stats();
            push(out, "template", s.hits, s.misses, s.evictions, s.len, s.capacity, s.weight);
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_circuit::CircuitBuilder;

    fn layout(tag: f64) -> GraphineLayout {
        GraphineLayout {
            positions: vec![(tag, tag)],
            interaction_radius: tag,
            energy: tag,
            anneal_evals: 1,
            anneal_allocs: 1,
        }
    }

    fn sized_layout(tag: f64, qubits: usize) -> GraphineLayout {
        GraphineLayout { positions: vec![(tag, tag); qubits], ..layout(tag) }
    }

    fn key(n: u64) -> LayoutKey {
        LayoutKey { graph: n, machine: 1, placement: 1 }
    }

    #[test]
    fn hit_miss_and_lru_eviction() {
        let mut c = LayoutCache::new(2);
        assert_eq!(c.get(&key(1)), None);
        c.insert(key(1), layout(1.0));
        c.insert(key(2), layout(2.0));
        assert_eq!(c.get(&key(1)).unwrap().energy, 1.0); // 1 now MRU
        c.insert(key(3), layout(3.0)); // evicts 2
        assert_eq!(c.get(&key(2)), None);
        assert!(c.get(&key(1)).is_some() && c.get(&key(3)).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.len), (3, 2, 1, 2));
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut c = LayoutCache::new(0);
        c.insert(key(1), layout(1.0));
        assert_eq!(c.get(&key(1)), None);
        assert_eq!(c.stats().len, 0);
    }

    #[test]
    fn eviction_is_weighted_by_qubit_count() {
        // Capacity 280 qubit-units: a 256-qubit layout plus one 20-qubit
        // layout fit; the second 20-qubit layout displaces the (stale)
        // large one — not a small one — because the large entry is charged
        // its real size instead of a flat 1.
        let mut c = LayoutCache::new(280);
        c.insert(key(1), sized_layout(1.0, 256));
        c.insert(key(2), sized_layout(2.0, 20));
        assert_eq!(c.stats().weight, 276);
        c.insert(key(3), sized_layout(3.0, 20));
        assert_eq!(c.get(&key(1)), None, "the large layout must be evicted first");
        assert!(c.get(&key(2)).is_some() && c.get(&key(3)).is_some());
        let s = c.stats();
        assert_eq!((s.evictions, s.len, s.weight), (1, 2, 40));
    }

    #[test]
    fn oversized_layout_is_not_cached_and_evicts_nothing() {
        let mut c = LayoutCache::new(100);
        c.insert(key(1), sized_layout(1.0, 60));
        c.insert(key(2), sized_layout(2.0, 101)); // exceeds the whole budget
        assert_eq!(c.get(&key(2)), None);
        assert!(c.get(&key(1)).is_some(), "existing entries must survive");
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn reinserting_a_key_replaces_its_weight() {
        let mut c = LayoutCache::new(100);
        c.insert(key(1), sized_layout(1.0, 80));
        c.insert(key(1), sized_layout(1.5, 40));
        let s = c.stats();
        assert_eq!((s.len, s.weight, s.evictions), (1, 40, 0));
        assert_eq!(c.get(&key(1)).unwrap().positions.len(), 40);
    }

    #[test]
    fn distinct_key_components_do_not_collide() {
        let mut c = LayoutCache::new(8);
        c.insert(LayoutKey { graph: 1, machine: 1, placement: 1 }, layout(1.0));
        c.insert(LayoutKey { graph: 1, machine: 2, placement: 1 }, layout(2.0));
        c.insert(LayoutKey { graph: 1, machine: 1, placement: 2 }, layout(3.0));
        assert_eq!(c.get(&LayoutKey { graph: 1, machine: 1, placement: 1 }).unwrap().energy, 1.0);
        assert_eq!(c.get(&LayoutKey { graph: 1, machine: 2, placement: 1 }).unwrap().energy, 2.0);
        assert_eq!(c.get(&LayoutKey { graph: 1, machine: 1, placement: 2 }).unwrap().energy, 3.0);
    }

    fn plan_array() -> AtomArray {
        let mut a = AtomArray::new(MachineSpec::quera_aquila_256(), 3);
        a.place_in_slm(0, (2, 2));
        a.place_in_slm(1, (10, 10));
        a.place_in_slm(2, (6, 2));
        a.transfer_to_aod(0, 0, 0).unwrap();
        a
    }

    fn plan_key(a: &AtomArray) -> PlanKey {
        PlanKey {
            layout: a.static_fingerprint(),
            aod_config: a.aod_fingerprint(),
            mover: 0,
            target: 1,
        }
    }

    fn a_plan() -> MovePlan {
        MovePlan {
            moves: vec![AodMove { q: 0, x: 35.0, y: 35.0 }],
            max_distance_um: 29.7,
            recursion_used: 2,
        }
    }

    #[test]
    fn plan_hit_requires_exact_state_and_knobs() {
        let a = plan_array();
        let key = plan_key(&a);
        let mut c = PlanCache::new(64);
        assert!(c.get(&key, &a, 7.0, 80).is_none());
        c.insert(key, a.placed_snapshot(), 7.0, 80, &a_plan());
        let hit = c.get(&key, &a, 7.0, 80).expect("exact repeat must hit");
        assert_eq!(hit.moves, a_plan().moves);
        assert_eq!(hit.max_distance_um.to_bits(), a_plan().max_distance_um.to_bits());
        assert_eq!(hit.recursion_used, 2);
        // Different planner knobs: same key, but verification fails.
        assert!(c.get(&key, &a, 7.5, 80).is_none(), "different radius must miss");
        assert!(c.get(&key, &a, 7.0, 79).is_none(), "different budget must miss");
        // A mutated array (same key supplied by a buggy/colliding caller)
        // fails the exact snapshot comparison.
        let mut moved = a.clone();
        moved.apply_aod_moves(&[AodMove { q: 0, x: 20.0, y: 20.0 }]).unwrap();
        assert!(c.get(&key, &moved, 7.0, 80).is_none(), "stale state must miss");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 4, 1));
        assert_eq!(s.weight, 3 + 1, "three placed atoms + one move");
    }

    #[test]
    fn plan_eviction_is_size_aware_and_oversized_entries_warn_off() {
        let a = plan_array();
        let base = plan_key(&a);
        // Each entry weighs 4 (3 placed atoms + 1 move): capacity 8 holds
        // exactly two.
        let mut c = PlanCache::new(8);
        for mover in 0..3u32 {
            c.insert(PlanKey { mover, ..base }, a.placed_snapshot(), 7.0, 80, &a_plan());
        }
        let s = c.stats();
        assert_eq!((s.len, s.weight, s.evictions), (2, 8, 1));
        assert!(c.get(&PlanKey { mover: 0, ..base }, &a, 7.0, 80).is_none(), "LRU evicted");
        assert!(c.get(&PlanKey { mover: 2, ..base }, &a, 7.0, 80).is_some());
        // An entry outweighing the whole budget is skipped, nothing evicted.
        let mut tiny = PlanCache::new(3);
        tiny.insert(base, a.placed_snapshot(), 7.0, 80, &a_plan());
        assert_eq!(tiny.stats().len, 0);
        assert_eq!(tiny.stats().evictions, 0);
        // Capacity 0 disables storage outright.
        let mut off = PlanCache::new(0);
        off.insert(base, a.placed_snapshot(), 7.0, 80, &a_plan());
        assert!(off.get(&base, &a, 7.0, 80).is_none());
        assert_eq!(off.stats().len, 0);
    }

    #[test]
    fn plan_set_capacity_shrinks_and_disables() {
        let a = plan_array();
        let base = plan_key(&a);
        let mut c = PlanCache::new(64);
        for mover in 0..4u32 {
            c.insert(PlanKey { mover, ..base }, a.placed_snapshot(), 7.0, 80, &a_plan());
        }
        assert_eq!(c.stats().weight, 16);
        c.set_capacity(8);
        let s = c.stats();
        assert_eq!((s.len, s.weight, s.capacity), (2, 8, 8));
        c.set_capacity(0);
        assert_eq!(c.stats().len, 0);
        assert_eq!(c.stats().weight, 0);
    }

    #[test]
    fn sharded_plan_cache_routes_sums_and_resizes() {
        let a = plan_array();
        let base = plan_key(&a);
        let c = ShardedPlanCache::new(PLAN_SHARDS * 8);
        assert_eq!(c.stats().capacity, PLAN_SHARDS * 8, "reports the configured total");
        // Shard choice is a pure function of the key, so a get after an
        // insert lands on the same shard regardless of hasher state.
        let mut hit_shards = std::collections::BTreeSet::new();
        for mover in 0..32u32 {
            let key = PlanKey { mover, ..base };
            hit_shards.insert(plan_shard_index(&key));
            c.shard(&key).insert(key, a.placed_snapshot(), 7.0, 80, &a_plan());
            assert!(c.shard(&key).get(&key, &a, 7.0, 80).is_some(), "mover {mover}");
        }
        assert!(hit_shards.len() > 1, "32 keys must spread over shards, got {hit_shards:?}");
        let s = c.stats();
        assert_eq!(s.hits, 32);
        assert_eq!(s.misses, 0);
        assert!(s.len <= 32, "per-shard LRU may evict under the split budget");
        assert_eq!(s.contended, 0, "single-threaded probes never contend");
        // Resize to zero disables and clears every shard.
        c.set_capacity(0);
        let s = c.stats();
        assert_eq!((s.len, s.weight, s.capacity), (0, 0, 0));
    }

    #[test]
    fn sharded_plan_cache_counts_lock_contention() {
        let a = plan_array();
        let key = plan_key(&a);
        let c = ShardedPlanCache::new(64);
        std::thread::scope(|s| {
            let held = c.shards[plan_shard_index(&key)].lock().unwrap();
            s.spawn(|| {
                // Blocks until the main thread releases the shard; the
                // try_lock miss is what the counter records.
                let _ = c.shard(&key).get(&key, &a, 7.0, 80);
            });
            while c.contended.load(Ordering::Relaxed) == 0 {
                std::thread::yield_now();
            }
            drop(held);
        });
        let s = c.stats();
        assert_eq!(s.contended, 1);
        assert_eq!(s.misses, 1, "the blocked probe still completes");
    }

    #[test]
    fn plan_shard_capacity_split_rounds_up_and_zero_disables() {
        assert_eq!(plan_shard_capacity(0), 0);
        assert_eq!(plan_shard_capacity(1), 1);
        assert_eq!(plan_shard_capacity(PLAN_SHARDS), 1);
        assert_eq!(plan_shard_capacity(PLAN_SHARDS + 1), 2);
        assert_eq!(plan_shard_capacity(8192), 8192 / PLAN_SHARDS);
    }

    #[test]
    fn template_cache_lifecycle_hit_lru_oversized_disable() {
        use crate::{CompilerConfig, ParallaxCompiler};
        let compiler =
            ParallaxCompiler::new(MachineSpec::quera_aquila_256(), CompilerConfig::quick(21));
        let mut b = CircuitBuilder::new(3);
        b.h(0).cx(0, 1).cx(1, 2);
        let tpl = Arc::new(CompiledTemplate::compile(&compiler, &b.build()));
        let key = |n: u64| TemplateKey { structural: n, compiler: 1 };

        // Weight probe: one entry's weight under a roomy budget.
        let mut probe = TemplateCache::new(1 << 20);
        probe.insert(key(0), Arc::clone(&tpl));
        let w = probe.stats().weight;
        assert!(w >= 3, "3 qubits plus scheduled gates, got {w}");

        // Hit returns the shared Arc and LRU eviction is size-aware.
        let mut c = TemplateCache::new(2 * w);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), Arc::clone(&tpl));
        c.insert(key(2), Arc::clone(&tpl));
        assert!(Arc::ptr_eq(&c.get(&key(1)).unwrap(), &tpl)); // 1 now MRU
        c.insert(key(3), Arc::clone(&tpl)); // evicts 2
        assert!(c.get(&key(2)).is_none());
        assert!(c.get(&key(1)).is_some() && c.get(&key(3)).is_some());
        let s = c.stats();
        assert_eq!((s.evictions, s.len, s.weight), (1, 2, 2 * w));
        assert_eq!((s.hits, s.misses), (3, 2));

        // An entry outweighing the whole budget is skipped, nothing evicted.
        let mut tiny = TemplateCache::new(w - 1);
        tiny.insert(key(1), Arc::clone(&tpl));
        assert_eq!((tiny.stats().len, tiny.stats().evictions), (0, 0));

        // Capacity 0 disables; set_capacity(0) clears.
        let mut off = TemplateCache::new(0);
        off.insert(key(1), Arc::clone(&tpl));
        assert!(off.get(&key(1)).is_none());
        c.set_capacity(0);
        assert_eq!((c.stats().len, c.stats().weight), (0, 0));
    }

    #[test]
    fn global_near_miss_shares_the_layout_and_counts_a_hit() {
        // Unique seed so this test's keys cannot collide with other tests
        // hitting the shared global cache; assertions are delta-based.
        let mut b = CircuitBuilder::new(4);
        b.cx(0, 1).cx(1, 2).cx(2, 3);
        let circuit = b.build();
        let machine = MachineSpec::quera_aquila_256();
        let placement = PlacementConfig::quick(0xC0FFEE);

        let before = layout_cache_stats();
        let cold = cached_layout(&circuit, &machine, &placement);
        let warm = cached_layout(&circuit, &machine, &placement);
        let after = layout_cache_stats();
        assert_eq!(cold, warm, "cache hit must be bit-identical to the anneal");
        assert!(after.hits > before.hits, "{before:?} -> {after:?}");
        assert!(after.misses > before.misses);

        // A different machine is a different key (per the cache contract).
        let other = cached_layout(&circuit, &MachineSpec::atom_1225(), &placement);
        assert_eq!(other, cold, "layout itself is machine-independent");
        assert!(layout_cache_stats().misses > after.misses);
    }
}
