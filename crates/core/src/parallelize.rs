//! Step 5: parallelization of logical shots (Section II-E, Fig. 8).
//!
//! Parallax tiles copies of the compiled circuit across the atom grid. All
//! copies share the AOD rows/columns and therefore the same movement
//! scheme, so one physical shot executes many logical shots. The
//! replication factor is bounded by (a) how many footprint tiles fit on the
//! site grid and (b) the AOD line budget: stacking copies vertically
//! multiplies the rows needed, horizontally the columns.

use crate::compiler::CompilationResult;
use parallax_hardware::MachineSpec;

/// How a compiled circuit is replicated across a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationPlan {
    /// Copies side by side along x.
    pub copies_x: usize,
    /// Copies stacked along y.
    pub copies_y: usize,
}

impl ReplicationPlan {
    /// Total logical shots per physical shot.
    pub fn factor(&self) -> usize {
        self.copies_x * self.copies_y
    }
}

/// Compute the replication plan for `result` on `machine` (which may be a
/// larger machine than the circuit was compiled for, e.g. compile once and
/// tile across the 1,225-site system).
pub fn replication_plan(result: &CompilationResult, machine: &MachineSpec) -> ReplicationPlan {
    let (w, h) = result.footprint_sites();
    if w == 0 || h == 0 || w > machine.grid_dim || h > machine.grid_dim {
        // Degenerate or oversized: a single copy at best.
        let fits = w >= 1 && h >= 1 && w <= machine.grid_dim && h <= machine.grid_dim;
        return ReplicationPlan { copies_x: fits as usize, copies_y: fits as usize };
    }
    // One empty site row/column of margin between tiles keeps copies from
    // interacting (beyond the blockade radius is guaranteed separately by
    // the scheduler's per-copy geometry).
    let tile_w = w + 1;
    let tile_h = h + 1;
    let mut copies_x = ((machine.grid_dim + 1) / tile_w).max(1);
    let mut copies_y = ((machine.grid_dim + 1) / tile_h).max(1);

    // AOD budget: every copy needs one row per AOD atom (one atom per
    // row/column pair), and copies in the same horizontal band share rows.
    let aod_atoms = result.aod_selection.selected.len();
    if let Some(copies_per_band) = machine.aod_dim.checked_div(aod_atoms) {
        copies_y = copies_y.min(copies_per_band).max(1);
        copies_x = copies_x.min(copies_per_band).max(1);
    }
    // Never exceed the atom budget.
    let per_copy = result.num_qubits.max(1);
    let max_by_atoms = machine.num_sites() / per_copy;
    let mut plan = ReplicationPlan { copies_x, copies_y };
    while plan.factor() > max_by_atoms && (plan.copies_x > 1 || plan.copies_y > 1) {
        if plan.copies_x >= plan.copies_y {
            plan.copies_x -= 1;
        } else {
            plan.copies_y -= 1;
        }
    }
    plan
}

/// All meaningful parallelization factors for sweeping (Fig. 11's x-axis):
/// square-ish grids `1, 4, 9, ...` capped by the machine's plan.
pub fn sweep_factors(result: &CompilationResult, machine: &MachineSpec) -> Vec<usize> {
    let max = replication_plan(result, machine);
    let mut out = Vec::new();
    for k in 1..=max.copies_x.max(max.copies_y) {
        let f = (k.min(max.copies_x)) * (k.min(max.copies_y));
        if out.last() != Some(&f) {
            out.push(f);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::ParallaxCompiler;
    use crate::config::CompilerConfig;
    use parallax_circuit::CircuitBuilder;

    fn small_result() -> CompilationResult {
        let mut b = CircuitBuilder::new(4);
        b.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
        ParallaxCompiler::new(
            parallax_hardware::MachineSpec::quera_aquila_256(),
            CompilerConfig::quick(1),
        )
        .compile(&b.build())
    }

    #[test]
    fn small_circuit_replicates_many_times_on_large_machine() {
        let r = small_result();
        let plan = replication_plan(&r, &MachineSpec::atom_1225());
        assert!(plan.factor() > 1, "plan {plan:?}");
        // Never exceed the atom budget.
        assert!(plan.factor() * r.num_qubits <= 1225);
    }

    #[test]
    fn replication_respects_aod_budget() {
        let r = small_result();
        let k = r.aod_selection.selected.len();
        let plan = replication_plan(&r, &MachineSpec::atom_1225());
        if k > 0 {
            assert!(plan.copies_y * k <= 20);
            assert!(plan.copies_x * k <= 20);
        }
    }

    #[test]
    fn factor_is_product() {
        let p = ReplicationPlan { copies_x: 3, copies_y: 4 };
        assert_eq!(p.factor(), 12);
    }

    #[test]
    fn sweep_is_monotone_and_starts_at_one() {
        let r = small_result();
        let sweep = sweep_factors(&r, &MachineSpec::atom_1225());
        assert_eq!(sweep[0], 1);
        for w in sweep.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn oversized_footprint_gets_single_copy_on_own_machine() {
        let r = small_result();
        let plan = replication_plan(&r, &MachineSpec::quera_aquila_256());
        assert!(plan.factor() >= 1);
    }
}
