//! # Parallax: a zero-SWAP compiler for neutral-atom quantum computers
//!
//! Rust reproduction of *"Parallax: A Compiler for Neutral Atom Quantum
//! Computers under Hardware Constraints"* (Ludmir & Patel, SC 2024). The
//! compiler takes a circuit in the {U3, CZ} basis and produces an
//! executable schedule of gate layers and AOD atom movements that never
//! inserts a SWAP gate, via the paper's four-step pipeline (Fig. 4):
//!
//! 1. **Placement** — GRAPHINE dual-annealed layout (`parallax-graphine`).
//! 2. **Discretization** — snap to the machine's site grid under the
//!    minimum-separation/padding rule ([`discretize`]).
//! 3. **AOD selection** — score atoms by out-of-range interactions (0.99)
//!    and blockade serialization (0.01); one atom per AOD row/column pair
//!    ([`aod_select`]).
//! 4. **Scheduling** — Algorithm 1: layered execution with one recursive
//!    move per layer, trap-change fallback, shuffled blockade-interference
//!    ejection, and home-return ([`scheduler`], [`movement`]).
//!
//! Logical shots are parallelized by tiling circuit copies that share the
//! AOD movement scheme ([`parallelize`], Section II-E), and independent
//! compilations fan out across threads ([`parallel`]).
//!
//! # Performance
//!
//! Three layers make repeat and near-miss traffic cheap. The process-wide
//! [`layout_cache`] skips the anneal for known (interaction graph,
//! machine, placement-params) keys, with size-aware eviction (entries are
//! charged their qubit count; `PARALLAX_LAYOUT_CACHE` sets the budget in
//! qubit-units). Riding the same layer, the process-wide **move-plan
//! cache** ([`layout_cache::PlanCache`]) reuses successful AOD movement
//! plans across compiles of the same layout, keyed by (layout hash,
//! AOD-config fingerprint) and verified against the exact array state
//! before every reuse; within a compile, the scheduler's per-compile plan
//! memo answers the home-return steady state with an epoch fast path.
//! Downstream, the [`scheduler`] — the whole cost of a warm-cache compile
//! — runs on an incremental dependency frontier, a spatial blockade
//! index, failed-move memoization, pruned endpoint cascades
//! ([`movement`]), and a reusable layer scratch, all bit-identical to the
//! reference implementations (proptested against the naive oracles).
//! Measured on TFIM-128 (10-sample means, one machine): the schedule
//! stage fell 192.7 ms → 52.8 ms (3.7x) in PR 4 and 55.2 ms → 10.4 ms
//! (5.3x, re-measured same machine) in PR 5 — movement planning itself
//! 50.8 ms → 6.4 ms — on top of PR 3's 1.22 s → 0.19 s.
//! `PARALLAX_PROFILE=1` records per-stage and per-scheduler-sub-stage
//! timers ([`profile`]); the `profile_stages` example prints them for any
//! workload.
//!
//! At 1000+ qubits the bottleneck shifts from algorithms to memory
//! layout, so the structures every compile walks are flat SoA/CSR arrays
//! (`docs/DATA_LAYOUT.md`): CSR dependency DAG and per-qubit gate lists,
//! CSR interaction-graph adjacency, and packed sentinel-encoded
//! `AtomArray` lanes, each proven bit-identical against its retained
//! nested oracle. Measured cold post-placement compiles (10-sample
//! means, one machine, `experiments scale`): Atom-1225 at 1000 qubits
//! 21.9 ms → 12.2 ms (−44%), Synthetic-2048 at 2000 qubits 54.2 ms →
//! 44.3 ms, Synthetic-4096 at 4000 qubits 161.5 ms → 154.8 ms. The
//! process-wide plan cache is sharded 8 ways by key hash; lock
//! contention is counted and exported
//! (`parallax_cache_lock_contended_total`).
//!
//! For variational traffic, a fourth layer skips the pipeline entirely:
//! placement and scheduling read circuit *structure* only, never U3
//! angles, so a [`CompiledTemplate`] compiles a structure once and
//! [`rebind`](CompiledTemplate::rebind)s each parameter set in
//! microseconds (~2 µs for a 372-slot QAOA ansatz vs ~285 µs for a warm
//! full compile, bench-isolated). Templates share the process through
//! [`compiled_template`], keyed by (structural hash, compiler
//! fingerprint) under the same `PARALLAX_LAYOUT_CACHE` budget; sweep
//! loops precompute the key once with [`template_key`] and probe via
//! [`compiled_template_keyed`]. The umbrella differential suite proves
//! every rebind byte-identical to an independent cold compile of the
//! bound circuit.
//!
//! # Example
//! ```
//! use parallax_circuit::CircuitBuilder;
//! use parallax_core::{CompilerConfig, ParallaxCompiler};
//! use parallax_hardware::MachineSpec;
//!
//! let mut b = CircuitBuilder::new(3);
//! b.h(0).cx(0, 1).cx(1, 2);
//! let circuit = b.build();
//!
//! let compiler = ParallaxCompiler::new(
//!     MachineSpec::quera_aquila_256(),
//!     CompilerConfig::quick(0),
//! );
//! let result = compiler.compile(&circuit);
//! assert_eq!(result.schedule.stats.swap_count, 0); // zero SWAPs, always
//! assert_eq!(result.cz_count(), circuit.cz_count());
//! ```

pub mod aod_select;
pub mod compiler;
pub mod config;
pub mod discretize;
pub mod layout_cache;
pub mod movement;
pub mod multi_mover;
pub mod parallel;
pub mod parallelize;
pub mod profile;
pub mod queue;
pub mod scheduler;
pub mod template;

pub use aod_select::{select_aod_qubits, AodSelection};
pub use compiler::{CompilationResult, ParallaxCompiler, SharedCompiler};
pub use config::{CompilerConfig, SchedulingMode};
pub use discretize::{discretize, DiscretizedLayout};
pub use layout_cache::{
    cached_layout, layout_cache_stats, plan_cache_stats, template_cache_stats, LayoutCache,
    LayoutCacheStats, PlanCache, PlanCacheStats, PlanKey, TemplateCache, TemplateCacheStats,
    TemplateKey,
};
pub use movement::{plan_move_into_range, plan_return_home, MoveFailure, MovePlan};
#[cfg(any(test, debug_assertions))]
pub use multi_mover::moves_conflict_naive;
pub use multi_mover::{corridors_conflict, Corridor};

/// Register core's pull-model metrics (the three cache layers) with the
/// process-wide `parallax-trace` registry. Once per process; every entry
/// point calls it — compiler construction, the compile service, the bench
/// harness — so exposition always includes the cache gauges no matter
/// which surface scraped first.
pub fn register_observability() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(layout_cache::register_cache_metrics);
}
pub use parallel::{compile_batch, panic_message, try_compile_batch, BatchJobError};
pub use parallelize::{replication_plan, sweep_factors, ReplicationPlan};
pub use queue::{JobQueue, PushError};
pub use scheduler::{schedule_gates, CompileStats, MultiMoverStats, Schedule, ScheduledLayer};
pub use template::{compiled_template, compiled_template_keyed, template_key, CompiledTemplate};
