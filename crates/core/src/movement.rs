//! Step 4a: recursive AOD movement planning.
//!
//! Section II-D: to execute an out-of-range CZ, Parallax moves an
//! AOD-trapped operand within the interaction radius of its partner. If the
//! destination violates the minimum separation against another AOD atom,
//! that atom is recursively displaced; if the mover's row/column would get
//! too close to another AOD row/column, those lines are recursively pushed
//! away. Recursion is capped (80 iterations in the paper); a failed plan is
//! resolved by the scheduler with a trap change. Static SLM atoms are never
//! show-stoppers — the discretization pitch guarantees navigable space, so
//! the planner simply picks a different approach angle around the target.
//!
//! The endpoint-candidate cascade is **pruned**: candidates that are
//! provably infeasible — out of bounds, or within the minimum separation
//! of an atom the cascade may never displace (a static atom or the pinned
//! target), found through the hardware crate's spatial occupancy index —
//! are skipped without probing (`endpoint_provably_blocked`). The first
//! accepted plan is identical to the unpruned cascade's by construction;
//! `plan_move_into_range_naive` is kept in test/debug builds as the
//! oracle the differential proptests diff against.

use parallax_hardware::{violates_separation, AodMove, AtomArray, Point, Trap, Violation};

/// Why a movement plan could not be produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveFailure {
    /// The mover is not AOD-trapped.
    NotInAod,
    /// The recursive displacement budget was exhausted.
    RecursionLimit,
    /// No approach angle produced a valid configuration.
    NoValidEndpoint,
}

/// A validated batch of AOD moves ready to commit.
#[derive(Debug, Clone)]
pub struct MovePlan {
    /// The mover plus every recursively displaced atom.
    pub moves: Vec<AodMove>,
    /// Maximum displacement among all moved atoms, µm. Atoms move in
    /// parallel, so this determines the movement time of the layer.
    pub max_distance_um: f64,
    /// Number of recursive resolution iterations consumed (diagnostic).
    pub recursion_used: usize,
}

impl MovePlan {
    fn from_moves(array: &AtomArray, moves: Vec<AodMove>, recursion_used: usize) -> Self {
        let max_distance_um = moves
            .iter()
            .map(|m| array.position(m.q).distance(&Point::new(m.x, m.y)))
            .fold(0.0, f64::max);
        Self { moves, max_distance_um, recursion_used }
    }
}

/// Whether `endpoint` can be rejected without running the probe cascade.
///
/// Two conditions prove infeasibility outright, because the mover is
/// pinned at the endpoint and the conflicting party can never be
/// displaced by the cascade:
///
/// * the endpoint is outside the machine's addressable area (the same
///   bounds rule the violation scan applies), or
/// * an atom that the cascade may not move — a static SLM atom, or the
///   pinned `target` — sits within the minimum separation distance of the
///   endpoint (found through the spatial occupancy index, exactness
///   re-checked with [`violates_separation`]).
///
/// Every displaced atom in a cascade is AOD-trapped and non-pinned, so a
/// final configuration containing such a conflict can never validate: the
/// probe would fail after however many resolution iterations it burned.
/// Skipping it leaves the set of *successful* endpoints — and therefore
/// the first accepted plan — untouched. The only observable difference is
/// the failure **variant** of an all-endpoints-fail query: a pruned
/// endpoint cannot report `RecursionLimit`, so a query the naive cascade
/// answers `RecursionLimit` may answer `NoValidEndpoint` instead (the
/// scheduler treats every failure identically).
fn endpoint_provably_blocked(array: &AtomArray, mover: u32, target: u32, endpoint: Point) -> bool {
    let margin = array.grid().pitch_um();
    let max = array.spec().extent_um() + margin;
    if endpoint.x < -margin || endpoint.y < -margin || endpoint.x > max || endpoint.y > max {
        return true;
    }
    let min_sep = array.spec().min_separation_um;
    let mut blocked = false;
    array.for_each_atom_within(endpoint, min_sep, |q| {
        if !blocked
            && q != mover
            && (q == target || !array.is_aod(q))
            && violates_separation(&endpoint, &array.position(q), min_sep)
        {
            blocked = true;
        }
    });
    blocked
}

/// Plan to bring `mover` (AOD-trapped) within radius `r_um` of `target`.
///
/// The returned plan has already been validated against the array; the
/// caller commits it with [`AtomArray::apply_aod_moves`].
///
/// Endpoint candidates that are provably infeasible (see
/// [`endpoint_provably_blocked`]) are skipped without probing; the first
/// accepted plan is identical to the unpruned cascade's by construction,
/// and [`plan_move_into_range_naive`] is kept as the oracle the
/// differential tests diff against.
pub fn plan_move_into_range(
    array: &AtomArray,
    mover: u32,
    target: u32,
    r_um: f64,
    max_recursion: usize,
) -> Result<MovePlan, MoveFailure> {
    plan_move_impl(array, mover, target, r_um, max_recursion, true)
}

/// The unpruned probe cascade: every endpoint candidate is probed, none
/// pre-filtered. Test oracle for [`plan_move_into_range`] — successful
/// plans must be bit-identical, failures must agree modulo the
/// `RecursionLimit`/`NoValidEndpoint` variant (see
/// [`endpoint_provably_blocked`]).
#[cfg(any(test, debug_assertions))]
pub fn plan_move_into_range_naive(
    array: &AtomArray,
    mover: u32,
    target: u32,
    r_um: f64,
    max_recursion: usize,
) -> Result<MovePlan, MoveFailure> {
    plan_move_impl(array, mover, target, r_um, max_recursion, false)
}

fn plan_move_impl(
    array: &AtomArray,
    mover: u32,
    target: u32,
    r_um: f64,
    max_recursion: usize,
    prune: bool,
) -> Result<MovePlan, MoveFailure> {
    if !array.is_aod(mover) {
        return Err(MoveFailure::NotInAod);
    }
    let target_pos = array.position(target);
    let mover_pos = array.position(mover);
    let min_sep = array.spec().min_separation_um;
    // Candidate approach distances, closest first: the discretization
    // pitch (2 x min separation + padding) guarantees clearance right next
    // to any SLM atom, so parking just outside the separation distance
    // nearly always works; wider stops are fallbacks for crowded AOD
    // neighbourhoods.
    let approaches = [
        (min_sep + 0.5).min(r_um - 1e-6),
        (0.5 * r_um).max(min_sep + 0.5).min(r_um - 1e-6),
        (0.9 * r_um).max(min_sep + 0.5).min(r_um - 1e-6),
    ];

    // Approach angles, nearest-to-current-direction first.
    let base = (mover_pos.y - target_pos.y).atan2(mover_pos.x - target_pos.x);
    let offsets = [
        0.0,
        std::f64::consts::FRAC_PI_8,
        -std::f64::consts::FRAC_PI_8,
        std::f64::consts::FRAC_PI_4,
        -std::f64::consts::FRAC_PI_4,
        3.0 * std::f64::consts::FRAC_PI_8,
        -3.0 * std::f64::consts::FRAC_PI_8,
        std::f64::consts::FRAC_PI_2,
        -std::f64::consts::FRAC_PI_2,
        5.0 * std::f64::consts::FRAC_PI_8,
        -5.0 * std::f64::consts::FRAC_PI_8,
        3.0 * std::f64::consts::FRAC_PI_4,
        -3.0 * std::f64::consts::FRAC_PI_4,
        7.0 * std::f64::consts::FRAC_PI_8,
        -7.0 * std::f64::consts::FRAC_PI_8,
        std::f64::consts::PI,
    ];

    // When both operands are AOD-trapped, line ordering imposes hard side
    // constraints: rows (columns) strictly between the two atoms' line
    // indices keep at least `gap` per index step between their
    // coordinates. Try the tightest corner satisfying those constraints
    // first; fail fast when no point within the radius can satisfy them.
    if let (Some(Trap::Aod { row: mr, col: mc }), Some(Trap::Aod { row: tr, col: tc })) =
        (array.trap(mover), array.trap(target))
    {
        let gap = array.line_gap();
        let dr = i32::from(mr) - i32::from(tr);
        let dc = i32::from(mc) - i32::from(tc);
        let dy_req = gap * dr.unsigned_abs() as f64 + 0.3;
        let dx_req = gap * dc.unsigned_abs() as f64 + 0.3;
        if dx_req * dx_req + dy_req * dy_req > r_um * r_um {
            return Err(MoveFailure::NoValidEndpoint);
        }
        // Sample the feasible quadrant (offsets at least the index-implied
        // minima, within the radius), nearest corners first, so an SLM atom
        // sitting on one candidate does not kill the move.
        let step = gap * 0.55;
        let mut candidates: Vec<(f64, f64, f64)> = Vec::new();
        for k in 0..5 {
            for j in 0..5 {
                let dx = dx_req + k as f64 * step;
                let dy = dy_req + j as f64 * step;
                if dx * dx + dy * dy <= r_um * r_um {
                    candidates.push((dx + dy, dx, dy));
                }
            }
        }
        candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (_, dx, dy) in candidates {
            let corner = Point::new(
                target_pos.x + dx * dc.signum() as f64,
                target_pos.y + dy * dr.signum() as f64,
            );
            if prune && endpoint_provably_blocked(array, mover, target, corner) {
                continue;
            }
            let mut budget = max_recursion;
            if let Ok(moves) = try_endpoint(array, mover, target, corner, &mut budget) {
                let used = max_recursion - budget;
                return Ok(MovePlan::from_moves(array, moves, used));
            }
        }
    }

    let mut saw_recursion_limit = false;
    for approach in approaches {
        for off in offsets {
            // Each attempt gets its own recursion allowance (the paper's
            // 80-iteration cap applies per resolution attempt).
            let mut recursion_budget = max_recursion;
            let angle = base + off;
            let endpoint = Point::new(
                target_pos.x + approach * angle.cos(),
                target_pos.y + approach * angle.sin(),
            );
            if prune && endpoint_provably_blocked(array, mover, target, endpoint) {
                continue;
            }
            match try_endpoint(array, mover, target, endpoint, &mut recursion_budget) {
                Ok(moves) => {
                    debug_assert!(
                        !moves.iter().any(|m| m.q == target),
                        "plan displaced the gate's target atom"
                    );
                    let used = max_recursion - recursion_budget;
                    return Ok(MovePlan::from_moves(array, moves, used));
                }
                Err(EndpointFailure::Recursion) => {
                    saw_recursion_limit = true;
                    continue;
                }
                Err(EndpointFailure::Angle) => continue,
            }
        }
    }
    if saw_recursion_limit {
        Err(MoveFailure::RecursionLimit)
    } else {
        Err(MoveFailure::NoValidEndpoint)
    }
}

enum EndpointFailure {
    /// This approach angle cannot work (e.g. a static atom sits there).
    Angle,
    /// The shared recursion budget ran out.
    Recursion,
}

/// Attempt one endpoint, recursively displacing obstructing AOD atoms and
/// lines until the batch validates or the budget dies.
fn try_endpoint(
    array: &AtomArray,
    mover: u32,
    target: u32,
    endpoint: Point,
    budget: &mut usize,
) -> Result<Vec<AodMove>, EndpointFailure> {
    let gap = array.line_gap();
    let min_sep = array.spec().min_separation_um;
    // Neither the mover (its endpoint is the point of the move) nor the
    // target (the gate needs it where it is) may be displaced.
    let pinned = |q: u32| q == mover || q == target;
    let mut moves: Vec<AodMove> = vec![AodMove { q: mover, x: endpoint.x, y: endpoint.y }];
    // Oscillation guard: a violation signature recurring means the cascade
    // is geometrically infeasible for this endpoint (e.g. an atom squeezed
    // between two pinned lines) — bail to the next angle instead of
    // burning the whole recursion budget.
    let mut seen: Vec<(u8, u32, u32)> = Vec::new();

    loop {
        // Only the first violation steers the resolution; the early-exit
        // scan avoids the full O(atoms x moves) sweep per probe.
        let Some(v) = array.first_aod_move_violation(&moves) else {
            return Ok(moves);
        };
        if *budget == 0 {
            return Err(EndpointFailure::Recursion);
        }
        *budget -= 1;
        let signature = match v {
            Violation::Separation { q1, q2, .. } => (0u8, q1, q2),
            Violation::RowOrdering { row_a, row_b } => (1, row_a as u32, row_b as u32),
            Violation::ColOrdering { col_a, col_b } => (2, col_a as u32, col_b as u32),
            Violation::OutOfBounds { q } => (3, q, 0),
        };
        if seen.iter().filter(|&&s| s == signature).count() >= 2 {
            return Err(EndpointFailure::Angle);
        }
        seen.push(signature);

        let planned = |q: u32, moves: &[AodMove]| -> Point {
            moves
                .iter()
                .find(|m| m.q == q)
                .map(|m| Point::new(m.x, m.y))
                .unwrap_or_else(|| array.position(q))
        };

        match v {
            Violation::Separation { q1, q2, .. } => {
                // q1 is always a moved (hence AOD) atom; q2 may be a static
                // SLM atom, a parked AOD atom, or another moved atom.
                // Displace an AOD party that is not the mover; if the only
                // conflict partner is static, this approach angle is dead.
                let push_q = if array.is_aod(q2) && !pinned(q2) {
                    q2
                } else if !pinned(q1) {
                    q1
                } else {
                    return Err(EndpointFailure::Angle);
                };
                let anchor_q = if push_q == q1 { q2 } else { q1 };
                let anchor = planned(anchor_q, &moves);
                let current = planned(push_q, &moves);
                // Axis-aligned displacement along the dominant separation
                // axis: keeps the push consistent with AOD line ordering
                // (the axis gap also satisfies the line-gap constraint), so
                // separation and ordering fixes converge instead of
                // oscillating.
                let dx = current.x - anchor.x;
                let dy = current.y - anchor.y;
                let dist = min_sep.max(gap) + 0.6;
                let new = if dx.abs() >= dy.abs() {
                    let dir = if dx != 0.0 { dx.signum() } else { 1.0 };
                    Point::new(anchor.x + dir * dist, current.y)
                } else {
                    let dir = if dy != 0.0 { dy.signum() } else { 1.0 };
                    Point::new(current.x, anchor.y + dir * dist)
                };
                upsert(&mut moves, push_q, new);
            }
            Violation::RowOrdering { row_a, row_b } => {
                // Push whichever line's owner is not pinned.
                let qa = owner_of_row(array, row_a);
                let qb = owner_of_row(array, row_b);
                let (push_q, fixed_q, push_up) =
                    if pinned(qa) { (qb, qa, true) } else { (qa, qb, false) };
                if pinned(push_q) {
                    return Err(EndpointFailure::Angle);
                }
                let fixed_y = planned(fixed_q, &moves).y;
                let cur = planned(push_q, &moves);
                let new_y = if push_up { fixed_y + gap + 0.25 } else { fixed_y - gap - 0.25 };
                upsert(&mut moves, push_q, Point::new(cur.x, new_y));
            }
            Violation::ColOrdering { col_a, col_b } => {
                let qa = owner_of_col(array, col_a);
                let qb = owner_of_col(array, col_b);
                let (push_q, fixed_q, push_right) =
                    if pinned(qa) { (qb, qa, true) } else { (qa, qb, false) };
                if pinned(push_q) {
                    return Err(EndpointFailure::Angle);
                }
                let fixed_x = planned(fixed_q, &moves).x;
                let cur = planned(push_q, &moves);
                let new_x = if push_right { fixed_x + gap + 0.25 } else { fixed_x - gap - 0.25 };
                upsert(&mut moves, push_q, Point::new(new_x, cur.y));
            }
            Violation::OutOfBounds { q } => {
                if q == mover {
                    return Err(EndpointFailure::Angle);
                }
                // A recursively displaced atom left the grid; this angle's
                // cascade will not settle.
                return Err(EndpointFailure::Angle);
            }
        }
    }
}

fn upsert(moves: &mut Vec<AodMove>, q: u32, p: Point) {
    if let Some(m) = moves.iter_mut().find(|m| m.q == q) {
        m.x = p.x;
        m.y = p.y;
    } else {
        moves.push(AodMove { q, x: p.x, y: p.y });
    }
}

fn owner_of_row(array: &AtomArray, row: u16) -> u32 {
    array.row_owner(row).expect("ordering violation names an owned row")
}

fn owner_of_col(array: &AtomArray, col: u16) -> u32 {
    array.col_owner(col).expect("ordering violation names an owned column")
}

/// Plan the reverse (home-return) batch for the given `(qubit, home)` pairs.
/// The home configuration was valid when recorded, so this plan always
/// validates; it is returned as a plan for uniform commit/accounting.
pub fn plan_return_home(array: &AtomArray, homes: &[(u32, Point)]) -> MovePlan {
    let moves: Vec<AodMove> = homes
        .iter()
        .filter(|(q, home)| array.position(*q).distance(home) > 1e-9)
        .map(|&(q, home)| AodMove { q, x: home.x, y: home.y })
        .collect();
    MovePlan::from_moves(array, moves, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_hardware::MachineSpec;

    /// Build an array with the given SLM sites; returns it with all atoms
    /// static.
    fn array_with(sites: &[(u16, u16)]) -> AtomArray {
        let mut a = AtomArray::new(MachineSpec::quera_aquila_256(), sites.len());
        for (q, &s) in sites.iter().enumerate() {
            a.place_in_slm(q as u32, s);
        }
        a
    }

    #[test]
    fn simple_move_into_range() {
        let mut a = array_with(&[(2, 2), (12, 12)]);
        a.transfer_to_aod(0, 0, 0).unwrap();
        let r = 7.0;
        assert!(a.distance(0, 1) > r);
        let plan = plan_move_into_range(&a, 0, 1, r, 80).unwrap();
        assert_eq!(plan.moves.len(), 1);
        a.apply_aod_moves(&plan.moves).unwrap();
        assert!(a.distance(0, 1) <= r);
        assert!(a.validate().is_empty());
        assert!(plan.max_distance_um > 0.0);
    }

    #[test]
    fn non_aod_mover_fails() {
        let a = array_with(&[(2, 2), (12, 12)]);
        match plan_move_into_range(&a, 0, 1, 7.0, 80) {
            Err(MoveFailure::NotInAod) => {}
            other => panic!("expected NotInAod, got {other:?}"),
        }
    }

    #[test]
    fn navigates_around_static_obstruction() {
        // Target at (8,8); a static atom sits directly on the straight-line
        // approach point; the planner must pick a different angle.
        let mut a = array_with(&[(2, 8), (8, 8), (7, 8)]);
        a.transfer_to_aod(0, 0, 0).unwrap();
        let r = 7.5; // approach distance ~6.75 µm: site (7,8) is 7 µm from target
        let plan = plan_move_into_range(&a, 0, 1, r, 80).unwrap();
        let mut b = a.clone();
        b.apply_aod_moves(&plan.moves).unwrap();
        assert!(b.distance(0, 1) <= r);
        assert!(b.validate().is_empty());
    }

    #[test]
    fn recursively_displaces_aod_obstructor() {
        // q2 is an AOD atom parked near the approach point of q0 -> q1
        // (distinct row/column coordinates so the transfers are legal).
        let mut a = array_with(&[(2, 2), (12, 3), (11, 3)]);
        a.transfer_to_aod(0, 0, 0).unwrap();
        a.transfer_to_aod(2, 1, 1).unwrap();
        let r = 7.5;
        let plan = plan_move_into_range(&a, 0, 1, r, 80).unwrap();
        let mut b = a.clone();
        b.apply_aod_moves(&plan.moves).unwrap();
        assert!(b.distance(0, 1) <= r, "distance {}", b.distance(0, 1));
        assert!(b.validate().is_empty());
    }

    #[test]
    fn zero_budget_reports_recursion_limit_or_endpoint() {
        let mut a = array_with(&[(2, 2), (12, 3), (11, 3)]);
        a.transfer_to_aod(0, 0, 0).unwrap();
        a.transfer_to_aod(2, 1, 1).unwrap();
        // With no recursion budget the obstructed approach cannot resolve.
        let res = plan_move_into_range(&a, 0, 1, 7.5, 0);
        assert!(res.is_err());
    }

    #[test]
    fn return_home_restores_positions() {
        let mut a = array_with(&[(2, 2), (12, 12)]);
        a.transfer_to_aod(0, 0, 0).unwrap();
        let home = a.position(0);
        let plan = plan_move_into_range(&a, 0, 1, 7.0, 80).unwrap();
        a.apply_aod_moves(&plan.moves).unwrap();
        let back = plan_return_home(&a, &[(0, home)]);
        assert_eq!(back.moves.len(), 1);
        a.apply_aod_moves(&back.moves).unwrap();
        assert_eq!(a.position(0), home);
    }

    #[test]
    fn return_home_skips_unmoved_atoms() {
        let mut a = array_with(&[(2, 2), (12, 12)]);
        a.transfer_to_aod(0, 0, 0).unwrap();
        let home = a.position(0);
        let plan = plan_return_home(&a, &[(0, home)]);
        assert!(plan.moves.is_empty());
        assert_eq!(plan.max_distance_um, 0.0);
    }

    #[test]
    fn plan_never_moves_static_atoms() {
        let mut a = array_with(&[(2, 2), (12, 12), (8, 8), (6, 10)]);
        a.transfer_to_aod(0, 0, 0).unwrap();
        let plan = plan_move_into_range(&a, 0, 1, 7.0, 80).unwrap();
        for m in &plan.moves {
            assert!(a.is_aod(m.q), "plan moved non-AOD atom q{}", m.q);
        }
    }

    // -- Pruned cascade vs the naive oracle --

    /// Both planners from the same state: successful plans must be
    /// bit-identical (the first accepted endpoint is the same by
    /// construction); failures must agree on failing, though the pruned
    /// path may report `NoValidEndpoint` where the naive one burned its
    /// budget into `RecursionLimit`.
    fn assert_matches_naive_plan(a: &AtomArray, mover: u32, target: u32, r: f64, rec: usize) {
        let pruned = plan_move_into_range(a, mover, target, r, rec);
        let naive = plan_move_into_range_naive(a, mover, target, r, rec);
        match (&pruned, &naive) {
            (Ok(p), Ok(n)) => {
                assert_eq!(p.moves, n.moves, "plans must be bit-identical");
                assert_eq!(p.max_distance_um.to_bits(), n.max_distance_um.to_bits());
                assert_eq!(p.recursion_used, n.recursion_used);
            }
            (Err(_), Err(_)) => {}
            other => panic!("pruned/naive success disagreement: {other:?}"),
        }
    }

    #[test]
    fn pruned_cascade_matches_naive_on_obstructed_scenes() {
        // Static obstruction on the direct approach, an AOD blocker, and a
        // clean corridor — the three cascade shapes.
        let scenes: &[&[(u16, u16)]] = &[
            &[(2, 8), (8, 8), (7, 8)],
            &[(2, 2), (12, 3), (11, 3)],
            &[(2, 2), (12, 12)],
            &[(2, 8), (8, 8), (7, 8), (7, 9), (7, 7), (9, 8)],
        ];
        for sites in scenes {
            for rec in [0usize, 1, 3, 80] {
                let mut a = array_with(sites);
                a.transfer_to_aod(0, 0, 0).unwrap();
                assert_matches_naive_plan(&a, 0, 1, 7.5, rec);
            }
        }
    }

    #[test]
    fn pruning_skips_statically_blocked_endpoints() {
        // The straight-line approach point of q0 -> q1 is occupied by the
        // static q2, so that endpoint is provably blocked…
        let mut a = array_with(&[(2, 8), (8, 8), (7, 8)]);
        a.transfer_to_aod(0, 0, 0).unwrap();
        let target = a.position(1);
        let mover = a.position(0);
        let base = (mover.y - target.y).atan2(mover.x - target.x);
        let blocked = Point::new(target.x + 6.75 * base.cos(), target.y + 6.75 * base.sin());
        assert!(endpoint_provably_blocked(&a, 0, 1, blocked));
        // …an in-bounds clear point is not, and out-of-bounds always is.
        assert!(!endpoint_provably_blocked(&a, 0, 1, Point::new(42.0, 63.0)));
        assert!(endpoint_provably_blocked(&a, 0, 1, Point::new(-1e4, 0.0)));
        // The planner still finds the same plan as the oracle.
        assert_matches_naive_plan(&a, 0, 1, 7.5, 80);
    }

    mod pruned_matches_naive_on_random_scenes {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            /// Random crowded scenes: static atoms scattered on the grid,
            /// a handful of AOD atoms on the diagonal, random (mover,
            /// target) pairs and radii. The pruned planner must agree
            /// with the naive oracle everywhere.
            #[test]
            fn on_random_arrays(
                extra in proptest::collection::vec((0u16..14, 0u16..14), 0..10),
                mover in 0u32..4,
                target in 0u32..8,
                r in 5.0f64..12.0,
                rec in 0usize..6,
            ) {
                let mut a = AtomArray::new(MachineSpec::quera_aquila_256(), 8 + extra.len());
                // Four AOD atoms on the diagonal, four static anchors.
                for q in 0..4u16 {
                    a.place_in_slm(q as u32, (3 * q, 3 * q));
                }
                a.place_in_slm(4, (13, 1));
                a.place_in_slm(5, (1, 13));
                a.place_in_slm(6, (13, 13));
                a.place_in_slm(7, (7, 10));
                let mut next = 8u32;
                for &site in &extra {
                    if !a.grid().is_occupied(site) {
                        a.place_in_slm(next, site);
                        next += 1;
                    }
                }
                for q in 0..4u32 {
                    a.transfer_to_aod(q, q as u16, q as u16).unwrap();
                }
                if mover != target {
                    let pruned = plan_move_into_range(&a, mover, target, r, rec);
                    let naive = plan_move_into_range_naive(&a, mover, target, r, rec);
                    match (&pruned, &naive) {
                        (Ok(p), Ok(n)) => {
                            prop_assert_eq!(&p.moves, &n.moves);
                            prop_assert_eq!(
                                p.max_distance_um.to_bits(),
                                n.max_distance_um.to_bits()
                            );
                        }
                        (Err(_), Err(_)) => {}
                        other => {
                            return Err(TestCaseError::fail(format!(
                                "success disagreement: {other:?}"
                            )));
                        }
                    }
                }
            }
        }
    }
}
