//! The four-step Parallax pipeline (Fig. 4).

use crate::aod_select::{select_aod_qubits, AodSelection};
use crate::config::CompilerConfig;
use crate::discretize::{discretize, DiscretizedLayout};
use crate::profile;
use crate::scheduler::{schedule_gates, Schedule};
use parallax_circuit::Circuit;
use parallax_graphine::GraphineLayout;
use parallax_hardware::{MachineSpec, Point};

/// The output of a Parallax compilation.
#[derive(Debug, Clone)]
pub struct CompilationResult {
    /// Machine the circuit was compiled for.
    pub machine: MachineSpec,
    /// Rydberg interaction radius used, µm.
    pub interaction_radius_um: f64,
    /// The executable schedule with statistics.
    pub schedule: Schedule,
    /// Which qubits were placed in the AOD.
    pub aod_selection: AodSelection,
    /// Home positions of all atoms after AOD selection (µm).
    pub home_positions: Vec<Point>,
    /// Number of circuit qubits.
    pub num_qubits: usize,
}

impl CompilationResult {
    /// Executed CZ count — the paper's primary metric. Parallax adds zero
    /// SWAPs, so this equals the input circuit's CZ count.
    pub fn cz_count(&self) -> usize {
        self.schedule.stats.cz_count
    }

    /// Executed U3 count.
    pub fn u3_count(&self) -> usize {
        self.schedule.stats.u3_count
    }

    /// Trap-change fraction relative to CZ gates (the paper reports ~1.3%
    /// across its benchmark suite).
    pub fn trap_change_rate(&self) -> f64 {
        if self.cz_count() == 0 {
            0.0
        } else {
            self.schedule.stats.trap_changes as f64 / self.cz_count() as f64
        }
    }

    /// Bounding box of the atom footprint in grid sites `(width, height)`,
    /// used to decide how many circuit copies fit on the machine.
    pub fn footprint_sites(&self) -> (usize, usize) {
        if self.home_positions.is_empty() {
            return (0, 0);
        }
        let pitch = self.machine.site_pitch_um();
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for p in &self.home_positions {
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
            min_y = min_y.min(p.y);
            max_y = max_y.max(p.y);
        }
        let w = ((max_x - min_x) / pitch).round() as usize + 1;
        let h = ((max_y - min_y) / pitch).round() as usize + 1;
        (w, h)
    }
}

/// The Parallax compiler for a fixed machine and configuration.
#[derive(Debug, Clone)]
pub struct ParallaxCompiler {
    machine: MachineSpec,
    config: CompilerConfig,
}

/// A cheap, shareable compiler handle: [`ParallaxCompiler`] is immutable
/// after construction and `compile` takes `&self`, so one instance behind an
/// `Arc` can serve any number of worker threads concurrently.
pub type SharedCompiler = std::sync::Arc<ParallaxCompiler>;

impl ParallaxCompiler {
    /// Create a compiler for `machine` with `config`.
    pub fn new(machine: MachineSpec, config: CompilerConfig) -> Self {
        crate::register_observability();
        Self { machine, config }
    }

    /// Create a compiler wrapped for sharing across threads (the handle the
    /// compile service's worker pool clones per job).
    pub fn shared(machine: MachineSpec, config: CompilerConfig) -> SharedCompiler {
        std::sync::Arc::new(Self::new(machine, config))
    }

    /// Wrap this compiler into a [`SharedCompiler`] handle.
    pub fn into_shared(self) -> SharedCompiler {
        std::sync::Arc::new(self)
    }

    /// The machine this compiler targets.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// The configuration this compiler applies.
    pub fn config(&self) -> &CompilerConfig {
        &self.config
    }

    /// Stable fingerprint of the (machine, config) pair; combined with a
    /// stable circuit hash it content-addresses a compilation, since equal
    /// fingerprints plus equal circuits give bit-identical results.
    pub fn fingerprint(&self) -> u64 {
        let mut h = parallax_hardware::StableHasher::new();
        h.write_u64(self.machine.fingerprint()).write_u64(self.config.fingerprint());
        h.finish()
    }

    /// Compile `circuit` end to end: GRAPHINE placement (step 1),
    /// discretization (step 2), AOD selection (step 3), scheduling (step 4).
    ///
    /// Placement goes through the process-wide [`crate::layout_cache`]: a
    /// submission that differs from a previous one only in scheduling
    /// knobs (or an exact repeat from a fresh compiler) skips the anneal
    /// and re-runs only the cheap downstream stages. Cached layouts are
    /// bit-identical to fresh anneals, so results never depend on the
    /// cache's state.
    pub fn compile(&self, circuit: &Circuit) -> CompilationResult {
        let layout =
            crate::layout_cache::cached_layout(circuit, &self.machine, &self.config.placement);
        self.compile_with_layout(circuit, &layout)
    }

    /// Compile with a pre-computed GRAPHINE layout (mirrors the paper's CLI
    /// option to load pre-obtained Graphine results and skip annealing).
    pub fn compile_with_layout(
        &self,
        circuit: &Circuit,
        layout: &GraphineLayout,
    ) -> CompilationResult {
        // The root span lives here, not in `compile`, so every entry point
        // — full compiles, pre-placed bench runs, template structure
        // compiles — traces the same `compile → stage.*` tree. Placement
        // (`stage.placement`, inside the layout cache) precedes this call
        // in `compile` and records as a sibling root of the same trace.
        let _root = parallax_trace::span!("compile");
        let t = profile::begin();
        let sp = parallax_trace::span!("stage.discretize");
        let mut disc: DiscretizedLayout = discretize(circuit, layout, self.machine);
        drop(sp);
        profile::record(profile::Stage::Discretize, t, 0);
        let t = profile::begin();
        let sp = parallax_trace::span!("stage.aod_select");
        let aod_selection = select_aod_qubits(circuit, &mut disc, &self.config);
        drop(sp);
        profile::record(profile::Stage::AodSelect, t, 0);
        let home_positions: Vec<Point> =
            (0..circuit.num_qubits() as u32).map(|q| disc.array.position(q)).collect();
        let t = profile::begin();
        let sp = parallax_trace::span!("stage.schedule");
        let schedule = schedule_gates(circuit, &mut disc, &aod_selection, &self.config);
        drop(sp);
        profile::record(profile::Stage::Schedule, t, 0);
        CompilationResult {
            machine: self.machine,
            interaction_radius_um: disc.interaction_radius_um,
            schedule,
            aod_selection,
            home_positions,
            num_qubits: circuit.num_qubits(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_circuit::{CircuitBuilder, DependencyDag};

    fn ghz(n: usize) -> Circuit {
        let mut b = CircuitBuilder::new(n);
        b.h(0);
        for i in 0..(n as u32 - 1) {
            b.cx(i, i + 1);
        }
        b.build()
    }

    #[test]
    fn end_to_end_ghz() {
        let c = ghz(5);
        let compiler =
            ParallaxCompiler::new(MachineSpec::quera_aquila_256(), CompilerConfig::quick(1));
        let r = compiler.compile(&c);
        assert_eq!(r.cz_count(), c.cz_count());
        assert_eq!(r.u3_count(), c.u3_count());
        assert_eq!(r.schedule.stats.swap_count, 0);
        assert!(DependencyDag::build(&c).respects_order(&r.schedule.gate_order()));
        assert_eq!(r.home_positions.len(), 5);
    }

    #[test]
    fn footprint_is_positive_and_bounded() {
        let c = ghz(6);
        let compiler =
            ParallaxCompiler::new(MachineSpec::quera_aquila_256(), CompilerConfig::quick(2));
        let r = compiler.compile(&c);
        let (w, h) = r.footprint_sites();
        assert!(w >= 1 && h >= 1);
        assert!(w <= 16 && h <= 16, "footprint {w}x{h}");
    }

    #[test]
    fn compile_with_layout_reuses_positions() {
        let c = ghz(4);
        let cfg = CompilerConfig::quick(3);
        let layout = GraphineLayout::generate(&c, &cfg.placement);
        let compiler = ParallaxCompiler::new(MachineSpec::quera_aquila_256(), cfg);
        let a = compiler.compile_with_layout(&c, &layout);
        let b = compiler.compile_with_layout(&c, &layout);
        assert_eq!(a.home_positions, b.home_positions);
        assert_eq!(a.schedule.gate_order(), b.schedule.gate_order());
    }

    #[test]
    fn trap_change_rate_is_small_for_local_circuits() {
        let c = ghz(8);
        let compiler =
            ParallaxCompiler::new(MachineSpec::quera_aquila_256(), CompilerConfig::quick(4));
        let r = compiler.compile(&c);
        // GHZ chains are nearest-neighbour after a good placement; the
        // trap-change rate should be far below 100%.
        assert!(r.trap_change_rate() < 0.5, "rate {}", r.trap_change_rate());
    }

    #[test]
    fn shared_handle_compiles_from_many_threads() {
        let compiler =
            ParallaxCompiler::shared(MachineSpec::quera_aquila_256(), CompilerConfig::quick(6));
        assert_ne!(compiler.fingerprint(), 0);
        let c = ghz(4);
        let baseline = compiler.compile(&c);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let compiler = compiler.clone();
                let c = &c;
                let baseline = &baseline;
                s.spawn(move || {
                    let r = compiler.compile(c);
                    assert_eq!(r.home_positions, baseline.home_positions);
                    assert_eq!(r.schedule.gate_order(), baseline.schedule.gate_order());
                });
            }
        });
    }

    #[test]
    fn fingerprint_separates_machine_and_config() {
        let quick = CompilerConfig::quick(1);
        let a = ParallaxCompiler::new(MachineSpec::quera_aquila_256(), quick.clone());
        let b = ParallaxCompiler::new(MachineSpec::atom_1225(), quick.clone());
        let c = ParallaxCompiler::new(MachineSpec::quera_aquila_256(), CompilerConfig::quick(2));
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(
            a.fingerprint(),
            ParallaxCompiler::new(MachineSpec::quera_aquila_256(), quick).fingerprint()
        );
    }

    #[test]
    fn works_on_large_machine() {
        let c = ghz(10);
        let compiler = ParallaxCompiler::new(MachineSpec::atom_1225(), CompilerConfig::quick(5));
        let r = compiler.compile(&c);
        assert_eq!(r.cz_count(), c.cz_count());
        assert_eq!(r.machine.num_sites(), 1225);
    }
}
