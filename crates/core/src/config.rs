//! Compiler configuration.

use parallax_graphine::PlacementConfig;
use parallax_hardware::StableHasher;

/// How many AOD move batches the scheduler may commit per layer.
///
/// The paper's Algorithm 1 plans exactly one move per layer
/// ([`SchedulingMode::Single`], the default — every paper preset and
/// experiment table compiles through this path, byte-identical to
/// pre-ablation builds). [`SchedulingMode::MultiMover`] is the ROADMAP
/// item 3 "beyond the paper" arm: several moves share a layer when their
/// interference corridors are pairwise disjoint, with ASAP/ALAP slack
/// ordering the candidates. See `docs/SCHEDULING.md` for the contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulingMode {
    /// One AOD move batch per layer (paper Algorithm 1, lines 16-17).
    #[default]
    Single,
    /// Batch pairwise-disjoint move plans into one layer, zero-slack
    /// gates first.
    MultiMover,
}

/// Tuning knobs for the Parallax compiler. Defaults follow the paper.
#[derive(Debug, Clone)]
pub struct CompilerConfig {
    /// Seed for every stochastic component (placement annealing, layer
    /// shuffles). Equal seeds give identical compilations.
    pub seed: u64,
    /// GRAPHINE placement settings (step 1).
    pub placement: PlacementConfig,
    /// Return AOD atoms to their home positions after each layer
    /// (Section II-D; ablated in Fig. 12).
    pub return_home: bool,
    /// Hard cap on recursive move iterations before a move is declared
    /// failed and resolved with a trap change (the paper uses 80).
    pub max_move_recursion: usize,
    /// Weight of the out-of-range-interaction criterion in AOD qubit
    /// selection (paper: 0.99).
    pub oor_weight: f64,
    /// Weight of the blockade-serialization criterion (paper: 0.01).
    pub blockade_weight: f64,
    /// Movement batching per layer (paper default: one move per layer).
    pub scheduling: SchedulingMode,
}

impl Default for CompilerConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            placement: PlacementConfig::default(),
            return_home: true,
            max_move_recursion: 80,
            oor_weight: 0.99,
            blockade_weight: 0.01,
            scheduling: SchedulingMode::default(),
        }
    }
}

impl CompilerConfig {
    /// Cheap preset for unit tests: fast placement annealing.
    pub fn quick(seed: u64) -> Self {
        Self { seed, placement: PlacementConfig::quick(seed), ..Default::default() }
    }

    /// Disable the home-return behaviour (Fig. 12 ablation arm).
    pub fn without_home_return(mut self) -> Self {
        self.return_home = false;
        self
    }

    /// Enable the multi-mover ablation path (ROADMAP item 3).
    pub fn with_multi_mover(mut self) -> Self {
        self.scheduling = SchedulingMode::MultiMover;
        self
    }

    /// Stable structural fingerprint over every tuning knob (floats by bit
    /// pattern), for content-addressed result caching: equal fingerprints
    /// and equal inputs imply bit-identical compilations. Stable across
    /// processes and platforms, unlike `DefaultHasher`. Placement knobs
    /// enter through [`PlacementConfig::fingerprint`], which covers every
    /// result-steering field (including the restart count) and excludes
    /// the worker count.
    pub fn fingerprint(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_u64(self.seed)
            .write_u64(self.placement.fingerprint())
            .write_bool(self.return_home)
            .write_usize(self.max_move_recursion)
            .write_f64(self.oor_weight)
            .write_f64(self.blockade_weight)
            .write_bool(self.scheduling == SchedulingMode::MultiMover);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CompilerConfig::default();
        assert!(c.return_home);
        assert_eq!(c.max_move_recursion, 80);
        assert_eq!(c.oor_weight, 0.99);
        assert_eq!(c.blockade_weight, 0.01);
    }

    #[test]
    fn ablation_toggle() {
        let c = CompilerConfig::default().without_home_return();
        assert!(!c.return_home);
        assert_eq!(c.scheduling, SchedulingMode::Single);
        let c = CompilerConfig::default().with_multi_mover();
        assert_eq!(c.scheduling, SchedulingMode::MultiMover);
    }

    #[test]
    fn fingerprint_tracks_every_knob() {
        let base = CompilerConfig::quick(1).fingerprint();
        assert_eq!(base, CompilerConfig::quick(1).fingerprint());
        assert_ne!(base, CompilerConfig::quick(2).fingerprint());
        assert_ne!(base, CompilerConfig::default().fingerprint());
        assert_ne!(base, CompilerConfig::quick(1).without_home_return().fingerprint());
        let mut c = CompilerConfig::quick(1);
        c.oor_weight = 0.5;
        assert_ne!(base, c.fingerprint());
        assert_ne!(base, CompilerConfig::quick(1).with_multi_mover().fingerprint());
    }
}
