//! Step 3: select which atoms to trap in the AOD.
//!
//! Section II-C: each atom is scored by (1) how many of its CZ interactions
//! are out of the Rydberg interaction radius at the initial layout (weight
//! 0.99), and (2) how much Rydberg-blockade serialization it would cause
//! within parallel layers (weight 0.01, a tie-breaker). The top-scoring
//! atoms (at most one per AOD row/column pair) move to the AOD as close to
//! their initial positions as possible; shared row/column coordinates are
//! resolved by recursively nudging rows up and columns right.

use crate::config::CompilerConfig;
use crate::discretize::DiscretizedLayout;
use parallax_circuit::{layers, Circuit, Gate};
use parallax_hardware::{violates_separation, within_blockade, Point, Trap};

/// Outcome of AOD qubit selection.
#[derive(Debug, Clone)]
pub struct AodSelection {
    /// Qubits now trapped in the AOD, in row order.
    pub selected: Vec<u32>,
    /// Candidates that could not be transferred (kept in the SLM).
    pub dropped: Vec<u32>,
    /// Per-qubit selection score (diagnostic).
    pub scores: Vec<f64>,
}

/// Count, per qubit, CZ interactions whose partners are out of range `r`.
pub fn out_of_range_counts(circuit: &Circuit, layout: &DiscretizedLayout) -> Vec<f64> {
    let mut oor = vec![0.0; circuit.num_qubits()];
    let r = layout.interaction_radius_um;
    for ((a, b), w) in circuit.cz_pair_counts() {
        if layout.array.distance(a, b) > r + 1e-9 {
            oor[a as usize] += w as f64;
            oor[b as usize] += w as f64;
        }
    }
    oor
}

/// Count, per qubit, how often its gate blockades another CZ gate scheduled
/// in the same ASAP layer (at initial positions).
pub fn blockade_interference_counts(circuit: &Circuit, layout: &DiscretizedLayout) -> Vec<f64> {
    let mut counts = vec![0.0; circuit.num_qubits()];
    let r = layout.interaction_radius_um;
    let factor = layout.array.spec().blockade_factor;
    let gates = circuit.gates();
    for layer in layers(circuit) {
        let czs: Vec<(u32, u32)> = layer
            .iter()
            .filter_map(|&i| match gates[i] {
                Gate::Cz { a, b } => Some((a, b)),
                _ => None,
            })
            .collect();
        for i in 0..czs.len() {
            for j in (i + 1)..czs.len() {
                let (a1, b1) = czs[i];
                let (a2, b2) = czs[j];
                let conflict = [a1, b1].iter().any(|&p| {
                    [a2, b2].iter().any(|&q| {
                        within_blockade(
                            &layout.array.position(p),
                            &layout.array.position(q),
                            r,
                            factor,
                        )
                    })
                });
                if conflict {
                    for q in [a1, b1, a2, b2] {
                        counts[q as usize] += 1.0;
                    }
                }
            }
        }
    }
    counts
}

/// Compute selection scores: `0.99 * norm(out-of-range) + 0.01 * norm(blockade)`.
pub fn selection_scores(
    circuit: &Circuit,
    layout: &DiscretizedLayout,
    config: &CompilerConfig,
) -> Vec<f64> {
    let oor = out_of_range_counts(circuit, layout);
    let blk = blockade_interference_counts(circuit, layout);
    let max_oor = oor.iter().cloned().fold(0.0f64, f64::max).max(1.0);
    let max_blk = blk.iter().cloned().fold(0.0f64, f64::max).max(1.0);
    oor.iter()
        .zip(&blk)
        .map(|(&o, &b)| config.oor_weight * o / max_oor + config.blockade_weight * b / max_blk)
        .collect()
}

/// Select and transfer AOD qubits, mutating `layout.array`.
pub fn select_aod_qubits(
    circuit: &Circuit,
    layout: &mut DiscretizedLayout,
    config: &CompilerConfig,
) -> AodSelection {
    let scores = selection_scores(circuit, layout, config);
    let aod_dim = layout.array.spec().aod_dim;
    let candidates = greedy_cover_selection(circuit, layout, &scores, aod_dim);

    let mut dropped = Vec::new();
    let mut active = candidates.clone();

    // Iterate: compute nudged coordinates for the active set; drop atoms
    // whose coordinates cannot be made valid; retry with the smaller set.
    let coords = loop {
        match resolve_coordinates(&active, layout) {
            Ok(coords) => break coords,
            Err(bad) => {
                active.retain(|&q| q != bad);
                dropped.push(bad);
            }
        }
    };

    // Transfer in row order. Row/col indices are the ranks in the nudged
    // coordinate orders, so ordering always holds at transfer time.
    let mut selected = Vec::with_capacity(active.len());
    for (q, row, col, x, y) in coords {
        match layout.array.transfer_to_aod_at(q, row, col, x, y) {
            Ok(()) => selected.push(q),
            Err(_) => dropped.push(q),
        }
    }
    debug_assert!(layout.array.validate().is_empty());
    AodSelection { selected, dropped, scores }
}

/// Greedy out-of-range-pair coverage: repeatedly select the qubit whose
/// remaining uncovered out-of-range interaction weight is highest (blockade
/// score breaks ties per the paper's 0.99/0.01 weighting), then mark every
/// pair it participates in as covered — one mobile endpoint per pair is all
/// Algorithm 1 needs. This keeps the AOD population small, which is exactly
/// the paper's argument for not placing every atom in the AOD
/// (Section II-B).
fn greedy_cover_selection(
    circuit: &Circuit,
    layout: &DiscretizedLayout,
    scores: &[f64],
    aod_dim: usize,
) -> Vec<u32> {
    let r = layout.interaction_radius_um;
    let mut pairs: Vec<(u32, u32, f64)> = circuit
        .cz_pair_counts()
        .into_iter()
        .filter(|&((a, b), _)| layout.array.distance(a, b) > r + 1e-9)
        .map(|((a, b), w)| (a, b, w as f64))
        .collect();
    let mut selected = Vec::new();
    while selected.len() < aod_dim && !pairs.is_empty() {
        let mut weight = vec![0.0f64; circuit.num_qubits()];
        for &(a, b, w) in &pairs {
            weight[a as usize] += w;
            weight[b as usize] += w;
        }
        let best = (0..circuit.num_qubits() as u32)
            .filter(|&q| weight[q as usize] > 0.0 && !selected.contains(&q))
            .max_by(|&a, &b| {
                weight[a as usize]
                    .partial_cmp(&weight[b as usize])
                    .unwrap()
                    .then(scores[a as usize].partial_cmp(&scores[b as usize]).unwrap())
                    .then(b.cmp(&a))
            });
        let Some(q) = best else { break };
        selected.push(q);
        pairs.retain(|&(a, b, _)| a != q && b != q);
    }
    selected
}

type ResolvedCoords = Vec<(u32, u16, u16, f64, f64)>;

/// Compute per-atom AOD coordinates: rows in y-rank order nudged upward,
/// columns in x-rank order nudged rightward, plus separation repair against
/// static SLM atoms. Returns `Err(q)` naming an atom to drop when repair
/// cannot converge within bounds.
fn resolve_coordinates(active: &[u32], layout: &DiscretizedLayout) -> Result<ResolvedCoords, u32> {
    let array = &layout.array;
    let gap = array.line_gap();
    let min_sep = array.spec().min_separation_um;
    let max_coord = array.spec().extent_um() + array.grid().pitch_um();

    // y ranks -> row indices.
    let mut by_y: Vec<u32> = active.to_vec();
    by_y.sort_by(|&a, &b| {
        let (pa, pb) = (array.position(a), array.position(b));
        pa.y.partial_cmp(&pb.y).unwrap().then(pa.x.partial_cmp(&pb.x).unwrap()).then(a.cmp(&b))
    });
    let mut ys: Vec<f64> = by_y.iter().map(|&q| array.position(q).y).collect();
    cascade(&mut ys, gap);

    // x ranks -> column indices.
    let mut by_x: Vec<u32> = active.to_vec();
    by_x.sort_by(|&a, &b| {
        let (pa, pb) = (array.position(a), array.position(b));
        pa.x.partial_cmp(&pb.x).unwrap().then(pa.y.partial_cmp(&pb.y).unwrap()).then(a.cmp(&b))
    });
    let mut xs: Vec<f64> = by_x.iter().map(|&q| array.position(q).x).collect();
    cascade(&mut xs, gap);

    let row_of = |q: u32| by_y.iter().position(|&v| v == q).unwrap();
    let col_of = |q: u32| by_x.iter().position(|&v| v == q).unwrap();

    // Static atoms the selection must avoid: everything not being moved.
    let statics: Vec<Point> = (0..array.num_qubits() as u32)
        .filter(|q| !active.contains(q))
        .filter(|&q| matches!(array.trap(q), Some(Trap::Slm(_))))
        .map(|q| array.position(q))
        .collect();

    // Separation repair: push the offending atom's column right (the
    // "chosen direction" rule) and re-cascade; bounded retries.
    for _ in 0..32 {
        let mut violator: Option<u32> = None;
        'scan: for &q in active {
            let p = Point::new(xs[col_of(q)], ys[row_of(q)]);
            for s in &statics {
                if violates_separation(&p, s, min_sep) {
                    violator = Some(q);
                    break 'scan;
                }
            }
        }
        let Some(q) = violator else {
            // All clear; also verify bounds.
            for &q in active {
                if xs[col_of(q)] > max_coord || ys[row_of(q)] > max_coord {
                    return Err(q);
                }
            }
            let coords = active
                .iter()
                .map(|&q| (q, row_of(q) as u16, col_of(q) as u16, xs[col_of(q)], ys[row_of(q)]))
                .collect();
            return Ok(coords);
        };
        let c = col_of(q);
        xs[c] += gap * 0.5;
        cascade(&mut xs, gap);
        if xs[c] > max_coord {
            return Err(q);
        }
    }
    // Did not converge: drop the first active atom that still violates.
    for &q in active {
        let p = Point::new(xs[col_of(q)], ys[row_of(q)]);
        if statics.iter().any(|s| violates_separation(&p, s, min_sep)) {
            return Err(q);
        }
    }
    Err(active[0])
}

/// Forward cascade: make `coords` strictly increasing with at least `gap`
/// between consecutive entries, only ever pushing values up (the paper's
/// "always move the rows up" recursion).
fn cascade(coords: &mut [f64], gap: f64) {
    for i in 1..coords.len() {
        if coords[i] < coords[i - 1] + gap {
            coords[i] = coords[i - 1] + gap;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discretize::discretize;
    use parallax_circuit::CircuitBuilder;
    use parallax_graphine::{GraphineLayout, PlacementConfig};
    use parallax_hardware::MachineSpec;

    fn setup(n: usize, build: impl Fn(&mut CircuitBuilder)) -> (Circuit, DiscretizedLayout) {
        let mut b = CircuitBuilder::new(n);
        build(&mut b);
        let c = b.build();
        let layout = GraphineLayout::generate(&c, &PlacementConfig::quick(1));
        let d = discretize(&c, &layout, MachineSpec::quera_aquila_256());
        (c, d)
    }

    #[test]
    fn cascade_enforces_gaps() {
        let mut v = vec![1.0, 1.0, 2.0, 10.0];
        cascade(&mut v, 3.0);
        assert_eq!(v, vec![1.0, 4.0, 7.0, 10.0]);
    }

    #[test]
    fn no_out_of_range_interactions_means_no_selection() {
        // A 2-qubit circuit: the two atoms are within radius by construction.
        let (c, mut d) = setup(2, |b| {
            b.cx(0, 1);
        });
        // Force a generous radius so nothing is out of range.
        d.interaction_radius_um = 1e6;
        let sel = select_aod_qubits(&c, &mut d, &CompilerConfig::quick(0));
        assert!(sel.selected.is_empty());
        assert!(sel.dropped.is_empty());
    }

    #[test]
    fn out_of_range_counts_use_distance() {
        let (c, mut d) = setup(4, |b| {
            b.cx(0, 1).cx(2, 3).cx(0, 3);
        });
        d.interaction_radius_um = 0.0; // everything out of range
        let oor = out_of_range_counts(&c, &d);
        assert_eq!(oor.iter().sum::<f64>() as usize, 6); // 3 pairs x 2 endpoints
        assert!(oor[0] >= 2.0);
    }

    #[test]
    fn selection_respects_aod_capacity() {
        // Star circuit: centre interacts with many leaves spread out.
        let (c, mut d) = setup(12, |b| {
            for i in 1..12u32 {
                b.cx(0, i);
            }
        });
        d.interaction_radius_um = d.array.grid().pitch_um(); // tight radius
        let spec_cap = d.array.spec().aod_dim;
        let sel = select_aod_qubits(&c, &mut d, &CompilerConfig::quick(0));
        assert!(sel.selected.len() <= spec_cap);
        assert!(!sel.selected.is_empty());
        assert!(d.array.validate().is_empty());
    }

    #[test]
    fn selected_atoms_are_in_aod_and_near_home() {
        let (c, mut d) = setup(8, |b| {
            b.cx(0, 7).cx(1, 6).cx(2, 5);
        });
        d.interaction_radius_um = d.array.grid().pitch_um();
        let homes: Vec<Point> = (0..8u32).map(|q| d.array.position(q)).collect();
        let sel = select_aod_qubits(&c, &mut d, &CompilerConfig::quick(0));
        for &q in &sel.selected {
            assert!(d.array.is_aod(q));
            // "as close to their initial locations as possible"
            let drift = d.array.position(q).distance(&homes[q as usize]);
            assert!(drift < 4.0 * d.array.grid().pitch_um(), "drift {drift} µm for q{q}");
        }
    }

    #[test]
    fn scores_weight_oor_over_blockade() {
        let (c, mut d) = setup(6, |b| {
            b.cx(0, 5).cx(1, 2).cx(3, 4);
        });
        d.interaction_radius_um = 0.0;
        let cfg = CompilerConfig::quick(0);
        let scores = selection_scores(&c, &d, &cfg);
        // Every involved qubit has oor > 0, so every score is close to the
        // 0.99-weighted term.
        for &s in &scores {
            assert!(s <= 1.0 + 1e-9);
        }
        let max = scores.iter().cloned().fold(0.0f64, f64::max);
        assert!(max >= 0.99 - 1e-9);
    }

    #[test]
    fn blockade_counts_flag_colocated_parallel_gates() {
        let (c, d) = setup(4, |b| {
            // Two CZs in the same ASAP layer.
            b.cz(0, 1).cz(2, 3);
        });
        // Any realistic radius: atoms are packed closely, so the pairs
        // blockade each other at 2.5x the radius.
        let blk = blockade_interference_counts(&c, &d);
        assert!(blk.iter().all(|&b| b >= 1.0), "{blk:?}");
    }

    #[test]
    fn selection_is_deterministic() {
        let build = |b: &mut CircuitBuilder| {
            b.cx(0, 7).cx(1, 6).cx(2, 5).cx(3, 4).cx(0, 4);
        };
        let (c1, mut d1) = setup(8, build);
        let (c2, mut d2) = setup(8, build);
        d1.interaction_radius_um = d1.array.grid().pitch_um();
        d2.interaction_radius_um = d2.array.grid().pitch_um();
        let s1 = select_aod_qubits(&c1, &mut d1, &CompilerConfig::quick(0));
        let s2 = select_aod_qubits(&c2, &mut d2, &CompilerConfig::quick(0));
        assert_eq!(s1.selected, s2.selected);
    }
}
