//! Parallel batch compilation.
//!
//! The paper highlights Parallax's "open-source and parallel
//! implementation". Compilations of independent circuits (or of ablation
//! configurations of the same circuit) are embarrassingly parallel and
//! fully deterministic per seed, so we fan them out over a shared atomic
//! work queue; results return in input order regardless of thread count.
//!
//! A panicking job is isolated to its slot: the worker catches the unwind,
//! reports a per-job [`BatchJobError`], and moves on to the next job, so
//! one poisoned circuit can neither hang the batch nor abort the process
//! ([`try_compile_batch`]). The infallible [`compile_batch`] wrapper keeps
//! the original signature and re-raises the first job error as a panic
//! that names the failing job.
//!
//! Dispatch runs through the same bounded-priority [`JobQueue`] the
//! compile service schedules with — one scheduler type for both entry
//! points. A batch enqueues every index at one priority level, closes the
//! queue, and lets the workers drain it; the queue's admission-sequence
//! tiebreak makes the pop order FIFO, so the fan-out is deterministic.

use crate::compiler::{CompilationResult, ParallaxCompiler};
use crate::config::CompilerConfig;
use crate::queue::JobQueue;
use parallax_circuit::Circuit;
use parallax_hardware::MachineSpec;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;

/// One job of a batch failed (its compile panicked).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchJobError {
    /// Index of the failing job in the input slice.
    pub index: usize,
    /// The panic message, if it carried one.
    pub message: String,
}

impl fmt::Display for BatchJobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "batch job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for BatchJobError {}

/// Render a `catch_unwind` payload as text (panics carry `&str` or
/// `String` in practice). Shared with the compile service's worker pool,
/// which isolates panics the same way.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Priority every batch job is admitted at. Batches have no inter-job
/// ordering preference, so a single level turns the queue's
/// priority-then-sequence order into plain FIFO.
const BATCH_PRIORITY: u8 = 5;

/// Run `jobs` indices through `run` on up to `threads` workers, catching
/// per-job panics. Generic over the job body so the panic-isolation
/// machinery is testable without a panicking compiler.
///
/// Indices are dispatched through the shared bounded-priority
/// [`JobQueue`]: all enqueued up front at [`BATCH_PRIORITY`], the queue
/// closed, and the workers pop until drained — the same
/// admit-close-drain lifecycle the compile service runs, minus the
/// network.
fn run_batch<T, F>(num_jobs: usize, threads: usize, run: F) -> Vec<Result<T, BatchJobError>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let guarded = |i: usize| {
        catch_unwind(AssertUnwindSafe(|| run(i)))
            .map_err(|payload| BatchJobError { index: i, message: panic_message(payload) })
    };

    if threads <= 1 || num_jobs <= 1 {
        return (0..num_jobs).map(guarded).collect();
    }

    let queue = JobQueue::new(num_jobs);
    for i in 0..num_jobs {
        queue.try_push(i, BATCH_PRIORITY).unwrap_or_else(|_| {
            // Unreachable: capacity == num_jobs and the queue is open.
            panic!("batch queue refused job {i}")
        });
    }
    queue.close();

    let mut slots: Vec<Option<Result<T, BatchJobError>>> = (0..num_jobs).map(|_| None).collect();
    let (result_tx, result_rx) = mpsc::channel::<(usize, Result<T, BatchJobError>)>();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let result_tx = result_tx.clone();
            let queue = &queue;
            let guarded = &guarded;
            scope.spawn(move || {
                while let Some(i) = queue.pop() {
                    if result_tx.send((i, guarded(i))).is_err() {
                        return;
                    }
                }
            });
        }
        drop(result_tx);
        while let Ok((i, r)) = result_rx.recv() {
            slots[i] = Some(r);
        }
    });

    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            s.unwrap_or_else(|| {
                // Unreachable: every claimed index sends exactly one result
                // (panics are converted to Err before the send).
                Err(BatchJobError { index: i, message: "job result never arrived".into() })
            })
        })
        .collect()
}

fn effective_threads(requested: usize, num_jobs: usize) -> usize {
    let t = if requested == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        requested
    };
    t.min(num_jobs.max(1))
}

/// Compile every circuit in `jobs` on `machine` with `config`, using up to
/// `threads` worker threads (0 = number of available CPUs). The output
/// vector is index-aligned with `jobs`; a job whose compilation panics
/// yields `Err` in its slot while every other job still completes.
pub fn try_compile_batch(
    jobs: &[Circuit],
    machine: MachineSpec,
    config: &CompilerConfig,
    threads: usize,
) -> Vec<Result<CompilationResult, BatchJobError>> {
    let compiler = ParallaxCompiler::shared(machine, config.clone());
    run_batch(jobs.len(), effective_threads(threads, jobs.len()), move |i| {
        compiler.compile(&jobs[i])
    })
}

/// Infallible façade over [`try_compile_batch`]: identical scheduling, but
/// a failed job re-raises its [`BatchJobError`] as a panic naming the job
/// index (after all other jobs have finished).
///
/// # Panics
/// Panics if any job's compilation panicked.
pub fn compile_batch(
    jobs: &[Circuit],
    machine: MachineSpec,
    config: &CompilerConfig,
    threads: usize,
) -> Vec<CompilationResult> {
    try_compile_batch(jobs, machine, config, threads)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_circuit::CircuitBuilder;

    fn chain(n: usize) -> Circuit {
        let mut b = CircuitBuilder::new(n);
        for i in 0..(n as u32 - 1) {
            b.cx(i, i + 1);
        }
        b.build()
    }

    #[test]
    fn batch_matches_sequential() {
        let jobs = vec![chain(3), chain(4), chain(5), chain(6)];
        let cfg = CompilerConfig::quick(1);
        let spec = MachineSpec::quera_aquila_256();
        let seq = compile_batch(&jobs, spec, &cfg, 1);
        let par = compile_batch(&jobs, spec, &cfg, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.schedule.gate_order(), b.schedule.gate_order());
            assert_eq!(a.home_positions, b.home_positions);
        }
    }

    #[test]
    fn results_are_input_ordered() {
        let jobs = vec![chain(6), chain(2), chain(4)];
        let out =
            compile_batch(&jobs, MachineSpec::quera_aquila_256(), &CompilerConfig::quick(2), 3);
        assert_eq!(out[0].num_qubits, 6);
        assert_eq!(out[1].num_qubits, 2);
        assert_eq!(out[2].num_qubits, 4);
    }

    #[test]
    fn empty_batch() {
        let out = compile_batch(&[], MachineSpec::quera_aquila_256(), &CompilerConfig::quick(0), 4);
        assert!(out.is_empty());
    }

    #[test]
    fn a_panicking_job_does_not_poison_the_batch() {
        // Jobs 1 and 3 panic; the rest must still complete, index-aligned,
        // at every thread count (including the sequential path).
        for threads in [1usize, 2, 4] {
            let out = run_batch(5, threads, |i| {
                if i % 2 == 1 {
                    panic!("boom on job {i}");
                }
                i * 10
            });
            assert_eq!(out.len(), 5);
            for (i, r) in out.iter().enumerate() {
                if i % 2 == 1 {
                    let e = r.as_ref().unwrap_err();
                    assert_eq!(e.index, i);
                    assert_eq!(e.message, format!("boom on job {i}"));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 10, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn try_compile_batch_succeeds_on_well_formed_jobs() {
        let jobs = vec![chain(3), chain(4)];
        let out =
            try_compile_batch(&jobs, MachineSpec::quera_aquila_256(), &CompilerConfig::quick(3), 2);
        assert!(out.iter().all(Result::is_ok));
    }

    #[test]
    #[should_panic(expected = "batch job 2 panicked")]
    fn compile_batch_names_the_failing_job() {
        let results = run_batch(4, 2, |i| {
            if i == 2 {
                panic!("injected failure");
            }
            i
        });
        for r in results {
            let _ = r.unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn batch_job_error_formats_with_index_and_message() {
        let e = BatchJobError { index: 7, message: "overflow".into() };
        assert_eq!(e.to_string(), "batch job 7 panicked: overflow");
    }
}
