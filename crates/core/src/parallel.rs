//! Parallel batch compilation.
//!
//! The paper highlights Parallax's "open-source and parallel
//! implementation". Compilations of independent circuits (or of ablation
//! configurations of the same circuit) are embarrassingly parallel and
//! fully deterministic per seed, so we fan them out over a shared atomic
//! work queue; results return in input order regardless of thread count.

use crate::compiler::{CompilationResult, ParallaxCompiler};
use crate::config::CompilerConfig;
use parallax_circuit::Circuit;
use parallax_hardware::MachineSpec;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Compile every circuit in `jobs` on `machine` with `config`, using up to
/// `threads` worker threads (0 = number of available CPUs). The output
/// vector is index-aligned with `jobs`.
pub fn compile_batch(
    jobs: &[Circuit],
    machine: MachineSpec,
    config: &CompilerConfig,
    threads: usize,
) -> Vec<CompilationResult> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
    .min(jobs.len().max(1));

    if threads <= 1 || jobs.len() <= 1 {
        let compiler = ParallaxCompiler::new(machine, config.clone());
        return jobs.iter().map(|c| compiler.compile(c)).collect();
    }

    let next_job = AtomicUsize::new(0);
    let mut slots: Vec<Option<CompilationResult>> = (0..jobs.len()).map(|_| None).collect();
    let (result_tx, result_rx) = mpsc::channel::<(usize, CompilationResult)>();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let result_tx = result_tx.clone();
            let config = config.clone();
            let next_job = &next_job;
            scope.spawn(move || {
                let compiler = ParallaxCompiler::new(machine, config);
                loop {
                    let i = next_job.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        return;
                    }
                    let result = compiler.compile(&jobs[i]);
                    if result_tx.send((i, result)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(result_tx);
        while let Ok((i, r)) = result_rx.recv() {
            slots[i] = Some(r);
        }
    });

    slots.into_iter().map(|s| s.expect("every job completes")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_circuit::CircuitBuilder;

    fn chain(n: usize) -> Circuit {
        let mut b = CircuitBuilder::new(n);
        for i in 0..(n as u32 - 1) {
            b.cx(i, i + 1);
        }
        b.build()
    }

    #[test]
    fn batch_matches_sequential() {
        let jobs = vec![chain(3), chain(4), chain(5), chain(6)];
        let cfg = CompilerConfig::quick(1);
        let spec = MachineSpec::quera_aquila_256();
        let seq = compile_batch(&jobs, spec, &cfg, 1);
        let par = compile_batch(&jobs, spec, &cfg, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.schedule.gate_order(), b.schedule.gate_order());
            assert_eq!(a.home_positions, b.home_positions);
        }
    }

    #[test]
    fn results_are_input_ordered() {
        let jobs = vec![chain(6), chain(2), chain(4)];
        let out =
            compile_batch(&jobs, MachineSpec::quera_aquila_256(), &CompilerConfig::quick(2), 3);
        assert_eq!(out[0].num_qubits, 6);
        assert_eq!(out[1].num_qubits, 2);
        assert_eq!(out[2].num_qubits, 4);
    }

    #[test]
    fn empty_batch() {
        let out = compile_batch(&[], MachineSpec::quera_aquila_256(), &CompilerConfig::quick(0), 4);
        assert!(out.is_empty());
    }
}
