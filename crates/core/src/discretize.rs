//! Step 2: discretize the annealed layout onto the machine's site grid.
//!
//! Section II-A: the `[0,1]^2` positions from GRAPHINE are snapped to grid
//! sites whose pitch is twice the minimum separation plus padding. When the
//! ideal site is taken (or the machine is small relative to the circuit),
//! the atom goes to the nearest free site — the paper notes this is exactly
//! what degrades TFIM-128 on the 256-site machine.

use parallax_circuit::Circuit;
use parallax_graphine::{connecting_radius, GraphineLayout, InteractionGraph};
use parallax_hardware::{AtomArray, MachineSpec};

/// Result of discretization: a populated atom array (all atoms in the SLM)
/// plus the interaction radius in µm.
#[derive(Debug, Clone)]
pub struct DiscretizedLayout {
    /// Atom array with every circuit qubit placed in an SLM site.
    pub array: AtomArray,
    /// Rydberg interaction radius, µm, recomputed over the discretized
    /// positions so the placed atoms always form a connected graph.
    pub interaction_radius_um: f64,
}

/// Snap the annealed layout onto `spec`'s grid.
///
/// Qubits are placed in descending order of weighted interaction degree so
/// the busiest atoms win contended sites (their placement matters most for
/// avoiding movement).
pub fn discretize(
    circuit: &Circuit,
    layout: &GraphineLayout,
    spec: MachineSpec,
) -> DiscretizedLayout {
    let n = circuit.num_qubits();
    assert_eq!(layout.positions.len(), n, "layout/circuit qubit-count mismatch");
    let mut array = AtomArray::new(spec, n);

    let graph = InteractionGraph::from_circuit(circuit);
    let adj = graph.csr();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        adj.degree(b as usize).partial_cmp(&adj.degree(a as usize)).unwrap().then(a.cmp(&b))
    });

    // Compact the annealed layout onto a sub-grid sized to the circuit:
    // a q-qubit circuit needs ~2*sqrt(q) sites per side, leaving the rest
    // of the machine free for replicated logical shots (Section II-E). The
    // unit-square layout is normalized to its bounding box first so the
    // relative structure survives the rescale.
    let target_dim = ((2.0 * (n as f64).sqrt()).ceil() as usize + 1).min(spec.grid_dim).max(2);
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &layout.positions {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    let span_x = (max_x - min_x).max(1e-9);
    let span_y = (max_y - min_y).max(1e-9);
    let scale = (target_dim - 1) as f64;

    for &q in &order {
        let (x, y) = layout.positions[q as usize];
        let nx = (x - min_x) / span_x;
        let ny = (y - min_y) / span_y;
        let target = ((nx * scale).round() as u16, (ny * scale).round() as u16);
        let site = array
            .grid()
            .nearest_free_site(target)
            .expect("machine has at least as many sites as qubits");
        array.place_in_slm(q, site);
    }

    let points: Vec<(f64, f64)> = (0..n as u32)
        .map(|q| {
            let p = array.position(q);
            (p.x, p.y)
        })
        .collect();
    // The scaled annealed radius is the "ideal" choice (scaled to the
    // compacted sub-grid); the discretized MST radius guarantees
    // connectivity after snapping; a one-pitch floor lets grid neighbours
    // always interact.
    let scaled = layout.interaction_radius / span_x.max(span_y) * scale * array.grid().pitch_um();
    let mst = connecting_radius(&points);
    let interaction_radius_um = scaled.max(mst).max(array.grid().pitch_um());

    DiscretizedLayout { array, interaction_radius_um }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_circuit::CircuitBuilder;
    use parallax_graphine::PlacementConfig;

    fn chain_circuit(n: usize) -> Circuit {
        let mut b = CircuitBuilder::new(n);
        for i in 0..(n as u32 - 1) {
            b.cx(i, i + 1);
        }
        b.build()
    }

    fn layout_for(c: &Circuit, seed: u64) -> GraphineLayout {
        GraphineLayout::generate(c, &PlacementConfig::quick(seed))
    }

    #[test]
    fn all_atoms_placed_without_violations() {
        let c = chain_circuit(6);
        let d = discretize(&c, &layout_for(&c, 1), MachineSpec::quera_aquila_256());
        assert_eq!(d.array.grid().occupied_count(), 6);
        assert!(d.array.validate().is_empty());
        for q in 0..6 {
            assert!(!d.array.is_aod(q));
        }
    }

    #[test]
    fn radius_keeps_discretized_atoms_connected() {
        let c = chain_circuit(8);
        let d = discretize(&c, &layout_for(&c, 2), MachineSpec::quera_aquila_256());
        let pts: Vec<(f64, f64)> = (0..8u32)
            .map(|q| {
                let p = d.array.position(q);
                (p.x, p.y)
            })
            .collect();
        assert!(parallax_graphine::is_geometrically_connected(&pts, d.interaction_radius_um));
    }

    #[test]
    fn radius_at_least_one_pitch() {
        let c = chain_circuit(3);
        let d = discretize(&c, &layout_for(&c, 3), MachineSpec::quera_aquila_256());
        assert!(d.interaction_radius_um >= d.array.grid().pitch_um());
    }

    #[test]
    fn collisions_spill_to_nearest_free_site() {
        // A layout that puts every qubit at the same normalized point.
        let c = chain_circuit(5);
        let layout = GraphineLayout {
            positions: vec![(0.5, 0.5); 5],
            interaction_radius: 0.0,
            energy: 0.0,
            anneal_evals: 0,
            anneal_allocs: 0,
        };
        let d = discretize(&c, &layout, MachineSpec::quera_aquila_256());
        assert_eq!(d.array.grid().occupied_count(), 5);
        assert!(d.array.validate().is_empty());
        // A degenerate (single-point) layout compacts to the grid origin;
        // all five spill to a tight cluster there.
        for q in 0..5u32 {
            let p = d.array.position(q);
            let centre = d.array.grid().site_position((0, 0));
            assert!(p.distance(&centre) <= 2.0 * d.array.grid().pitch_um() * 1.5);
        }
    }

    #[test]
    fn dense_circuit_fills_small_machine() {
        // 256 qubits on the 256-site machine: every site used.
        let c = chain_circuit(256);
        let layout = GraphineLayout {
            positions: (0..256).map(|i| ((i % 16) as f64 / 15.0, (i / 16) as f64 / 15.0)).collect(),
            interaction_radius: 1.0 / 15.0,
            energy: 0.0,
            anneal_evals: 0,
            anneal_allocs: 0,
        };
        let d = discretize(&c, &layout, MachineSpec::quera_aquila_256());
        assert_eq!(d.array.grid().occupied_count(), 256);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_layout_panics() {
        let c = chain_circuit(4);
        let layout = GraphineLayout {
            positions: vec![(0.1, 0.1)],
            interaction_radius: 0.0,
            energy: 0.0,
            anneal_evals: 0,
            anneal_allocs: 0,
        };
        let _ = discretize(&c, &layout, MachineSpec::quera_aquila_256());
    }
}
