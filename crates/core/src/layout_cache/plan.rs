//! The cross-compile **move-plan cache**: the sharded process-wide map
//! from ([`AtomArray::static_fingerprint`], [`AtomArray::aod_fingerprint`],
//! mover, target) to validated movement plans.
//!
//! The scheduler's movement planner is a pure function of the array state
//! and its `(mover, target, radius, recursion)` arguments, and under
//! home-return the effective AOD configuration repeats across *compiles*
//! of the same layout — exactly the repeat traffic a serving deployment
//! sees after a layout-cache hit. A hit is honoured only after an **exact**
//! state comparison ([`AtomArray::placed_state_matches`]), so a reused plan
//! is bit-identical to what a fresh cascade would produce — by planner
//! purity, not by trust in a 64-bit hash.
//!
//! The process-wide instance is split across [`PLAN_SHARDS`] independent
//! locks (the plan cache is probed once per *movement plan*, the hottest
//! probe rate of the cache layers); residual lock contention is counted
//! and exported. The shared `PARALLAX_LAYOUT_CACHE` budget governs this
//! layer too — see the parent module for the budget semantics.
//!
//! [`AtomArray::static_fingerprint`]: parallax_hardware::AtomArray::static_fingerprint
//! [`AtomArray::aod_fingerprint`]: parallax_hardware::AtomArray::aod_fingerprint
//! [`AtomArray::placed_state_matches`]: parallax_hardware::AtomArray::placed_state_matches

use super::configured_capacity;
use crate::movement::MovePlan;
use parallax_hardware::{AodMove, AtomArray, Point, Trap};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Content address of one successful movement plan: the immutable half of
/// the array state, the mobile half, and the planner's arguments. The
/// radius/recursion knobs are verified exactly on the entry rather than
/// hashed into the key — they change with the compiler config, and folding
/// them into `layout` would be redundant with that verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`AtomArray::static_fingerprint`] — machine + trap structure + SLM
    /// positions, fixed for the whole compile.
    pub layout: u64,
    /// [`AtomArray::aod_fingerprint`] — the current AOD configuration.
    pub aod_config: u64,
    /// The planned mover (AOD-trapped operand).
    pub mover: u32,
    /// The gate's stationary operand.
    pub target: u32,
}

/// Counters and gauges of the plan cache (the `STATS` sub-object).
/// The process-wide instance is sharded ([`ShardedPlanCache`]); these are
/// the counters summed across every shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache (exact state match).
    pub hits: u64,
    /// Lookups that had to run the probe cascade.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Probes that found their shard's lock held and had to block — the
    /// residual serialization the sharding did not remove. With one global
    /// mutex every concurrent probe pair collided; sharded, only probes
    /// that hash to the same of [`PLAN_SHARDS`] locks can.
    pub contended: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Maximum total weight in position-units (0 = disabled).
    pub capacity: usize,
    /// Total weight of the cached entries, position-units.
    pub weight: usize,
}

struct PlanEntry {
    /// Complete placed-atom state the plan was computed against; reuse
    /// requires an exact match, so hash collisions degrade to misses.
    snapshot: Vec<(u32, Trap, Point)>,
    /// Interaction radius the plan was computed for (bit pattern).
    r_bits: u64,
    /// Recursion budget the plan was computed under.
    max_recursion: usize,
    moves: Vec<AodMove>,
    max_distance_um: f64,
    recursion_used: usize,
    tick: u64,
    weight: usize,
}

/// Bounded LRU map from [`PlanKey`] to validated move plans. Same
/// size-aware eviction discipline as [`super::LayoutCache`]: an entry is
/// charged one unit per snapshot position plus one per stored move, so
/// plans for big arrays displace proportionally more than plans for small
/// ones.
pub struct PlanCache {
    map: HashMap<PlanKey, PlanEntry>,
    tick: u64,
    capacity: usize,
    weight: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCache {
    /// Create a cache holding at most `capacity` position-units of plans
    /// (0 disables).
    pub fn new(capacity: usize) -> Self {
        Self { map: HashMap::new(), tick: 0, capacity, weight: 0, hits: 0, misses: 0, evictions: 0 }
    }

    /// Look up `key`, honouring a hit only when the entry's recorded state
    /// and planner knobs match `array`/`r_um`/`max_recursion` exactly.
    pub fn get(
        &mut self,
        key: &PlanKey,
        array: &AtomArray,
        r_um: f64,
        max_recursion: usize,
    ) -> Option<MovePlan> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(e)
                if e.r_bits == r_um.to_bits()
                    && e.max_recursion == max_recursion
                    && array.placed_state_matches(&e.snapshot) =>
            {
                e.tick = self.tick;
                self.hits += 1;
                Some(MovePlan {
                    moves: e.moves.clone(),
                    max_distance_um: e.max_distance_um,
                    recursion_used: e.recursion_used,
                })
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) `key`, evicting stalest entries until the new
    /// entry fits. `snapshot` is the complete placed-atom state the plan
    /// was computed against ([`AtomArray::placed_snapshot`]) — built by
    /// the caller so the O(atoms) walk happens *outside* this cache's
    /// lock. Like the layout cache: disabled at capacity 0, and an entry
    /// outweighing the whole budget warns once per process and is not
    /// cached.
    ///
    /// [`AtomArray::placed_snapshot`]: parallax_hardware::AtomArray::placed_snapshot
    pub fn insert(
        &mut self,
        key: PlanKey,
        snapshot: Vec<(u32, Trap, Point)>,
        r_um: f64,
        rec: usize,
        plan: &MovePlan,
    ) {
        if self.capacity == 0 {
            return;
        }
        let weight = (snapshot.len() + plan.moves.len()).max(1);
        if weight > self.capacity {
            static OVERSIZED: std::sync::Once = std::sync::Once::new();
            let capacity = self.capacity;
            OVERSIZED.call_once(|| {
                eprintln!(
                    "warning: a {weight}-position move plan exceeds the whole plan-cache \
                     budget ({capacity} position-units) and will not be cached; \
                     PARALLAX_LAYOUT_CACHE sizes both the layout and plan caches — raise \
                     it to at least the largest circuit's qubit count"
                );
            });
            return;
        }
        self.tick += 1;
        if let Some(old) = self.map.remove(&key) {
            self.weight -= old.weight;
        }
        while self.weight + weight > self.capacity {
            self.evict_stalest();
        }
        self.weight += weight;
        self.map.insert(
            key,
            PlanEntry {
                snapshot,
                r_bits: r_um.to_bits(),
                max_recursion: rec,
                moves: plan.moves.clone(),
                max_distance_um: plan.max_distance_um,
                recursion_used: plan.recursion_used,
                tick: self.tick,
                weight,
            },
        );
    }

    /// Current counters and gauges. `contended` is owned by the sharded
    /// wrapper — a single unshared shard never contends with itself.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            contended: 0,
            len: self.map.len(),
            capacity: self.capacity,
            weight: self.weight,
        }
    }

    /// Drop the least-recently-touched entry (callers guarantee the cache
    /// is non-empty whenever they loop on this).
    fn evict_stalest(&mut self) {
        let stalest = self
            .map
            .iter()
            .min_by_key(|(_, e)| e.tick)
            .map(|(k, _)| *k)
            .expect("nonzero weight implies an entry to evict");
        self.weight -= self.map.remove(&stalest).expect("stalest key present").weight;
        self.evictions += 1;
    }

    /// Change the budget at runtime: shrinking evicts stalest-first down
    /// to the new capacity, `0` disables and clears.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        if capacity == 0 {
            self.weight = 0;
            self.map.clear();
            return;
        }
        while self.weight > capacity {
            self.evict_stalest();
        }
    }
}

/// Number of independent locks the process-wide plan cache is split
/// across. The plan cache is the hottest of the three layers — it is
/// probed once per *movement plan* rather than once per compile — so under
/// concurrent serving traffic a single mutex serializes every scheduler
/// on one cache line. Eight shards keyed by a stable fold of [`PlanKey`]
/// cut that collision probability 8x while keeping each shard a plain
/// [`PlanCache`] whose LRU/size-aware semantics are tested directly.
pub const PLAN_SHARDS: usize = 8;

/// Stable shard selector: an FNV-1a fold of the key's four words. Not
/// `std::hash::Hash` — the shard of a key must not depend on hasher
/// randomization, or the per-shard LRU contents (and therefore eviction
/// traffic) would differ run to run.
fn plan_shard_index(key: &PlanKey) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in [key.layout, key.aod_config, u64::from(key.mover), u64::from(key.target)] {
        h ^= w;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    // FNV's multiply only carries entropy upward; fold the high half back
    // down so keys differing in late-folded words spread across shards.
    ((h ^ (h >> 32)) as usize) % PLAN_SHARDS
}

/// Per-shard budget for a `total` position-unit budget: an even split,
/// rounded up so the shard sum never undercuts the configured total.
/// `0` (disabled) stays `0` for every shard.
fn plan_shard_capacity(total: usize) -> usize {
    if total == 0 {
        0
    } else {
        total.div_ceil(PLAN_SHARDS)
    }
}

/// The process-wide plan cache: [`PLAN_SHARDS`] independently locked
/// [`PlanCache`]s plus a contention counter. A probe takes exactly one
/// shard lock, chosen by [`plan_shard_index`]; the counter records how
/// often `try_lock` found that shard held (the probe then blocks as
/// before — sharding narrows the window, the counter measures what's
/// left of it).
struct ShardedPlanCache {
    shards: [Mutex<PlanCache>; PLAN_SHARDS],
    /// The configured *total* budget — what [`PlanCacheStats::capacity`]
    /// reports. Each shard holds `ceil(total / PLAN_SHARDS)`.
    capacity: AtomicUsize,
    contended: AtomicU64,
}

impl ShardedPlanCache {
    fn new(capacity: usize) -> Self {
        let per_shard = plan_shard_capacity(capacity);
        Self {
            shards: std::array::from_fn(|_| Mutex::new(PlanCache::new(per_shard))),
            capacity: AtomicUsize::new(capacity),
            contended: AtomicU64::new(0),
        }
    }

    /// Lock the shard owning `key`, counting the probe as contended when
    /// the lock was already held.
    fn shard(&self, key: &PlanKey) -> std::sync::MutexGuard<'_, PlanCache> {
        let i = plan_shard_index(key);
        match self.shards[i].try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                self.shards[i].lock().expect("plan cache shard lock")
            }
            Err(std::sync::TryLockError::Poisoned(e)) => panic!("plan cache shard lock: {e}"),
        }
    }

    /// Counters summed across every shard; `capacity` is the configured
    /// total rather than the per-shard sum (which rounds up).
    fn stats(&self) -> PlanCacheStats {
        let mut total = PlanCacheStats {
            capacity: self.capacity.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
            ..PlanCacheStats::default()
        };
        for shard in &self.shards {
            let s = shard.lock().expect("plan cache shard lock").stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.len += s.len;
            total.weight += s.weight;
        }
        total
    }

    fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity, Ordering::Relaxed);
        let per_shard = plan_shard_capacity(capacity);
        for shard in &self.shards {
            shard.lock().expect("plan cache shard lock").set_capacity(per_shard);
        }
    }
}

fn plan_global() -> &'static ShardedPlanCache {
    static CACHE: OnceLock<ShardedPlanCache> = OnceLock::new();
    CACHE.get_or_init(|| ShardedPlanCache::new(configured_capacity()))
}

/// Look up a cross-compile move plan for `(mover, target)` against the
/// array's current exact state. `None` means the caller must run the probe
/// cascade (and should [`record_plan`] a success). Only the key's shard
/// is locked, so concurrent compiles collide on a probe only when their
/// keys fold to the same shard.
pub fn lookup_plan(
    key: &PlanKey,
    array: &AtomArray,
    r_um: f64,
    max_recursion: usize,
) -> Option<MovePlan> {
    plan_global().shard(key).get(key, array, r_um, max_recursion)
}

/// Publish a freshly planned success for cross-compile reuse. The
/// verification snapshot is taken before the lock, so concurrent compiles
/// contend only on the (single-shard) map insert itself.
pub fn record_plan(key: PlanKey, array: &AtomArray, r_um: f64, rec: usize, plan: &MovePlan) {
    let snapshot = array.placed_snapshot();
    plan_global().shard(&key).insert(key, snapshot, r_um, rec, plan);
}

/// Snapshot of the process-wide plan cache counters, summed across shards.
pub fn plan_cache_stats() -> PlanCacheStats {
    plan_global().stats()
}

/// Apply the shared budget to the process-wide sharded instance (the
/// [`super::resize`] hook for this layer).
pub(super) fn set_global_capacity(capacity: usize) {
    plan_global().set_capacity(capacity);
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_hardware::MachineSpec;

    fn plan_array() -> AtomArray {
        let mut a = AtomArray::new(MachineSpec::quera_aquila_256(), 3);
        a.place_in_slm(0, (2, 2));
        a.place_in_slm(1, (10, 10));
        a.place_in_slm(2, (6, 2));
        a.transfer_to_aod(0, 0, 0).unwrap();
        a
    }

    fn plan_key(a: &AtomArray) -> PlanKey {
        PlanKey {
            layout: a.static_fingerprint(),
            aod_config: a.aod_fingerprint(),
            mover: 0,
            target: 1,
        }
    }

    fn a_plan() -> MovePlan {
        MovePlan {
            moves: vec![AodMove { q: 0, x: 35.0, y: 35.0 }],
            max_distance_um: 29.7,
            recursion_used: 2,
        }
    }

    #[test]
    fn plan_hit_requires_exact_state_and_knobs() {
        let a = plan_array();
        let key = plan_key(&a);
        let mut c = PlanCache::new(64);
        assert!(c.get(&key, &a, 7.0, 80).is_none());
        c.insert(key, a.placed_snapshot(), 7.0, 80, &a_plan());
        let hit = c.get(&key, &a, 7.0, 80).expect("exact repeat must hit");
        assert_eq!(hit.moves, a_plan().moves);
        assert_eq!(hit.max_distance_um.to_bits(), a_plan().max_distance_um.to_bits());
        assert_eq!(hit.recursion_used, 2);
        // Different planner knobs: same key, but verification fails.
        assert!(c.get(&key, &a, 7.5, 80).is_none(), "different radius must miss");
        assert!(c.get(&key, &a, 7.0, 79).is_none(), "different budget must miss");
        // A mutated array (same key supplied by a buggy/colliding caller)
        // fails the exact snapshot comparison.
        let mut moved = a.clone();
        moved.apply_aod_moves(&[AodMove { q: 0, x: 20.0, y: 20.0 }]).unwrap();
        assert!(c.get(&key, &moved, 7.0, 80).is_none(), "stale state must miss");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 4, 1));
        assert_eq!(s.weight, 3 + 1, "three placed atoms + one move");
    }

    #[test]
    fn plan_eviction_is_size_aware_and_oversized_entries_warn_off() {
        let a = plan_array();
        let base = plan_key(&a);
        // Each entry weighs 4 (3 placed atoms + 1 move): capacity 8 holds
        // exactly two.
        let mut c = PlanCache::new(8);
        for mover in 0..3u32 {
            c.insert(PlanKey { mover, ..base }, a.placed_snapshot(), 7.0, 80, &a_plan());
        }
        let s = c.stats();
        assert_eq!((s.len, s.weight, s.evictions), (2, 8, 1));
        assert!(c.get(&PlanKey { mover: 0, ..base }, &a, 7.0, 80).is_none(), "LRU evicted");
        assert!(c.get(&PlanKey { mover: 2, ..base }, &a, 7.0, 80).is_some());
        // An entry outweighing the whole budget is skipped, nothing evicted.
        let mut tiny = PlanCache::new(3);
        tiny.insert(base, a.placed_snapshot(), 7.0, 80, &a_plan());
        assert_eq!(tiny.stats().len, 0);
        assert_eq!(tiny.stats().evictions, 0);
        // Capacity 0 disables storage outright.
        let mut off = PlanCache::new(0);
        off.insert(base, a.placed_snapshot(), 7.0, 80, &a_plan());
        assert!(off.get(&base, &a, 7.0, 80).is_none());
        assert_eq!(off.stats().len, 0);
    }

    #[test]
    fn plan_set_capacity_shrinks_and_disables() {
        let a = plan_array();
        let base = plan_key(&a);
        let mut c = PlanCache::new(64);
        for mover in 0..4u32 {
            c.insert(PlanKey { mover, ..base }, a.placed_snapshot(), 7.0, 80, &a_plan());
        }
        assert_eq!(c.stats().weight, 16);
        c.set_capacity(8);
        let s = c.stats();
        assert_eq!((s.len, s.weight, s.capacity), (2, 8, 8));
        c.set_capacity(0);
        assert_eq!(c.stats().len, 0);
        assert_eq!(c.stats().weight, 0);
    }

    #[test]
    fn sharded_plan_cache_routes_sums_and_resizes() {
        let a = plan_array();
        let base = plan_key(&a);
        let c = ShardedPlanCache::new(PLAN_SHARDS * 8);
        assert_eq!(c.stats().capacity, PLAN_SHARDS * 8, "reports the configured total");
        // Shard choice is a pure function of the key, so a get after an
        // insert lands on the same shard regardless of hasher state.
        let mut hit_shards = std::collections::BTreeSet::new();
        for mover in 0..32u32 {
            let key = PlanKey { mover, ..base };
            hit_shards.insert(plan_shard_index(&key));
            c.shard(&key).insert(key, a.placed_snapshot(), 7.0, 80, &a_plan());
            assert!(c.shard(&key).get(&key, &a, 7.0, 80).is_some(), "mover {mover}");
        }
        assert!(hit_shards.len() > 1, "32 keys must spread over shards, got {hit_shards:?}");
        let s = c.stats();
        assert_eq!(s.hits, 32);
        assert_eq!(s.misses, 0);
        assert!(s.len <= 32, "per-shard LRU may evict under the split budget");
        assert_eq!(s.contended, 0, "single-threaded probes never contend");
        // Resize to zero disables and clears every shard.
        c.set_capacity(0);
        let s = c.stats();
        assert_eq!((s.len, s.weight, s.capacity), (0, 0, 0));
    }

    #[test]
    fn sharded_plan_cache_counts_lock_contention() {
        let a = plan_array();
        let key = plan_key(&a);
        let c = ShardedPlanCache::new(64);
        std::thread::scope(|s| {
            let held = c.shards[plan_shard_index(&key)].lock().unwrap();
            s.spawn(|| {
                // Blocks until the main thread releases the shard; the
                // try_lock miss is what the counter records.
                let _ = c.shard(&key).get(&key, &a, 7.0, 80);
            });
            while c.contended.load(Ordering::Relaxed) == 0 {
                std::thread::yield_now();
            }
            drop(held);
        });
        let s = c.stats();
        assert_eq!(s.contended, 1);
        assert_eq!(s.misses, 1, "the blocked probe still completes");
    }

    #[test]
    fn plan_shard_capacity_split_rounds_up_and_zero_disables() {
        assert_eq!(plan_shard_capacity(0), 0);
        assert_eq!(plan_shard_capacity(1), 1);
        assert_eq!(plan_shard_capacity(PLAN_SHARDS), 1);
        assert_eq!(plan_shard_capacity(PLAN_SHARDS + 1), 2);
        assert_eq!(plan_shard_capacity(8192), 8192 / PLAN_SHARDS);
    }
}
