//! The **disk tier**: a content-addressed, restart-surviving store for
//! canonical payload bytes, keyed by the same stable 128-bit identity the
//! in-memory caches use (circuit hash, machine+config fingerprint).
//!
//! Because every compile is deterministic — byte-identical output for the
//! same key, the contract proven by the umbrella differential suites — a
//! payload written by any process at any time is a valid answer for that
//! key forever (within a format version). That makes the on-disk format
//! trivial: one file per key, named by the key, holding the payload
//! verbatim behind a small self-checking header.
//!
//! # File format (version [`DISK_FORMAT_VERSION`])
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"PLXCACHE"
//! 8       4     format version, u32 LE
//! 12      8     payload length in bytes, u64 LE
//! 20      8     FNV-1a 64 checksum of the payload, u64 LE
//! 28      n     payload bytes, verbatim
//! ```
//!
//! Files are named `{key_a:016x}-{key_b:016x}.plx` in a flat directory.
//!
//! # Durability and corruption discipline
//!
//! Writes go to a unique temporary file in the same directory, are
//! `fsync`'d, and then atomically renamed over the final name — a reader
//! never observes a partially written entry under its final name, and a
//! crash mid-write leaves only a stray `.tmp` that is ignored. Reads
//! validate magic, version, length, and checksum; **any** failure —
//! missing file, truncation, garbage, version skew, bit rot — degrades to
//! a structured miss (`None`), never a panic or an error the caller must
//! handle. A file that fails validation is deleted best-effort so the
//! next write replaces it.

use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// On-disk format version. Bump on any incompatible change to the header
/// or payload encoding; readers treat version skew as a miss, so mixed
/// fleets simply recompile rather than misparse.
pub const DISK_FORMAT_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"PLXCACHE";
const HEADER_LEN: usize = 28;

/// Upper bound accepted for a single payload (guards against reading a
/// corrupt length field as a multi-gigabyte allocation).
const MAX_PAYLOAD_BYTES: u64 = 1 << 32;

fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A directory of content-addressed payload files. Cheap to clone-open
/// from multiple threads/processes: atomic rename makes concurrent writers
/// of the same key last-writer-wins with no torn state, and readers of a
/// mid-replacement key see either the old or the new complete file.
pub struct DiskStore {
    dir: PathBuf,
}

impl DiskStore {
    /// Open (creating if needed) the store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The directory this store reads and writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, a: u64, b: u64) -> PathBuf {
        self.dir.join(format!("{a:016x}-{b:016x}.plx"))
    }

    /// Read the payload stored for key `(a, b)`. Every failure mode —
    /// absent, truncated, wrong magic, version skew, length mismatch,
    /// checksum mismatch — returns `None`; invalid files are deleted
    /// best-effort so a later [`store`](Self::store) starts clean.
    pub fn load(&self, a: u64, b: u64) -> Option<Vec<u8>> {
        let path = self.entry_path(a, b);
        let mut file = fs::File::open(&path).ok()?;
        match read_validated(&mut file) {
            Some(payload) => Some(payload),
            None => {
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Durably store `payload` under key `(a, b)`: write to a unique
    /// temporary file, `fsync`, then atomically rename over the final
    /// name. On return the entry is visible to any reader of the
    /// directory and survives process death.
    pub fn store(&self, a: u64, b: u64, payload: &[u8]) -> io::Result<()> {
        static NONCE: AtomicU64 = AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            ".{a:016x}-{b:016x}.{}.{}.tmp",
            std::process::id(),
            NONCE.fetch_add(1, Ordering::Relaxed)
        ));
        let result = (|| {
            let mut file = fs::File::create(&tmp)?;
            let mut header = [0u8; HEADER_LEN];
            header[..8].copy_from_slice(MAGIC);
            header[8..12].copy_from_slice(&DISK_FORMAT_VERSION.to_le_bytes());
            header[12..20].copy_from_slice(&(payload.len() as u64).to_le_bytes());
            header[20..28].copy_from_slice(&fnv1a_64(payload).to_le_bytes());
            file.write_all(&header)?;
            file.write_all(payload)?;
            file.sync_all()?;
            fs::rename(&tmp, self.entry_path(a, b))
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        // Durability of the *name* needs the directory synced too; best
        // effort — not every filesystem supports fsync on a directory.
        if result.is_ok() {
            if let Ok(d) = fs::File::open(&self.dir) {
                let _ = d.sync_all();
            }
        }
        result
    }

    /// Number of complete entries currently on disk (`.plx` files; stray
    /// temporaries are not counted).
    pub fn len(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().is_some_and(|x| x == "plx"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the store currently holds no complete entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Parse one entry file, returning the payload only if every validation
/// passes.
fn read_validated(file: &mut fs::File) -> Option<Vec<u8>> {
    let mut header = [0u8; HEADER_LEN];
    file.read_exact(&mut header).ok()?;
    if &header[..8] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4-byte slice"));
    if version != DISK_FORMAT_VERSION {
        return None;
    }
    let len = u64::from_le_bytes(header[12..20].try_into().expect("8-byte slice"));
    if len > MAX_PAYLOAD_BYTES {
        return None;
    }
    let checksum = u64::from_le_bytes(header[20..28].try_into().expect("8-byte slice"));
    let mut payload = Vec::new();
    file.read_to_end(&mut payload).ok()?;
    if payload.len() as u64 != len || fnv1a_64(&payload) != checksum {
        return None;
    }
    Some(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "parallax-persist-{tag}-{}-{:p}",
            std::process::id(),
            &tag
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_survives_reopen() {
        let dir = temp_dir("roundtrip");
        let payload = b"{\"ok\":true,\"id\":7}".to_vec();
        {
            let store = DiskStore::open(&dir).unwrap();
            assert!(store.load(1, 2).is_none(), "empty store misses");
            store.store(1, 2, &payload).unwrap();
            assert_eq!(store.load(1, 2).unwrap(), payload);
        }
        // A fresh open over the same directory — the restart case.
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.load(1, 2).unwrap(), payload);
        assert_eq!(store.len(), 1);
        assert!(store.load(1, 3).is_none(), "different key misses");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn overwrite_replaces_the_payload() {
        let dir = temp_dir("overwrite");
        let store = DiskStore::open(&dir).unwrap();
        store.store(9, 9, b"first").unwrap();
        store.store(9, 9, b"second, longer payload").unwrap();
        assert_eq!(store.load(9, 9).unwrap(), b"second, longer payload");
        assert_eq!(store.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_miss_and_are_removed() {
        let dir = temp_dir("corrupt");
        let store = DiskStore::open(&dir).unwrap();
        store.store(5, 5, b"good payload").unwrap();
        let path = store.entry_path(5, 5);
        let good = fs::read(&path).unwrap();

        // Truncated mid-header.
        fs::write(&path, &good[..10]).unwrap();
        assert!(store.load(5, 5).is_none());
        assert!(!path.exists(), "invalid file is cleaned up");

        // Garbage magic.
        let mut bad = good.clone();
        bad[..8].copy_from_slice(b"GARBAGE!");
        fs::write(&path, &bad).unwrap();
        assert!(store.load(5, 5).is_none());

        // Future format version.
        let mut skew = good.clone();
        skew[8..12].copy_from_slice(&(DISK_FORMAT_VERSION + 1).to_le_bytes());
        fs::write(&path, &skew).unwrap();
        assert!(store.load(5, 5).is_none());

        // Flipped payload bit fails the checksum.
        let mut rot = good.clone();
        let last = rot.len() - 1;
        rot[last] ^= 0x01;
        fs::write(&path, &rot).unwrap();
        assert!(store.load(5, 5).is_none());

        // Truncated payload fails the length check.
        fs::write(&path, &good[..good.len() - 3]).unwrap();
        assert!(store.load(5, 5).is_none());

        // After cleanup, a fresh store repairs the key.
        store.store(5, 5, b"good payload").unwrap();
        assert_eq!(store.load(5, 5).unwrap(), b"good payload");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn absurd_length_field_is_rejected_without_allocating() {
        let dir = temp_dir("length");
        let store = DiskStore::open(&dir).unwrap();
        store.store(3, 3, b"x").unwrap();
        let path = store.entry_path(3, 3);
        let mut bytes = fs::read(&path).unwrap();
        bytes[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert!(store.load(3, 3).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_payload_round_trips() {
        let dir = temp_dir("empty");
        let store = DiskStore::open(&dir).unwrap();
        store.store(0, 0, b"").unwrap();
        assert_eq!(store.load(0, 0).unwrap(), Vec::<u8>::new());
        let _ = fs::remove_dir_all(&dir);
    }
}
