//! The **compiled-template cache**: the process-wide map from
//! ([`parallax_circuit::structural_hash`], compiler fingerprint) to shared
//! [`CompiledTemplate`]s, serving variational sweeps.
//!
//! Entries are `Arc`-shared — a hit is a pointer clone, never a schedule
//! copy — and weighed in the same qubit/position-sized units as the other
//! layers under the shared `PARALLAX_LAYOUT_CACHE` budget. Most callers
//! reach this layer through the [`crate::template::compiled_template`]
//! front door rather than the raw [`lookup_template`]/[`record_template`]
//! pair.

use super::configured_capacity;
use crate::template::CompiledTemplate;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Content address of one compiled template: the circuit's structural
/// fingerprint (angles canonicalized to ordinal slots) and the
/// machine+config fingerprint of the compiler. Two sweep members that
/// differ only in rotation angles share a key; any structural or
/// configuration change does not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TemplateKey {
    /// [`parallax_circuit::structural_hash`] of the circuit.
    pub structural: u64,
    /// [`crate::ParallaxCompiler::fingerprint`] (machine + config).
    pub compiler: u64,
}

/// Counters and gauges of the template cache (the `STATS` sub-object).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TemplateCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Maximum total weight in qubit-units (0 = disabled).
    pub capacity: usize,
    /// Total weight of the cached entries, qubit-units.
    pub weight: usize,
}

struct TemplateEntry {
    template: Arc<CompiledTemplate>,
    tick: u64,
    weight: usize,
}

/// A template entry holds a full compiled artifact, so it is charged its
/// qubit count plus one unit per scheduled gate index and move — the same
/// qubit/position-sized units as the other two layers.
fn template_weight(template: &CompiledTemplate) -> usize {
    let result = template.result();
    let schedule: usize =
        result.schedule.layers.iter().map(|l| l.gate_indices.len() + l.moves.len()).sum();
    (result.num_qubits + schedule).max(1)
}

/// Bounded LRU map from [`TemplateKey`] to shared compiled templates —
/// same size-aware eviction discipline as [`super::LayoutCache`]. Entries
/// are `Arc`-shared: a hit is a pointer clone, so sweep traffic never
/// copies the schedule.
pub struct TemplateCache {
    map: HashMap<TemplateKey, TemplateEntry>,
    tick: u64,
    capacity: usize,
    weight: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl TemplateCache {
    /// Create a cache holding at most `capacity` qubit-units of compiled
    /// templates (0 disables).
    pub fn new(capacity: usize) -> Self {
        Self { map: HashMap::new(), tick: 0, capacity, weight: 0, hits: 0, misses: 0, evictions: 0 }
    }

    /// Look up `key`, refreshing its recency and counting the hit/miss.
    pub fn get(&mut self, key: &TemplateKey) -> Option<Arc<CompiledTemplate>> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.tick = self.tick;
                self.hits += 1;
                Some(Arc::clone(&entry.template))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) `key`, evicting least-recently-used templates
    /// until the new entry fits. Like the other layers: disabled at
    /// capacity 0, and an entry outweighing the whole budget warns once
    /// per process and is not cached.
    pub fn insert(&mut self, key: TemplateKey, template: Arc<CompiledTemplate>) {
        if self.capacity == 0 {
            return;
        }
        let weight = template_weight(&template);
        if weight > self.capacity {
            static OVERSIZED: std::sync::Once = std::sync::Once::new();
            let capacity = self.capacity;
            OVERSIZED.call_once(|| {
                eprintln!(
                    "warning: a {weight}-unit compiled template exceeds the whole \
                     template-cache budget ({capacity} qubit-units) and will not be cached; \
                     PARALLAX_LAYOUT_CACHE sizes the layout, plan, and template caches — \
                     raise it to at least the largest sweep circuit's schedule size"
                );
            });
            return;
        }
        self.tick += 1;
        if let Some(old) = self.map.remove(&key) {
            self.weight -= old.weight;
        }
        while self.weight + weight > self.capacity {
            self.evict_stalest();
        }
        self.weight += weight;
        self.map.insert(key, TemplateEntry { template, tick: self.tick, weight });
    }

    /// Current counters and gauges.
    pub fn stats(&self) -> TemplateCacheStats {
        TemplateCacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.map.len(),
            capacity: self.capacity,
            weight: self.weight,
        }
    }

    /// Drop the least-recently-touched entry (callers guarantee the cache
    /// is non-empty whenever they loop on this).
    fn evict_stalest(&mut self) {
        let stalest = self
            .map
            .iter()
            .min_by_key(|(_, e)| e.tick)
            .map(|(k, _)| *k)
            .expect("nonzero weight implies an entry to evict");
        self.weight -= self.map.remove(&stalest).expect("stalest key present").weight;
        self.evictions += 1;
    }

    /// Change the budget at runtime: shrinking evicts stalest-first down
    /// to the new capacity, `0` disables and clears.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        if capacity == 0 {
            self.weight = 0;
            self.map.clear();
            return;
        }
        while self.weight > capacity {
            self.evict_stalest();
        }
    }
}

fn template_global() -> &'static Mutex<TemplateCache> {
    static CACHE: OnceLock<Mutex<TemplateCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(TemplateCache::new(configured_capacity())))
}

/// Look up a process-wide compiled template. `None` means the caller must
/// compile (and should [`record_template`] the result). Most callers want
/// the [`crate::template::compiled_template`] front door instead.
pub fn lookup_template(key: &TemplateKey) -> Option<Arc<CompiledTemplate>> {
    template_global().lock().expect("template cache lock").get(key)
}

/// Publish a freshly compiled template for process-wide reuse. Compilation
/// happens outside the lock ([`crate::template::compiled_template`]), so
/// concurrent sweeps contend only on the map insert itself.
pub fn record_template(key: TemplateKey, template: Arc<CompiledTemplate>) {
    template_global().lock().expect("template cache lock").insert(key, template);
}

/// Snapshot of the process-wide template cache counters.
pub fn template_cache_stats() -> TemplateCacheStats {
    template_global().lock().expect("template cache lock").stats()
}

/// Apply the shared budget to the process-wide instance (the
/// [`super::resize`] hook for this layer).
pub(super) fn set_global_capacity(capacity: usize) {
    template_global().lock().expect("template cache lock").set_capacity(capacity);
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_circuit::CircuitBuilder;
    use parallax_hardware::MachineSpec;

    #[test]
    fn template_cache_lifecycle_hit_lru_oversized_disable() {
        use crate::{CompilerConfig, ParallaxCompiler};
        let compiler =
            ParallaxCompiler::new(MachineSpec::quera_aquila_256(), CompilerConfig::quick(21));
        let mut b = CircuitBuilder::new(3);
        b.h(0).cx(0, 1).cx(1, 2);
        let tpl = Arc::new(CompiledTemplate::compile(&compiler, &b.build()));
        let key = |n: u64| TemplateKey { structural: n, compiler: 1 };

        // Weight probe: one entry's weight under a roomy budget.
        let mut probe = TemplateCache::new(1 << 20);
        probe.insert(key(0), Arc::clone(&tpl));
        let w = probe.stats().weight;
        assert!(w >= 3, "3 qubits plus scheduled gates, got {w}");

        // Hit returns the shared Arc and LRU eviction is size-aware.
        let mut c = TemplateCache::new(2 * w);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), Arc::clone(&tpl));
        c.insert(key(2), Arc::clone(&tpl));
        assert!(Arc::ptr_eq(&c.get(&key(1)).unwrap(), &tpl)); // 1 now MRU
        c.insert(key(3), Arc::clone(&tpl)); // evicts 2
        assert!(c.get(&key(2)).is_none());
        assert!(c.get(&key(1)).is_some() && c.get(&key(3)).is_some());
        let s = c.stats();
        assert_eq!((s.evictions, s.len, s.weight), (1, 2, 2 * w));
        assert_eq!((s.hits, s.misses), (3, 2));

        // An entry outweighing the whole budget is skipped, nothing evicted.
        let mut tiny = TemplateCache::new(w - 1);
        tiny.insert(key(1), Arc::clone(&tpl));
        assert_eq!((tiny.stats().len, tiny.stats().evictions), (0, 0));

        // Capacity 0 disables; set_capacity(0) clears.
        let mut off = TemplateCache::new(0);
        off.insert(key(1), Arc::clone(&tpl));
        assert!(off.get(&key(1)).is_none());
        c.set_capacity(0);
        assert_eq!((c.stats().len, c.stats().weight), (0, 0));
    }
}
