//! Process-wide caches of the expensive per-compile intermediates: annealed
//! GRAPHINE **layouts** and successful AOD **move plans**.
//!
//! The service's result cache can only answer *exact* repeats: the same
//! circuit with different scheduling knobs (home-return, move recursion,
//! AOD weights) re-paid the full placement cost even though the layout is
//! untouched by those knobs. This cache keys the layout stage alone, by
//!
//! * the **interaction-graph** stable hash (placement sees only the graph,
//!   so different circuits with equal graphs share layouts),
//! * the **machine** fingerprint, and
//! * the **placement-parameter** fingerprint (seed, iteration budget,
//!   repulsion scale, restart count — everything that steers the anneal;
//!   the worker count is excluded because it never changes the result).
//!
//! A hit returns a clone of a layout that is bit-identical to what a fresh
//! anneal would produce (the whole placement stage is deterministic per
//! key), so compilations through the cache are byte-identical to cold
//! compilations. The cache is a process global guarded by one mutex —
//! generation happens *outside* the lock, so concurrent compiles never
//! serialize on the anneal, only on the map probe. Both direct
//! [`crate::ParallaxCompiler::compile`] calls and the compile service
//! share it; `PARALLAX_LAYOUT_CACHE=<qubit-units>` resizes it and `0`
//! disables it. Eviction is size-aware: an entry costs its qubit count,
//! so a 256-qubit layout is charged 256 units while a 4-qubit one costs
//! 4, and large stale layouts are displaced before hordes of small ones.
//!
//! The **move-plan cache** ([`PlanCache`]) rides the same layer: the
//! scheduler's movement planner is a pure function of the array state and
//! its `(mover, target, radius, recursion)` arguments, and under
//! home-return the effective AOD configuration repeats — not only layer to
//! layer within a compile (the scheduler's per-compile memo handles that),
//! but across *compiles* of the same layout, which is exactly the repeat
//! traffic a serving deployment sees after a layout-cache hit. Entries are
//! keyed by ([`AtomArray::static_fingerprint`],
//! [`AtomArray::aod_fingerprint`], mover, target) and store the complete
//! placed-atom snapshot plus the radius/recursion knobs; a hit is honoured
//! only after an **exact** state comparison
//! ([`AtomArray::placed_state_matches`]), so a reused plan is bit-identical
//! to what a fresh cascade would produce — by planner purity, not by
//! trust in a 64-bit hash. The same `PARALLAX_LAYOUT_CACHE` budget governs
//! both layers (plan entries are charged their snapshot + move counts in
//! the same position-sized units; `0` disables both), and [`resize`]
//! adjusts both at runtime.
//!
//! The cache layer is decomposed into one module per family — mirroring
//! the engine-module split the ROADMAP cites from formualizer — so each
//! family's key discipline and eviction semantics live (and are tested)
//! next to their implementation:
//!
//! * this module — the **layout** cache plus the shared budget plumbing
//!   ([`resize`], `PARALLAX_LAYOUT_CACHE`, [`register_cache_metrics`]);
//! * [`plan`] — the sharded cross-compile **move-plan** cache;
//! * [`template`] — the compiled-**template** cache for variational sweeps;
//! * [`persist`] — the **disk tier**: a content-addressed, versioned,
//!   corruption-tolerant file store ([`persist::DiskStore`]) that gives any
//!   in-memory cache layer a restart-surviving life (the service's result
//!   cache rides it today; template persistence is the designed next user).
//!
//! [`AtomArray::static_fingerprint`]: parallax_hardware::AtomArray::static_fingerprint
//! [`AtomArray::aod_fingerprint`]: parallax_hardware::AtomArray::aod_fingerprint
//! [`AtomArray::placed_state_matches`]: parallax_hardware::AtomArray::placed_state_matches

pub mod persist;
pub mod plan;
pub mod template;

pub use persist::{DiskStore, DISK_FORMAT_VERSION};
pub use plan::{
    lookup_plan, plan_cache_stats, record_plan, PlanCache, PlanCacheStats, PlanKey, PLAN_SHARDS,
};
pub use template::{
    lookup_template, record_template, template_cache_stats, TemplateCache, TemplateCacheStats,
    TemplateKey,
};

use crate::profile::{self, Stage};
use parallax_graphine::{GraphineLayout, InteractionGraph, PlacementConfig};
use parallax_hardware::MachineSpec;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Content address of one layout computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayoutKey {
    /// [`InteractionGraph::stable_hash`] of the circuit's graph.
    pub graph: u64,
    /// [`MachineSpec::fingerprint`] of the target machine.
    pub machine: u64,
    /// [`PlacementConfig::fingerprint`] of the placement parameters.
    pub placement: u64,
}

impl LayoutKey {
    /// Build the key for (graph, machine, placement parameters).
    pub fn new(
        graph: &InteractionGraph,
        machine: &MachineSpec,
        placement: &PlacementConfig,
    ) -> Self {
        Self {
            graph: graph.stable_hash(),
            machine: machine.fingerprint(),
            placement: placement.fingerprint(),
        }
    }
}

/// Counters and gauges of the layout cache (the `STATS` sub-object).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LayoutCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to anneal.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Maximum total weight in qubit-units (0 = disabled).
    pub capacity: usize,
    /// Total weight of the cached entries, qubit-units.
    pub weight: usize,
}

struct Entry {
    layout: GraphineLayout,
    /// Last-touch tick for LRU eviction.
    tick: u64,
    /// Size of this entry in qubit-units (its position count): a
    /// 256-qubit layout holds 256x the data of a 1-qubit one and is
    /// charged accordingly.
    weight: usize,
}

fn weight_of(layout: &GraphineLayout) -> usize {
    layout.positions.len().max(1)
}

/// Bounded LRU map from [`LayoutKey`] to annealed layouts. Capacity is
/// **size-aware**: entries are charged their qubit count rather than a
/// flat 1, so one giant layout cannot silently occupy as little budget as
/// a trivial one. Eviction scans for the stalest tick — O(entries), which
/// is noise next to the anneal the cache avoids.
pub struct LayoutCache {
    map: HashMap<LayoutKey, Entry>,
    tick: u64,
    capacity: usize,
    weight: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl LayoutCache {
    /// Create a cache holding at most `capacity` qubit-units of layouts
    /// (0 disables).
    pub fn new(capacity: usize) -> Self {
        Self { map: HashMap::new(), tick: 0, capacity, weight: 0, hits: 0, misses: 0, evictions: 0 }
    }

    /// Look up `key`, refreshing its recency and counting the hit/miss.
    pub fn get(&mut self, key: &LayoutKey) -> Option<GraphineLayout> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.tick = self.tick;
                self.hits += 1;
                Some(entry.layout.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) `key`, evicting least-recently-used layouts
    /// until the new entry's weight fits. No-op when the cache is disabled
    /// or the layout alone exceeds the whole budget (caching it would
    /// wipe everything else for an entry that can never share) — the
    /// latter warns once per process, because an operator carrying a
    /// small entry-count-era `PARALLAX_LAYOUT_CACHE` value would
    /// otherwise see their hit rate silently drop to zero.
    pub fn insert(&mut self, key: LayoutKey, layout: GraphineLayout) {
        if self.capacity == 0 {
            return;
        }
        let weight = weight_of(&layout);
        if weight > self.capacity {
            static OVERSIZED: std::sync::Once = std::sync::Once::new();
            let capacity = self.capacity;
            OVERSIZED.call_once(|| {
                eprintln!(
                    "warning: a {weight}-qubit layout exceeds the whole layout-cache budget \
                     ({capacity} qubit-units) and will not be cached; PARALLAX_LAYOUT_CACHE \
                     is measured in qubit-units (it used to count entries) — raise it to \
                     at least the largest circuit's qubit count"
                );
            });
            return;
        }
        self.tick += 1;
        if let Some(old) = self.map.remove(&key) {
            self.weight -= old.weight;
        }
        while self.weight + weight > self.capacity {
            self.evict_stalest();
        }
        self.weight += weight;
        self.map.insert(key, Entry { layout, tick: self.tick, weight });
    }

    /// Current counters and gauges.
    pub fn stats(&self) -> LayoutCacheStats {
        LayoutCacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.map.len(),
            capacity: self.capacity,
            weight: self.weight,
        }
    }

    /// Drop the least-recently-touched entry (callers guarantee the cache
    /// is non-empty whenever they loop on this).
    fn evict_stalest(&mut self) {
        let stalest = self
            .map
            .iter()
            .min_by_key(|(_, e)| e.tick)
            .map(|(k, _)| *k)
            .expect("nonzero weight implies an entry to evict");
        self.weight -= self.map.remove(&stalest).expect("stalest key present").weight;
        self.evictions += 1;
    }

    /// Change the budget at runtime: shrinking evicts stalest-first down
    /// to the new capacity, `0` disables and clears.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        if capacity == 0 {
            self.weight = 0;
            self.map.clear();
            return;
        }
        while self.weight > capacity {
            self.evict_stalest();
        }
    }
}

/// Default capacity: `PARALLAX_LAYOUT_CACHE` (qubit-units; `0` disables)
/// or 8192 — room for e.g. 64 layouts of 128 qubits or thousands of small
/// ones. An unparsable value warns and keeps the default rather than
/// silently re-enabling a cache someone tried to turn off with e.g. `=off`.
const DEFAULT_CAPACITY: usize = 8192;

pub(crate) fn configured_capacity() -> usize {
    match std::env::var("PARALLAX_LAYOUT_CACHE") {
        Err(_) => DEFAULT_CAPACITY,
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!(
                    "warning: PARALLAX_LAYOUT_CACHE={v:?} is not a number of qubit-units \
                     (use 0 to disable); keeping the default capacity {DEFAULT_CAPACITY}"
                );
                DEFAULT_CAPACITY
            }
        },
    }
}

fn global() -> &'static Mutex<LayoutCache> {
    static CACHE: OnceLock<Mutex<LayoutCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(LayoutCache::new(configured_capacity())))
}

/// Fetch or anneal the layout for `graph` under the given machine and
/// placement parameters; the boolean reports whether the cache answered.
///
/// Misses anneal **outside** the cache lock and publish afterwards; if two
/// threads race the same key both anneal the identical (deterministic)
/// layout, so last-write-wins is harmless.
pub fn lookup_or_generate(
    graph: &InteractionGraph,
    machine: &MachineSpec,
    placement: &PlacementConfig,
) -> (GraphineLayout, bool) {
    let key = LayoutKey::new(graph, machine, placement);
    let probe = {
        let _s = parallax_trace::span!("cache.layout.probe");
        global().lock().expect("layout cache lock").get(&key)
    };
    if let Some(layout) = probe {
        return (layout, true);
    }
    let layout = GraphineLayout::from_graph(graph, placement);
    global().lock().expect("layout cache lock").insert(key, layout.clone());
    (layout, false)
}

/// [`lookup_or_generate`] starting from a circuit, with the placement
/// stage profiled — the entry point `ParallaxCompiler::compile` and the
/// bench harness share.
pub fn cached_layout(
    circuit: &parallax_circuit::Circuit,
    machine: &MachineSpec,
    placement: &PlacementConfig,
) -> GraphineLayout {
    let _sp = parallax_trace::span!("stage.placement");
    let started = profile::begin();
    let graph = InteractionGraph::from_circuit(circuit);
    let (layout, hit) = lookup_or_generate(&graph, machine, placement);
    profile::record(Stage::Placement, started, if hit { 0 } else { layout.anneal_allocs as u64 });
    layout
}

/// Snapshot of the process-wide layout cache counters.
pub fn layout_cache_stats() -> LayoutCacheStats {
    global().lock().expect("layout cache lock").stats()
}

/// Resize **all three** process-wide cache layers at runtime (the same
/// effect as restarting with `PARALLAX_LAYOUT_CACHE=<units>`): shrinking
/// evicts stalest-first down to the new budget, `0` disables and clears
/// every layer. Concurrent compiles stay correct at any capacity — caches
/// only ever change *when* work is recomputed, never its result.
pub fn resize(capacity: usize) {
    global().lock().expect("layout cache lock").set_capacity(capacity);
    plan::set_global_capacity(capacity);
    template::set_global_capacity(capacity);
}

/// Register the three cache layers with the process-wide metrics registry
/// as a pull-model collector: the caches keep their own counters under
/// their own locks, and exposition samples them on demand instead of
/// mirroring every probe into a second atomic. Idempotent — safe to call
/// from every entry point (compiler construction, service start,
/// `experiments --metrics`).
pub fn register_cache_metrics() {
    parallax_trace::register_collector(
        "parallax_core.caches",
        Box::new(|out| {
            let push = |out: &mut Vec<parallax_trace::Sample>,
                        cache: &str,
                        hits: u64,
                        misses: u64,
                        evictions: u64,
                        len: usize,
                        capacity: usize,
                        weight: usize| {
                let l = [("cache", cache)];
                out.push(parallax_trace::Sample::counter("parallax_cache_hits_total", &l, hits));
                out.push(parallax_trace::Sample::counter(
                    "parallax_cache_misses_total",
                    &l,
                    misses,
                ));
                out.push(parallax_trace::Sample::counter(
                    "parallax_cache_evictions_total",
                    &l,
                    evictions,
                ));
                out.push(parallax_trace::Sample::gauge("parallax_cache_entries", &l, len as u64));
                out.push(parallax_trace::Sample::gauge(
                    "parallax_cache_capacity_units",
                    &l,
                    capacity as u64,
                ));
                out.push(parallax_trace::Sample::gauge(
                    "parallax_cache_weight_units",
                    &l,
                    weight as u64,
                ));
            };
            let s = layout_cache_stats();
            push(out, "layout", s.hits, s.misses, s.evictions, s.len, s.capacity, s.weight);
            let s = plan_cache_stats();
            push(out, "plan", s.hits, s.misses, s.evictions, s.len, s.capacity, s.weight);
            out.push(parallax_trace::Sample::counter(
                "parallax_cache_lock_contended_total",
                &[("cache", "plan")],
                s.contended,
            ));
            let s = template_cache_stats();
            push(out, "template", s.hits, s.misses, s.evictions, s.len, s.capacity, s.weight);
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_circuit::CircuitBuilder;

    fn layout(tag: f64) -> GraphineLayout {
        GraphineLayout {
            positions: vec![(tag, tag)],
            interaction_radius: tag,
            energy: tag,
            anneal_evals: 1,
            anneal_allocs: 1,
        }
    }

    fn sized_layout(tag: f64, qubits: usize) -> GraphineLayout {
        GraphineLayout { positions: vec![(tag, tag); qubits], ..layout(tag) }
    }

    fn key(n: u64) -> LayoutKey {
        LayoutKey { graph: n, machine: 1, placement: 1 }
    }

    #[test]
    fn hit_miss_and_lru_eviction() {
        let mut c = LayoutCache::new(2);
        assert_eq!(c.get(&key(1)), None);
        c.insert(key(1), layout(1.0));
        c.insert(key(2), layout(2.0));
        assert_eq!(c.get(&key(1)).unwrap().energy, 1.0); // 1 now MRU
        c.insert(key(3), layout(3.0)); // evicts 2
        assert_eq!(c.get(&key(2)), None);
        assert!(c.get(&key(1)).is_some() && c.get(&key(3)).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.len), (3, 2, 1, 2));
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut c = LayoutCache::new(0);
        c.insert(key(1), layout(1.0));
        assert_eq!(c.get(&key(1)), None);
        assert_eq!(c.stats().len, 0);
    }

    #[test]
    fn eviction_is_weighted_by_qubit_count() {
        // Capacity 280 qubit-units: a 256-qubit layout plus one 20-qubit
        // layout fit; the second 20-qubit layout displaces the (stale)
        // large one — not a small one — because the large entry is charged
        // its real size instead of a flat 1.
        let mut c = LayoutCache::new(280);
        c.insert(key(1), sized_layout(1.0, 256));
        c.insert(key(2), sized_layout(2.0, 20));
        assert_eq!(c.stats().weight, 276);
        c.insert(key(3), sized_layout(3.0, 20));
        assert_eq!(c.get(&key(1)), None, "the large layout must be evicted first");
        assert!(c.get(&key(2)).is_some() && c.get(&key(3)).is_some());
        let s = c.stats();
        assert_eq!((s.evictions, s.len, s.weight), (1, 2, 40));
    }

    #[test]
    fn oversized_layout_is_not_cached_and_evicts_nothing() {
        let mut c = LayoutCache::new(100);
        c.insert(key(1), sized_layout(1.0, 60));
        c.insert(key(2), sized_layout(2.0, 101)); // exceeds the whole budget
        assert_eq!(c.get(&key(2)), None);
        assert!(c.get(&key(1)).is_some(), "existing entries must survive");
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn reinserting_a_key_replaces_its_weight() {
        let mut c = LayoutCache::new(100);
        c.insert(key(1), sized_layout(1.0, 80));
        c.insert(key(1), sized_layout(1.5, 40));
        let s = c.stats();
        assert_eq!((s.len, s.weight, s.evictions), (1, 40, 0));
        assert_eq!(c.get(&key(1)).unwrap().positions.len(), 40);
    }

    #[test]
    fn distinct_key_components_do_not_collide() {
        let mut c = LayoutCache::new(8);
        c.insert(LayoutKey { graph: 1, machine: 1, placement: 1 }, layout(1.0));
        c.insert(LayoutKey { graph: 1, machine: 2, placement: 1 }, layout(2.0));
        c.insert(LayoutKey { graph: 1, machine: 1, placement: 2 }, layout(3.0));
        assert_eq!(c.get(&LayoutKey { graph: 1, machine: 1, placement: 1 }).unwrap().energy, 1.0);
        assert_eq!(c.get(&LayoutKey { graph: 1, machine: 2, placement: 1 }).unwrap().energy, 2.0);
        assert_eq!(c.get(&LayoutKey { graph: 1, machine: 1, placement: 2 }).unwrap().energy, 3.0);
    }

    #[test]
    fn global_near_miss_shares_the_layout_and_counts_a_hit() {
        // Unique seed so this test's keys cannot collide with other tests
        // hitting the shared global cache; assertions are delta-based.
        let mut b = CircuitBuilder::new(4);
        b.cx(0, 1).cx(1, 2).cx(2, 3);
        let circuit = b.build();
        let machine = MachineSpec::quera_aquila_256();
        let placement = PlacementConfig::quick(0xC0FFEE);

        let before = layout_cache_stats();
        let cold = cached_layout(&circuit, &machine, &placement);
        let warm = cached_layout(&circuit, &machine, &placement);
        let after = layout_cache_stats();
        assert_eq!(cold, warm, "cache hit must be bit-identical to the anneal");
        assert!(after.hits > before.hits, "{before:?} -> {after:?}");
        assert!(after.misses > before.misses);

        // A different machine is a different key (per the cache contract).
        let other = cached_layout(&circuit, &MachineSpec::atom_1225(), &placement);
        assert_eq!(other, cold, "layout itself is machine-independent");
        assert!(layout_cache_stats().misses > after.misses);
    }
}
