//! Cache-invalidation edges of the process-wide compiled-template cache
//! (the variational-sweep layer). Like `plan_cache_invalidation`, this
//! suite lives in its own integration-test binary (its own process)
//! because it resizes and disables the process-global caches via
//! [`parallax_core::layout_cache::resize`] — inside the shared lib-test
//! process that would race sibling tests asserting hit/miss deltas. The
//! whole sequence runs as ONE test function for the same reason: the test
//! harness runs sibling `#[test]`s of a binary concurrently.

use parallax_circuit::CircuitTemplate;
use parallax_core::{compiled_template, layout_cache, CompilerConfig, ParallaxCompiler};
use parallax_hardware::MachineSpec;
use parallax_testkit::parameterized_circuit_family;
use proptest::strategy::Strategy;
use std::sync::Arc;

#[test]
fn template_cache_lifecycle_across_resize_and_disable() {
    // One deterministic draw from the shared sweep-family strategy: a
    // seeded {U3, CZ} structure plus angle vectors sized to its slots.
    let mut rng = proptest::seeded_rng(proptest::stream_seed("template_cache_lifecycle"));
    let (structure, sets) = parameterized_circuit_family(6, 24, 3).new_value(&mut rng);
    let circuit_template = CircuitTemplate::from_circuit(&structure);
    assert!(circuit_template.num_params() > 0, "family structures carry U3 slots");
    let variant = |scale: f64| {
        let params: Vec<f64> =
            (0..circuit_template.num_params()).map(|i| scale * (i as f64) / 10.0).collect();
        circuit_template.bind(&params).expect("finite params bind")
    };

    let compiler =
        ParallaxCompiler::new(MachineSpec::quera_aquila_256(), CompilerConfig::quick(0xFEED43));

    // Cold, then exact structural reuse: every angle variant of the same
    // structure answers from the one compiled artifact (a pointer clone),
    // with the bit-identical schedule and home positions.
    let (cold, cold_hit) = compiled_template(&compiler, &structure);
    assert!(!cold_hit, "first compile of the structure must miss");
    let shared = (cold.result().schedule.layers.clone(), cold.result().home_positions.clone());
    let same_artifact = |r: &parallax_core::CompilationResult| {
        (&r.schedule.layers, &r.home_positions) == (&shared.0, &shared.1)
    };
    for (i, set) in sets.iter().enumerate() {
        let bound = cold.rebind(set).expect("family sets bind");
        let (warm, hit) = compiled_template(&compiler, &bound);
        assert!(hit, "angle variant {i} must be a structural hit");
        assert!(Arc::ptr_eq(&cold, &warm), "hits share the artifact");
        assert!(same_artifact(warm.result()));
    }
    let stats = parallax_core::template_cache_stats();
    assert!(stats.len >= 1 && stats.hits >= sets.len() as u64, "{stats:?}");

    // A different machine and a different config are different keys: both
    // miss, and the entries coexist with the original (capacity allowing).
    let other_machine = ParallaxCompiler::new(MachineSpec::atom_1225(), compiler.config().clone());
    let (_, hit) = compiled_template(&other_machine, &structure);
    assert!(!hit, "machine change must miss");
    let other_config = ParallaxCompiler::new(*compiler.machine(), CompilerConfig::quick(0xFEED44));
    let (_, hit) = compiled_template(&other_config, &structure);
    assert!(!hit, "config change must miss");
    let (_, hit) = compiled_template(&compiler, &variant(1.0));
    assert!(hit, "original key must survive sibling insertions");

    // Resize to a budget too small for any entry: stored templates are
    // evicted, new ones warn-once and are not stored — every probe
    // recompiles, results stay byte-identical.
    layout_cache::resize(1);
    let stats = parallax_core::template_cache_stats();
    assert_eq!((stats.len, stats.weight, stats.capacity), (0, 0, 1), "{stats:?}");
    let (resized, hit) = compiled_template(&compiler, &structure);
    assert!(!hit, "evicted templates must miss");
    assert!(same_artifact(resized.result()), "re-plans stay bit-identical");
    let (again, hit) = compiled_template(&compiler, &variant(2.0));
    assert!(!hit, "oversized entries are not stored, so the re-probe misses too");
    assert!(same_artifact(again.result()));
    assert_eq!(parallax_core::template_cache_stats().len, 0);

    // Disable outright: nothing is stored or served.
    layout_cache::resize(0);
    let (disabled, hit) = compiled_template(&compiler, &structure);
    assert!(!hit);
    assert!(same_artifact(disabled.result()));
    let stats = parallax_core::template_cache_stats();
    assert_eq!((stats.len, stats.weight, stats.capacity), (0, 0, 0), "{stats:?}");

    // Re-enable: the first probe repopulates, the second reuses again.
    layout_cache::resize(1 << 20);
    let (repopulated, hit) = compiled_template(&compiler, &structure);
    assert!(!hit, "cache was empty");
    let (reused, hit) = compiled_template(&compiler, &variant(3.0));
    assert!(hit, "repopulated entry must serve variants again");
    assert!(Arc::ptr_eq(&repopulated, &reused));
    assert!(same_artifact(reused.result()));
}
