//! Cache-invalidation edges of the process-wide layout + move-plan cache
//! layer. This suite lives in its own integration-test binary (its own
//! process) because it resizes and disables the process-global caches via
//! [`parallax_core::layout_cache::resize`] — inside the shared lib-test
//! process that would race sibling tests asserting hit/miss deltas. The
//! whole sequence runs as ONE test function for the same reason: the test
//! harness runs sibling `#[test]`s of a binary concurrently.

use parallax_circuit::{Circuit, CircuitBuilder};
use parallax_core::{layout_cache, CompilerConfig, ParallaxCompiler};
use parallax_hardware::MachineSpec;

/// A Trotter-style circuit whose long-range interactions repeat step after
/// step — guaranteed to exercise the movement planner and its caches.
fn trotter_circuit() -> Circuit {
    let mut b = CircuitBuilder::new(10);
    for _step in 0..4 {
        for i in 0..10u32 {
            b.cx(i, (i + 5) % 10);
        }
    }
    b.build()
}

#[test]
fn plan_cache_lifecycle_across_resize_and_disable() {
    let circuit = trotter_circuit();
    let compiler =
        ParallaxCompiler::new(MachineSpec::quera_aquila_256(), CompilerConfig::quick(0xFEED42));

    // Cold: unique seed -> unique layout -> nothing to reuse across
    // compiles yet (within-compile reuse is allowed and expected).
    let cold = compiler.compile(&circuit);
    assert!(cold.schedule.stats.moves_planned > 0, "circuit must plan moves");
    assert_eq!(cold.schedule.stats.plan_cache_cross_hits, 0, "cold compile cannot cross-hit");
    let after_cold = parallax_core::plan_cache_stats();
    assert!(after_cold.len > 0, "cold compile must publish plans");

    // Warm: the layout-cache hit is followed by cross-compile plan hits,
    // and the compilation is bit-identical.
    let layout_hits_before = parallax_core::layout_cache_stats().hits;
    let warm = compiler.compile(&circuit);
    assert!(
        parallax_core::layout_cache_stats().hits > layout_hits_before,
        "repeat compile must hit the layout cache"
    );
    assert!(
        warm.schedule.stats.plan_cache_cross_hits > 0,
        "cross-compile plan hits must follow a layout-cache hit: {:?}",
        warm.schedule.stats
    );
    assert_eq!(warm.schedule.layers, cold.schedule.layers);
    assert_eq!(warm.home_positions, cold.home_positions);

    // Resize to a budget too small for any entry: stored plans (and
    // layouts) are evicted, new ones warn-once and are not stored — the
    // next compile re-plans from scratch, still bit-identical.
    layout_cache::resize(1);
    let stats = parallax_core::plan_cache_stats();
    assert_eq!((stats.len, stats.weight, stats.capacity), (0, 0, 1), "{stats:?}");
    let resized = compiler.compile(&circuit);
    assert_eq!(resized.schedule.stats.plan_cache_cross_hits, 0, "evicted plans must miss");
    assert_eq!(resized.schedule.layers, cold.schedule.layers);
    assert_eq!(parallax_core::plan_cache_stats().len, 0, "oversized entries are not stored");

    // Disable outright: nothing is stored or served.
    layout_cache::resize(0);
    let disabled = compiler.compile(&circuit);
    assert_eq!(disabled.schedule.stats.plan_cache_cross_hits, 0);
    assert_eq!(disabled.schedule.layers, cold.schedule.layers);
    let stats = parallax_core::plan_cache_stats();
    assert_eq!((stats.len, stats.weight, stats.capacity), (0, 0, 0), "{stats:?}");

    // Re-enable: the first compile repopulates, the second reuses again.
    layout_cache::resize(8192);
    let repopulate = compiler.compile(&circuit);
    assert_eq!(repopulate.schedule.stats.plan_cache_cross_hits, 0, "cache was empty");
    let reuse = compiler.compile(&circuit);
    assert!(reuse.schedule.stats.plan_cache_cross_hits > 0, "{:?}", reuse.schedule.stats);
    assert_eq!(reuse.schedule.layers, cold.schedule.layers);
}
