//! Hardware parameters (Table II of the paper) and the two evaluated
//! machine configurations.

/// Physical error/timing parameters of a neutral-atom machine, with the
/// values and citations of Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareParams {
    /// Probability an atom escapes its trap per shot (0.7% [Bluvstein'22]).
    pub atom_loss_rate: f64,
    /// Time to switch an atom between SLM and AOD traps, µs (100 [Tan'24]).
    pub trap_switch_time_us: f64,
    /// One-qubit U3 (Raman) gate error (0.0127% [Levine'22]).
    pub u3_gate_error: f64,
    /// U3 gate duration, µs (2 [Wintersperger'23]).
    pub u3_gate_time_us: f64,
    /// AOD transport speed, µm/µs (55 [Bluvstein'22]).
    pub aod_move_speed_um_per_us: f64,
    /// Hyperfine T1 relaxation time, seconds (4.0 [Bluvstein'22]).
    pub t1_seconds: f64,
    /// Hyperfine T2 dephasing time, seconds (1.49 [Bluvstein'22]).
    pub t2_seconds: f64,
    /// Two-qubit CZ (Rydberg) gate error (0.48% [Evered'23]).
    pub cz_gate_error: f64,
    /// CZ gate duration, µs (0.8 [Bluvstein'22]).
    pub cz_gate_time_us: f64,
    /// SWAP gate error — three CZ gates (1.43% [Evered'23]).
    pub swap_gate_error: f64,
    /// Measurement (fluorescence readout) error (5% [Wintersperger'23]).
    pub readout_error: f64,
}

impl HardwareParams {
    /// The Table II parameter set shared by both evaluated machines.
    pub const fn table2() -> Self {
        Self {
            atom_loss_rate: 0.007,
            trap_switch_time_us: 100.0,
            u3_gate_error: 0.000127,
            u3_gate_time_us: 2.0,
            aod_move_speed_um_per_us: 55.0,
            t1_seconds: 4.0,
            t2_seconds: 1.49,
            cz_gate_error: 0.0048,
            cz_gate_time_us: 0.8,
            swap_gate_error: 0.0143,
            readout_error: 0.05,
        }
    }

    /// SWAP duration: three sequential CZ gates.
    pub fn swap_gate_time_us(&self) -> f64 {
        3.0 * self.cz_gate_time_us
    }
}

impl Default for HardwareParams {
    fn default() -> Self {
        Self::table2()
    }
}

/// A simulated machine: grid size, AOD capacity, and spacing constraints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// The SLM site grid is `grid_dim x grid_dim`.
    pub grid_dim: usize,
    /// Number of AOD rows and of AOD columns (the paper's default is 20).
    pub aod_dim: usize,
    /// Minimum atom separation, µm.
    pub min_separation_um: f64,
    /// Extra navigation padding added to the discretization pitch, µm
    /// (Section II-A: "plus a small amount of padding").
    pub padding_um: f64,
    /// Blockade radius as a multiple of the interaction radius (2.5x).
    pub blockade_factor: f64,
    /// Error/timing parameters.
    pub params: HardwareParams,
}

impl MachineSpec {
    /// QuEra Aquila-like 256-qubit machine: 16x16 site grid (main results).
    pub const fn quera_aquila_256() -> Self {
        Self {
            name: "QuEra-256",
            grid_dim: 16,
            aod_dim: 20,
            min_separation_um: 3.0,
            padding_um: 1.0,
            blockade_factor: 2.5,
            params: HardwareParams::table2(),
        }
    }

    /// Atom Computing-like 1,225-qubit machine: 35x35 site grid (scaling
    /// and parallelization results).
    pub const fn atom_1225() -> Self {
        Self {
            name: "Atom-1225",
            grid_dim: 35,
            aod_dim: 20,
            min_separation_um: 3.0,
            padding_um: 1.0,
            blockade_factor: 2.5,
            params: HardwareParams::table2(),
        }
    }

    /// Synthetic `side x side` machine for fleet-scale experiments beyond
    /// the paper's largest evaluated configuration, with Table II physics
    /// and the paper's AOD capacity. Two canonical sides carry stable
    /// names — 46 ("Synthetic-2048": 2,116 sites, the smallest square grid
    /// holding 2,048 atoms) and 64 ("Synthetic-4096": exactly 4,096
    /// sites); any other side is a generic "Synthetic-Grid", still
    /// distinguished in [`Self::fingerprint`] by `grid_dim`.
    pub const fn synthetic_grid(side: usize) -> Self {
        let name = match side {
            46 => "Synthetic-2048",
            64 => "Synthetic-4096",
            _ => "Synthetic-Grid",
        };
        Self {
            name,
            grid_dim: side,
            aod_dim: 20,
            min_separation_um: 3.0,
            padding_um: 1.0,
            blockade_factor: 2.5,
            params: HardwareParams::table2(),
        }
    }

    /// Total number of SLM sites (= maximum atoms).
    pub fn num_sites(&self) -> usize {
        self.grid_dim * self.grid_dim
    }

    /// Grid pitch: one discretization unit = twice the minimum separation
    /// plus padding (Section II-A's discretization rule).
    pub fn site_pitch_um(&self) -> f64 {
        2.0 * self.min_separation_um + self.padding_um
    }

    /// Physical side length of the site grid, µm.
    pub fn extent_um(&self) -> f64 {
        (self.grid_dim.saturating_sub(1)) as f64 * self.site_pitch_um()
    }

    /// Return a copy with a different AOD row/column count (Fig. 13's
    /// ablation knob).
    pub fn with_aod_dim(mut self, aod_dim: usize) -> Self {
        self.aod_dim = aod_dim;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_match_paper() {
        let p = HardwareParams::table2();
        assert_eq!(p.trap_switch_time_us, 100.0);
        assert_eq!(p.aod_move_speed_um_per_us, 55.0);
        assert_eq!(p.t1_seconds, 4.0);
        assert_eq!(p.t2_seconds, 1.49);
        assert_eq!(p.cz_gate_error, 0.0048);
        assert_eq!(p.u3_gate_time_us, 2.0);
        assert_eq!(p.cz_gate_time_us, 0.8);
        assert_eq!(p.readout_error, 0.05);
        assert_eq!(p.swap_gate_error, 0.0143);
        assert_eq!(p.atom_loss_rate, 0.007);
    }

    #[test]
    fn machine_sizes_match_paper() {
        let quera = MachineSpec::quera_aquila_256();
        assert_eq!(quera.num_sites(), 256);
        assert_eq!(quera.grid_dim, 16);
        let atom = MachineSpec::atom_1225();
        assert_eq!(atom.num_sites(), 1225);
        assert_eq!(atom.grid_dim, 35);
        assert_eq!(atom.aod_dim, 20);
    }

    #[test]
    fn pitch_is_twice_min_sep_plus_padding() {
        let spec = MachineSpec::quera_aquila_256();
        assert_eq!(spec.site_pitch_um(), 7.0);
        assert_eq!(spec.extent_um(), 15.0 * 7.0);
    }

    #[test]
    fn swap_time_is_three_cz() {
        let p = HardwareParams::table2();
        assert!((p.swap_gate_time_us() - 2.4).abs() < 1e-12);
    }

    #[test]
    fn longest_move_on_256_is_about_two_microseconds() {
        // Section IV: "the longest possible move would take about 2 µs".
        let spec = MachineSpec::quera_aquila_256();
        let diagonal = spec.extent_um() * 2f64.sqrt();
        let t = diagonal / spec.params.aod_move_speed_um_per_us;
        assert!(t > 1.0 && t < 3.5, "diagonal move time {t} µs");
    }

    #[test]
    fn synthetic_grids_scale_past_the_paper() {
        let s2048 = MachineSpec::synthetic_grid(46);
        assert_eq!(s2048.name, "Synthetic-2048");
        assert_eq!(s2048.num_sites(), 2116);
        assert!(s2048.num_sites() >= 2048);
        let s4096 = MachineSpec::synthetic_grid(64);
        assert_eq!(s4096.name, "Synthetic-4096");
        assert_eq!(s4096.num_sites(), 4096);
        // Physics and AOD capacity match the paper machines.
        assert_eq!(s4096.params, HardwareParams::table2());
        assert_eq!(s4096.aod_dim, 20);
        assert_eq!(s4096.site_pitch_um(), 7.0);
        // Generic sides stay usable and distinguishable.
        let other = MachineSpec::synthetic_grid(50);
        assert_eq!(other.name, "Synthetic-Grid");
        assert_eq!(other.num_sites(), 2500);
    }

    #[test]
    fn with_aod_dim_overrides() {
        let spec = MachineSpec::quera_aquila_256().with_aod_dim(5);
        assert_eq!(spec.aod_dim, 5);
        assert_eq!(spec.grid_dim, 16);
    }
}
