//! 2D geometry primitives (positions are in micrometres).

/// A point in the machine plane, µm.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// X coordinate, µm.
    pub x: f64,
    /// Y coordinate, µm.
    pub y: f64,
}

impl Point {
    /// Construct a point.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the sqrt in hot loops).
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Chebyshev (max-axis) distance, used for conservative path checks.
    pub fn chebyshev(&self, other: &Point) -> f64 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }
}

/// Whether two atoms at `a` and `b` can interact through the Rydberg
/// interaction radius `r` (Fig. 3a: circles of radius r/2 touching).
pub fn within_interaction(a: &Point, b: &Point, r: f64) -> bool {
    a.distance_sq(b) <= r * r + 1e-9
}

/// Whether an atom at `a` blockades an atom at `b` given interaction radius
/// `r` and blockade factor `factor` (typically 2.5).
pub fn within_blockade(a: &Point, b: &Point, r: f64, factor: f64) -> bool {
    let br = r * factor;
    a.distance_sq(b) <= br * br + 1e-9
}

/// Whether two atoms violate the minimum separation constraint.
pub fn violates_separation(a: &Point, b: &Point, min_sep: f64) -> bool {
    a.distance_sq(b) < min_sep * min_sep - 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance_sq(&b), 25.0);
        assert_eq!(a.chebyshev(&b), 4.0);
    }

    #[test]
    fn interaction_boundary_inclusive() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 0.0);
        assert!(within_interaction(&a, &b, 2.0));
        assert!(!within_interaction(&a, &b, 1.9));
    }

    #[test]
    fn blockade_is_wider_than_interaction() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 0.0);
        // Out of interaction range (r=2) but inside blockade (2.5 * 2 = 5).
        assert!(!within_interaction(&a, &b, 2.0));
        assert!(within_blockade(&a, &b, 2.0, 2.5));
        let c = Point::new(5.1, 0.0);
        assert!(!within_blockade(&a, &c, 2.0, 2.5));
    }

    #[test]
    fn separation_violation_is_strict() {
        let a = Point::new(0.0, 0.0);
        assert!(violates_separation(&a, &Point::new(2.9, 0.0), 3.0));
        assert!(!violates_separation(&a, &Point::new(3.0, 0.0), 3.0));
        assert!(!violates_separation(&a, &Point::new(3.1, 0.0), 3.0));
    }
}
