//! 2D geometry primitives (positions are in micrometres).

/// A point in the machine plane, µm.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// X coordinate, µm.
    pub x: f64,
    /// Y coordinate, µm.
    pub y: f64,
}

impl Point {
    /// Construct a point.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the sqrt in hot loops).
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Chebyshev (max-axis) distance, used for conservative path checks.
    pub fn chebyshev(&self, other: &Point) -> f64 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }
}

/// Whether two atoms at `a` and `b` can interact through the Rydberg
/// interaction radius `r` (Fig. 3a: circles of radius r/2 touching).
pub fn within_interaction(a: &Point, b: &Point, r: f64) -> bool {
    a.distance_sq(b) <= r * r + 1e-9
}

/// Whether an atom at `a` blockades an atom at `b` given interaction radius
/// `r` and blockade factor `factor` (typically 2.5).
pub fn within_blockade(a: &Point, b: &Point, r: f64, factor: f64) -> bool {
    let br = r * factor;
    a.distance_sq(b) <= br * br + 1e-9
}

/// Whether two atoms violate the minimum separation constraint.
pub fn violates_separation(a: &Point, b: &Point, min_sep: f64) -> bool {
    a.distance_sq(b) < min_sep * min_sep - 1e-9
}

/// Closest distance between point `p` and the segment `a`-`b`.
pub fn point_segment_distance(p: &Point, a: &Point, b: &Point) -> f64 {
    let (dx, dy) = (b.x - a.x, b.y - a.y);
    let len_sq = dx * dx + dy * dy;
    if len_sq <= 0.0 {
        return p.distance(a);
    }
    let t = (((p.x - a.x) * dx + (p.y - a.y) * dy) / len_sq).clamp(0.0, 1.0);
    p.distance(&Point::new(a.x + t * dx, a.y + t * dy))
}

/// Closest distance between segments `a1`-`a2` and `b1`-`b2`.
///
/// Used by the multi-mover scheduler's corridor-disjointness rule: two
/// movement corridors interfere when this distance drops below the
/// blockade radius. Proper intersection is distance 0; otherwise the
/// minimum is attained at an endpoint against the other segment.
pub fn segment_distance(a1: &Point, a2: &Point, b1: &Point, b2: &Point) -> f64 {
    // Orientation-based proper-intersection test.
    let cross =
        |o: &Point, a: &Point, b: &Point| (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
    let (c1, c2) = (cross(a1, a2, b1), cross(a1, a2, b2));
    let (c3, c4) = (cross(b1, b2, a1), cross(b1, b2, a2));
    if ((c1 > 0.0 && c2 < 0.0) || (c1 < 0.0 && c2 > 0.0))
        && ((c3 > 0.0 && c4 < 0.0) || (c3 < 0.0 && c4 > 0.0))
    {
        return 0.0;
    }
    point_segment_distance(b1, a1, a2)
        .min(point_segment_distance(b2, a1, a2))
        .min(point_segment_distance(a1, b1, b2))
        .min(point_segment_distance(a2, b1, b2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance_sq(&b), 25.0);
        assert_eq!(a.chebyshev(&b), 4.0);
    }

    #[test]
    fn interaction_boundary_inclusive() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 0.0);
        assert!(within_interaction(&a, &b, 2.0));
        assert!(!within_interaction(&a, &b, 1.9));
    }

    #[test]
    fn blockade_is_wider_than_interaction() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 0.0);
        // Out of interaction range (r=2) but inside blockade (2.5 * 2 = 5).
        assert!(!within_interaction(&a, &b, 2.0));
        assert!(within_blockade(&a, &b, 2.0, 2.5));
        let c = Point::new(5.1, 0.0);
        assert!(!within_blockade(&a, &c, 2.0, 2.5));
    }

    #[test]
    fn separation_violation_is_strict() {
        let a = Point::new(0.0, 0.0);
        assert!(violates_separation(&a, &Point::new(2.9, 0.0), 3.0));
        assert!(!violates_separation(&a, &Point::new(3.0, 0.0), 3.0));
        assert!(!violates_separation(&a, &Point::new(3.1, 0.0), 3.0));
    }

    #[test]
    fn point_to_segment() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        // Projection inside the segment, beyond either end, degenerate.
        assert!((point_segment_distance(&Point::new(5.0, 3.0), &a, &b) - 3.0).abs() < 1e-12);
        assert!((point_segment_distance(&Point::new(-4.0, 3.0), &a, &b) - 5.0).abs() < 1e-12);
        assert!((point_segment_distance(&Point::new(13.0, 4.0), &a, &b) - 5.0).abs() < 1e-12);
        assert!((point_segment_distance(&Point::new(3.0, 4.0), &a, &a) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn segment_to_segment() {
        let o = Point::new(0.0, 0.0);
        let e = Point::new(10.0, 0.0);
        // Crossing segments touch.
        assert_eq!(segment_distance(&o, &e, &Point::new(5.0, -2.0), &Point::new(5.0, 2.0)), 0.0);
        // Parallel segments keep their offset.
        let d = segment_distance(&o, &e, &Point::new(0.0, 4.0), &Point::new(10.0, 4.0));
        assert!((d - 4.0).abs() < 1e-12);
        // Disjoint collinear segments measure endpoint to endpoint.
        let d = segment_distance(&o, &e, &Point::new(13.0, 0.0), &Point::new(20.0, 0.0));
        assert!((d - 3.0).abs() < 1e-12);
        // Skew segments: closest point is an endpoint projection.
        let d = segment_distance(&o, &e, &Point::new(12.0, 5.0), &Point::new(20.0, 5.0));
        assert!((d - (4.0f64 + 25.0).sqrt()).abs() < 1e-12);
    }
}
