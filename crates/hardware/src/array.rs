//! Mutable atom-array state: which trap holds each atom and where it is.
//!
//! This models the machine of Fig. 2/3: static SLM sites on the discretized
//! grid plus mobile AOD rows/columns. The Parallax discipline of *one atom
//! per AOD row/column pair* (Section II-B) is enforced here. All mutating
//! operations validate the paper's hardware constraints:
//!
//! 1. minimum atom separation,
//! 2. AOD rows/columns never cross (index order == coordinate order),
//! 3. atoms on a row/column move in tandem (trivially satisfied with one
//!    atom per line; the parallelized copies share the same line motion by
//!    construction, Section II-E).

use crate::geometry::{violates_separation, Point};
use crate::grid::{Site, SiteGrid};
use crate::params::MachineSpec;
use std::fmt;

/// Which trap currently holds an atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// Static SLM site.
    Slm(Site),
    /// Mobile AOD crossing: the atom sits at `(col_x, row_y)`.
    Aod {
        /// AOD row index.
        row: u16,
        /// AOD column index.
        col: u16,
    },
}

/// A hardware-constraint violation detected during validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Violation {
    /// Two owned AOD rows would cross (or sit closer than the line gap).
    RowOrdering {
        /// Lower-indexed row.
        row_a: u16,
        /// Higher-indexed row.
        row_b: u16,
    },
    /// Two owned AOD columns would cross.
    ColOrdering {
        /// Lower-indexed column.
        col_a: u16,
        /// Higher-indexed column.
        col_b: u16,
    },
    /// Two atoms violate the minimum separation distance.
    Separation {
        /// First atom (qubit id).
        q1: u32,
        /// Second atom (qubit id).
        q2: u32,
        /// Their distance, µm.
        distance: f64,
    },
    /// An atom left the machine's addressable area.
    OutOfBounds {
        /// Offending atom (qubit id).
        q: u32,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::RowOrdering { row_a, row_b } => {
                write!(f, "AOD rows {row_a} and {row_b} would cross")
            }
            Violation::ColOrdering { col_a, col_b } => {
                write!(f, "AOD columns {col_a} and {col_b} would cross")
            }
            Violation::Separation { q1, q2, distance } => {
                write!(f, "atoms q{q1} and q{q2} at distance {distance:.3} µm violate separation")
            }
            Violation::OutOfBounds { q } => write!(f, "atom q{q} is out of bounds"),
        }
    }
}

/// A requested AOD move: place qubit `q` at `(x, y)` µm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AodMove {
    /// Qubit to move (must be AOD-trapped).
    pub q: u32,
    /// Target x, µm.
    pub x: f64,
    /// Target y, µm.
    pub y: f64,
}

/// Uniform-bucket spatial index over the committed positions of placed
/// atoms. One cell per site pitch; an atom lives in exactly one cell's
/// intrusive singly-linked chain (`heads`/`next` — two flat arrays, no
/// per-cell allocations, O(1) insert, O(chain) unlink), maintained
/// through every position-changing operation. A radius query visits only
/// the cells overlapping the query disc's bounding box, so the movement
/// planner's obstruction scans touch a handful of nearby atoms instead of
/// sweeping the whole array.
#[derive(Debug, Clone)]
struct SpatialIndex {
    cells: crate::grid::CellGeometry,
    /// Per cell: first qubit id in the chain, or `EMPTY`.
    heads: Vec<i32>,
    /// Per qubit: next qubit in its cell's chain, or `EMPTY`.
    next: Vec<i32>,
}

const EMPTY: i32 = -1;

impl SpatialIndex {
    fn new(extent_um: f64, margin_um: f64, cell_um: f64, num_qubits: usize) -> Self {
        let cells = crate::grid::CellGeometry::new(extent_um, margin_um, cell_um);
        Self { heads: vec![EMPTY; cells.num_cells()], next: vec![EMPTY; num_qubits], cells }
    }

    fn insert(&mut self, q: u32, p: Point) {
        let c = self.cells.cell_of(p);
        self.next[q as usize] = self.heads[c];
        self.heads[c] = q as i32;
    }

    fn remove(&mut self, q: u32, p: Point) {
        let c = self.cells.cell_of(p);
        let mut link = self.heads[c];
        if link == q as i32 {
            self.heads[c] = self.next[q as usize];
            return;
        }
        while link != EMPTY {
            let cur = link as usize;
            if self.next[cur] == q as i32 {
                self.next[cur] = self.next[q as usize];
                return;
            }
            link = self.next[cur];
        }
        panic!("atom q{q} is not indexed at its position");
    }

    fn relocate(&mut self, q: u32, from: Point, to: Point) {
        let (a, b) = (self.cells.cell_of(from), self.cells.cell_of(to));
        if a != b {
            self.remove(q, from);
            self.next[q as usize] = self.heads[b];
            self.heads[b] = q as i32;
        }
    }

    /// Visit every indexed atom in the cells overlapping the disc's
    /// bounding box (a superset of the atoms within `radius`; callers
    /// filter by exact distance).
    fn for_each_within(&self, center: Point, radius: f64, mut f: impl FnMut(u32)) {
        self.cells.for_each_cell_within(center, radius, |cell| {
            let mut link = self.heads[cell];
            while link != EMPTY {
                f(link as u32);
                link = self.next[link as usize];
            }
        });
    }
}

/// Per-qubit trap tag: unplaced. The tag values deliberately equal the
/// discriminants [`AtomArray::static_fingerprint`] hashes, so the packed
/// state and the fingerprint stay aligned by construction.
const TAG_NONE: u8 = 0;
/// Per-qubit trap tag: static SLM site (payload lanes hold the site).
const TAG_SLM: u8 = 1;
/// Per-qubit trap tag: mobile AOD crossing (payload lanes hold row/col).
const TAG_AOD: u8 = 2;
/// Sentinel for an unowned AOD line in the packed owner lanes.
const NO_OWNER: u32 = u32::MAX;

/// The full atom-array state for one machine.
///
/// The per-qubit and per-line state is stored as packed parallel lanes
/// (structure-of-arrays) rather than `Vec<Option<…>>`: a one-byte tag lane
/// plus two `u32` payload lanes per qubit, and sentinel-encoded flat
/// `f64`/`u32` arrays per AOD line. The blockade/occupancy scans and the
/// fingerprint walks iterate contiguous dense memory, which is what keeps
/// them cheap at 4,096 sites.
#[derive(Debug, Clone)]
pub struct AtomArray {
    spec: MachineSpec,
    grid: SiteGrid,
    /// Per qubit: [`TAG_NONE`] | [`TAG_SLM`] | [`TAG_AOD`].
    trap_tags: Vec<u8>,
    /// Per qubit: SLM site column, or AOD row (meaning chosen by the tag).
    trap_a: Vec<u32>,
    /// Per qubit: SLM site row, or AOD column (meaning chosen by the tag).
    trap_b: Vec<u32>,
    positions: Vec<Point>,
    /// Per AOD row: line y-coordinate; meaningful only while owned.
    row_y: Vec<f64>,
    /// Per AOD column: line x-coordinate; meaningful only while owned.
    col_x: Vec<f64>,
    /// Per AOD row: owning qubit, or [`NO_OWNER`].
    row_owner: Vec<u32>,
    /// Per AOD column: owning qubit, or [`NO_OWNER`].
    col_owner: Vec<u32>,
    index: SpatialIndex,
    positions_epoch: u64,
}

impl AtomArray {
    /// Create an array for `num_qubits` logical atoms on machine `spec`.
    pub fn new(spec: MachineSpec, num_qubits: usize) -> Self {
        assert!(
            num_qubits <= spec.num_sites(),
            "{num_qubits} qubits exceed the {} sites of {}",
            spec.num_sites(),
            spec.name
        );
        let grid = SiteGrid::new(&spec);
        let index =
            SpatialIndex::new(spec.extent_um(), grid.pitch_um(), grid.pitch_um(), num_qubits);
        Self {
            grid,
            trap_tags: vec![TAG_NONE; num_qubits],
            trap_a: vec![0; num_qubits],
            trap_b: vec![0; num_qubits],
            positions: vec![Point::default(); num_qubits],
            row_y: vec![0.0; spec.aod_dim],
            col_x: vec![0.0; spec.aod_dim],
            row_owner: vec![NO_OWNER; spec.aod_dim],
            col_owner: vec![NO_OWNER; spec.aod_dim],
            index,
            positions_epoch: 0,
            spec,
        }
    }

    /// The machine specification.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// The underlying site grid.
    pub fn grid(&self) -> &SiteGrid {
        &self.grid
    }

    /// Number of logical atoms.
    pub fn num_qubits(&self) -> usize {
        self.trap_tags.len()
    }

    /// Current physical position of qubit `q`, µm.
    pub fn position(&self, q: u32) -> Point {
        self.positions[q as usize]
    }

    /// Reconstruct the trap enum for qubit index `q` from the packed lanes.
    #[inline]
    fn trap_of(&self, q: usize) -> Option<Trap> {
        match self.trap_tags[q] {
            TAG_NONE => None,
            TAG_SLM => Some(Trap::Slm((self.trap_a[q] as u16, self.trap_b[q] as u16))),
            _ => Some(Trap::Aod { row: self.trap_a[q] as u16, col: self.trap_b[q] as u16 }),
        }
    }

    /// Current trap of qubit `q` (`None` until placed).
    pub fn trap(&self, q: u32) -> Option<Trap> {
        self.trap_of(q as usize)
    }

    /// Whether qubit `q` is AOD-trapped.
    pub fn is_aod(&self, q: u32) -> bool {
        self.trap_tags[q as usize] == TAG_AOD
    }

    /// The qubit currently owning AOD row `row`, if any. O(1) against the
    /// packed owner lane — the movement planner resolves line ownership on
    /// every recursive displacement probe.
    pub fn row_owner(&self, row: u16) -> Option<u32> {
        let q = self.row_owner[row as usize];
        (q != NO_OWNER).then_some(q)
    }

    /// The qubit currently owning AOD column `col`, if any (O(1)).
    pub fn col_owner(&self, col: u16) -> Option<u32> {
        let q = self.col_owner[col as usize];
        (q != NO_OWNER).then_some(q)
    }

    /// All AOD-trapped qubits.
    pub fn aod_qubits(&self) -> Vec<u32> {
        (0..self.trap_tags.len() as u32).filter(|&q| self.is_aod(q)).collect()
    }

    /// Visit every AOD-trapped qubit in ascending id order without
    /// allocating (the failed-move memoization snapshots positions through
    /// this on every probe decision).
    pub fn for_each_aod(&self, mut f: impl FnMut(u32)) {
        for (q, &tag) in self.trap_tags.iter().enumerate() {
            if tag == TAG_AOD {
                f(q as u32);
            }
        }
    }

    /// Monotone counter bumped by every state mutation (placements,
    /// transfers, releases, committed move batches). Equal epochs guarantee
    /// identical atom positions; after the epoch moved on, only an exact
    /// position comparison can tell whether the configuration really
    /// changed (e.g. atoms moved out and back home between layers).
    pub fn positions_epoch(&self) -> u64 {
        self.positions_epoch
    }

    /// Write every AOD-trapped qubit's `(id, position)` into `out`
    /// (cleared first), ascending id — the mobile half of the array state.
    /// The movement caches snapshot this on every record/verify.
    pub fn aod_snapshot(&self, out: &mut Vec<(u32, Point)>) {
        out.clear();
        self.for_each_aod(|q| out.push((q, self.positions[q as usize])));
    }

    /// Whether the current AOD configuration is exactly `snapshot` (same
    /// qubits in the same traps at bitwise-equal positions). Equivalent to
    /// `{ let mut s = vec![]; self.aod_snapshot(&mut s); s == snapshot }`
    /// without the allocation — the hot staleness check of the movement
    /// caches, where a stale epoch usually means "moved out and back home".
    pub fn aod_config_matches(&self, snapshot: &[(u32, Point)]) -> bool {
        let mut rest = snapshot;
        for (q, &tag) in self.trap_tags.iter().enumerate() {
            if tag == TAG_AOD {
                match rest.split_first() {
                    Some((&(sq, sp), tail)) if sq == q as u32 && sp == self.positions[q] => {
                        rest = tail;
                    }
                    _ => return false,
                }
            }
        }
        rest.is_empty()
    }

    /// Stable fingerprint of the AOD configuration: every AOD qubit's id
    /// and position by IEEE bit pattern, ascending id. Together with
    /// [`Self::static_fingerprint`] it content-addresses the full array
    /// state (cross-compile move-plan cache key); equal configurations
    /// fingerprint equally across processes.
    pub fn aod_fingerprint(&self) -> u64 {
        let _sp = parallax_trace::span!("fingerprint.aod");
        let mut h = crate::fingerprint::StableHasher::new();
        self.for_each_aod(|q| {
            let p = self.positions[q as usize];
            h.write_u64(u64::from(q)).write_f64(p.x).write_f64(p.y);
        });
        h.finish()
    }

    /// Stable fingerprint of everything that does *not* change while the
    /// scheduler runs: the machine, and every placed atom's trap
    /// assignment plus — for SLM atoms — its position. AOD positions are
    /// deliberately excluded (they live in [`Self::aod_fingerprint`]); AOD
    /// *line assignments* are included because they steer the planner's
    /// ordering constraints and are fixed for the compile.
    pub fn static_fingerprint(&self) -> u64 {
        let _sp = parallax_trace::span!("fingerprint.static");
        let mut h = crate::fingerprint::StableHasher::new();
        h.write_u64(self.spec.fingerprint()).write_usize(self.trap_tags.len());
        for (q, &tag) in self.trap_tags.iter().enumerate() {
            // The tag lane doubles as the hashed discriminant (0/1/2); the
            // payload lanes carry exactly what the enum match used to hash,
            // so the fingerprint is byte-identical to the nested layout.
            h.write_u64(u64::from(tag));
            if tag == TAG_SLM {
                let p = self.positions[q];
                h.write_u64(u64::from(self.trap_a[q])).write_u64(u64::from(self.trap_b[q]));
                h.write_f64(p.x).write_f64(p.y);
            } else if tag == TAG_AOD {
                h.write_u64(u64::from(self.trap_a[q])).write_u64(u64::from(self.trap_b[q]));
            }
        }
        h.finish()
    }

    /// Snapshot the complete placed-atom state: `(qubit, trap, position)`
    /// for every placed qubit, ascending id. The cross-compile plan cache
    /// stores this with each entry and verifies it exactly before reuse,
    /// so a (vanishingly unlikely) fingerprint collision degrades to a
    /// cache miss instead of a wrong plan.
    pub fn placed_snapshot(&self) -> Vec<(u32, Trap, Point)> {
        (0..self.trap_tags.len())
            .filter_map(|q| self.trap_of(q).map(|t| (q as u32, t, self.positions[q])))
            .collect()
    }

    /// Whether the current placed-atom state is exactly `snapshot`
    /// (allocation-free twin of comparing against
    /// [`Self::placed_snapshot`]).
    pub fn placed_state_matches(&self, snapshot: &[(u32, Trap, Point)]) -> bool {
        let mut rest = snapshot;
        for q in 0..self.trap_tags.len() {
            if let Some(t) = self.trap_of(q) {
                match rest.split_first() {
                    Some((&(sq, st, sp), tail))
                        if sq == q as u32 && st == t && sp == self.positions[q] =>
                    {
                        rest = tail;
                    }
                    _ => return false,
                }
            }
        }
        rest.is_empty()
    }

    /// Visit every placed atom in the spatial-index cells overlapping the
    /// disc of `radius` around `center` — a superset of the atoms within
    /// `radius`; callers filter by exact distance. Visit order follows the
    /// index's bucket layout and is deterministic for a given operation
    /// history, but is *not* sorted by qubit id.
    pub fn for_each_atom_within(&self, center: Point, radius: f64, f: impl FnMut(u32)) {
        self.index.for_each_within(center, radius, f);
    }

    /// Euclidean distance between two qubits, µm.
    pub fn distance(&self, a: u32, b: u32) -> f64 {
        self.positions[a as usize].distance(&self.positions[b as usize])
    }

    /// Place an unplaced qubit into the SLM at `site`.
    pub fn place_in_slm(&mut self, q: u32, site: Site) {
        assert!(self.trap_tags[q as usize] == TAG_NONE, "qubit {q} is already placed");
        self.grid.occupy(site);
        self.set_trap_slm(q as usize, site);
        self.positions[q as usize] = self.grid.site_position(site);
        self.index.insert(q, self.positions[q as usize]);
        self.positions_epoch += 1;
    }

    #[inline]
    fn set_trap_slm(&mut self, q: usize, site: Site) {
        self.trap_tags[q] = TAG_SLM;
        self.trap_a[q] = u32::from(site.0);
        self.trap_b[q] = u32::from(site.1);
    }

    #[inline]
    fn set_trap_aod(&mut self, q: usize, row: u16, col: u16) {
        self.trap_tags[q] = TAG_AOD;
        self.trap_a[q] = u32::from(row);
        self.trap_b[q] = u32::from(col);
    }

    /// Transfer a SLM-trapped qubit into the AOD at line pair `(row, col)`,
    /// keeping its current position (line coordinates snap to the atom).
    ///
    /// Fails (without mutating) if the lines are taken or the resulting
    /// line coordinates would break row/column ordering.
    pub fn transfer_to_aod(&mut self, q: u32, row: u16, col: u16) -> Result<(), Violation> {
        let site = match self.trap_of(q as usize) {
            Some(Trap::Slm(site)) => site,
            other => panic!("qubit {q} is not SLM-trapped (trap = {other:?})"),
        };
        assert!(self.row_owner[row as usize] == NO_OWNER, "AOD row {row} is already owned");
        assert!(self.col_owner[col as usize] == NO_OWNER, "AOD column {col} is already owned");
        let pos = self.positions[q as usize];
        if let Some(v) = self.check_line_orders(row, pos.y, col, pos.x) {
            return Err(v);
        }
        self.grid.vacate(site);
        self.set_trap_aod(q as usize, row, col);
        self.row_owner[row as usize] = q;
        self.col_owner[col as usize] = q;
        self.row_y[row as usize] = pos.y;
        self.col_x[col as usize] = pos.x;
        self.positions_epoch += 1;
        Ok(())
    }

    /// Like [`AtomArray::transfer_to_aod`], but place the atom at explicit
    /// coordinates `(x, y)` instead of its current position. Parallax uses
    /// this when resolving shared row/column coordinates by nudging
    /// (Section II-C). Validates line ordering and atom separation at the
    /// target; on error nothing changes.
    pub fn transfer_to_aod_at(
        &mut self,
        q: u32,
        row: u16,
        col: u16,
        x: f64,
        y: f64,
    ) -> Result<(), Violation> {
        let site = match self.trap_of(q as usize) {
            Some(Trap::Slm(site)) => site,
            other => panic!("qubit {q} is not SLM-trapped (trap = {other:?})"),
        };
        assert!(self.row_owner[row as usize] == NO_OWNER, "AOD row {row} is already owned");
        assert!(self.col_owner[col as usize] == NO_OWNER, "AOD column {col} is already owned");
        if let Some(v) = self.check_line_orders(row, y, col, x) {
            return Err(v);
        }
        let target = Point::new(x, y);
        for (other, &tag) in self.trap_tags.iter().enumerate() {
            if tag == TAG_NONE || other as u32 == q {
                continue;
            }
            if violates_separation(&target, &self.positions[other], self.spec.min_separation_um) {
                return Err(Violation::Separation {
                    q1: q,
                    q2: other as u32,
                    distance: target.distance(&self.positions[other]),
                });
            }
        }
        self.grid.vacate(site);
        self.set_trap_aod(q as usize, row, col);
        self.row_owner[row as usize] = q;
        self.col_owner[col as usize] = q;
        self.row_y[row as usize] = y;
        self.col_x[col as usize] = x;
        self.index.relocate(q, self.positions[q as usize], target);
        self.positions[q as usize] = target;
        self.positions_epoch += 1;
        Ok(())
    }

    /// Release an AOD-trapped qubit back into the SLM at `site` (the second
    /// half of a trap-change; the paper's release/retrap fallback).
    pub fn release_to_slm(&mut self, q: u32, site: Site) {
        let (row, col) = match self.trap_of(q as usize) {
            Some(Trap::Aod { row, col }) => (row, col),
            other => panic!("qubit {q} is not AOD-trapped (trap = {other:?})"),
        };
        self.grid.occupy(site);
        self.row_owner[row as usize] = NO_OWNER;
        self.col_owner[col as usize] = NO_OWNER;
        self.row_y[row as usize] = 0.0;
        self.col_x[col as usize] = 0.0;
        self.set_trap_slm(q as usize, site);
        let home = self.grid.site_position(site);
        self.index.relocate(q, self.positions[q as usize], home);
        self.positions[q as usize] = home;
        self.positions_epoch += 1;
    }

    /// Validate a batch of AOD moves against the final configuration and, if
    /// clean, commit them atomically. On error nothing changes and the first
    /// detected violation is returned.
    ///
    /// Batch commits model the paper's recursive movement resolution: the
    /// primary move plus all recursive displacements of obstructing atoms
    /// land together.
    pub fn apply_aod_moves(&mut self, moves: &[AodMove]) -> Result<(), Violation> {
        if let Some(v) = self.first_aod_move_violation(moves) {
            return Err(v);
        }
        for m in moves {
            let (row, col) = match self.trap_of(m.q as usize) {
                Some(Trap::Aod { row, col }) => (row, col),
                other => panic!("qubit {} is not AOD-trapped (trap = {other:?})", m.q),
            };
            self.row_y[row as usize] = m.y;
            self.col_x[col as usize] = m.x;
            let to = Point::new(m.x, m.y);
            self.index.relocate(m.q, self.positions[m.q as usize], to);
            self.positions[m.q as usize] = to;
        }
        if !moves.is_empty() {
            self.positions_epoch += 1;
        }
        Ok(())
    }

    /// Check a batch of AOD moves, returning every violation of the *final*
    /// configuration (empty = the batch is safe to commit).
    pub fn check_aod_moves(&self, moves: &[AodMove]) -> Vec<Violation> {
        let mut out = Vec::new();
        self.scan_aod_moves(moves, |v| {
            out.push(v);
            true
        });
        out
    }

    /// First violation of a batch of AOD moves, or `None` when the batch is
    /// safe. Exactly `check_aod_moves(moves).first().copied()`, but the scan
    /// stops at the first hit — the movement planner's recursive resolver
    /// (which only ever consumes the first violation) probes thousands of
    /// candidate configurations per plan, and the full scan over every
    /// atom pair was the compile hot spot on large circuits.
    pub fn first_aod_move_violation(&self, moves: &[AodMove]) -> Option<Violation> {
        let mut first = None;
        self.scan_aod_moves(moves, |v| {
            first = Some(v);
            false
        });
        first
    }

    /// Shared traversal behind [`Self::check_aod_moves`] and
    /// [`Self::first_aod_move_violation`]: emits violations of the
    /// hypothetical post-move configuration in a fixed order (bounds, row
    /// ordering, column ordering, pairwise separation); `emit` returns
    /// `false` to stop the scan. One traversal serving both callers keeps
    /// the "first violation" — which steers every recursive move plan and
    /// therefore the compiled schedule — identical between them by
    /// construction.
    ///
    /// The hypothetical configuration is an *overlay* (small vectors of
    /// moved qubits/lines consulted before the committed state) rather
    /// than a clone of the full array, so a scan that exits early does
    /// O(moves) setup work instead of O(atoms).
    fn scan_aod_moves(&self, moves: &[AodMove], mut emit: impl FnMut(Violation) -> bool) {
        // Overlay of the final configuration; later moves of the same
        // qubit/line overwrite earlier ones, as a sequential commit would.
        let mut moved: Vec<(u32, Point)> = Vec::with_capacity(moves.len());
        let mut row_over: Vec<(u16, f64)> = Vec::with_capacity(moves.len());
        let mut col_over: Vec<(u16, f64)> = Vec::with_capacity(moves.len());
        fn upsert<K: PartialEq, V>(list: &mut Vec<(K, V)>, key: K, value: V) {
            match list.iter_mut().find(|(k, _)| *k == key) {
                Some(entry) => entry.1 = value,
                None => list.push((key, value)),
            }
        }
        for m in moves {
            match self.trap_of(m.q as usize) {
                Some(Trap::Aod { row, col }) => {
                    upsert(&mut moved, m.q, Point::new(m.x, m.y));
                    upsert(&mut row_over, row, m.y);
                    upsert(&mut col_over, col, m.x);
                }
                other => panic!("qubit {} is not AOD-trapped (trap = {other:?})", m.q),
            }
        }
        let pos_of = |q: usize| -> Point {
            moved
                .iter()
                .find(|&&(mq, _)| mq as usize == q)
                .map(|&(_, p)| p)
                .unwrap_or(self.positions[q])
        };

        // Bounds: atoms must stay within one pitch of the site grid.
        let margin = self.grid.pitch_um();
        let max = self.spec.extent_um() + margin;
        for m in moves {
            let p = pos_of(m.q as usize);
            if (p.x < -margin || p.y < -margin || p.x > max || p.y > max)
                && !emit(Violation::OutOfBounds { q: m.q })
            {
                return;
            }
        }
        // Row/column ordering with the minimum line gap.
        let gap = self.line_gap();
        let mut prev: Option<(u16, f64)> = None;
        for (i, &owner) in self.row_owner.iter().enumerate() {
            if owner == NO_OWNER {
                continue;
            }
            let y = row_over
                .iter()
                .find(|&&(r, _)| r as usize == i)
                .map(|&(_, y)| y)
                .unwrap_or(self.row_y[i]);
            if let Some((pi, py)) = prev {
                if y - py < gap - 1e-9
                    && !emit(Violation::RowOrdering { row_a: pi, row_b: i as u16 })
                {
                    return;
                }
            }
            prev = Some((i as u16, y));
        }
        let mut prev: Option<(u16, f64)> = None;
        for (i, &owner) in self.col_owner.iter().enumerate() {
            if owner == NO_OWNER {
                continue;
            }
            let x = col_over
                .iter()
                .find(|&&(c, _)| c as usize == i)
                .map(|&(_, x)| x)
                .unwrap_or(self.col_x[i]);
            if let Some((pi, px)) = prev {
                if x - px < gap - 1e-9
                    && !emit(Violation::ColOrdering { col_a: pi, col_b: i as u16 })
                {
                    return;
                }
            }
            prev = Some((i as u16, x));
        }
        // Pairwise separation: every moved atom against every placed atom.
        // Candidates within the separation distance come from the spatial
        // occupancy index (committed positions); other *moved* atoms are
        // excluded there — their indexed positions are stale — and checked
        // against the overlay instead. Merging both sets in ascending
        // qubit-id order reproduces the naive full sweep's emission order
        // exactly, so the first violation (which steers every recursive
        // move plan) is identical by construction.
        let min_sep = self.spec.min_separation_um;
        let mut candidates: Vec<u32> = Vec::with_capacity(8);
        for m in moves {
            let p = pos_of(m.q as usize);
            candidates.clear();
            self.index.for_each_within(p, min_sep, |other| {
                if other != m.q && !moved.iter().any(|&(mq, _)| mq == other) {
                    candidates.push(other);
                }
            });
            for &(other, _) in &moved {
                // Skip duplicate reporting for pairs of moved atoms (the
                // lower-id member of the pair reports).
                if other < m.q {
                    candidates.push(other);
                }
            }
            candidates.sort_unstable();
            for &other in &candidates {
                let po = pos_of(other as usize);
                if violates_separation(&p, &po, min_sep)
                    && !emit(Violation::Separation {
                        q1: m.q,
                        q2: other,
                        distance: p.distance(&po),
                    })
                {
                    return;
                }
            }
        }
    }

    /// Naive full-sweep twin of [`Self::check_aod_moves`]: identical
    /// semantics, O(moves × atoms) pairwise separation scan with no
    /// spatial index. Kept as the test oracle for the indexed scan — the
    /// proptests assert both agree violation-for-violation on random
    /// batches.
    #[cfg(any(test, debug_assertions))]
    pub fn check_aod_moves_naive(&self, moves: &[AodMove]) -> Vec<Violation> {
        let mut out = Vec::new();
        self.scan_aod_moves_naive(moves, |v| {
            out.push(v);
            true
        });
        out
    }

    /// The pre-index traversal behind [`Self::check_aod_moves_naive`].
    #[cfg(any(test, debug_assertions))]
    fn scan_aod_moves_naive(&self, moves: &[AodMove], mut emit: impl FnMut(Violation) -> bool) {
        let mut moved: Vec<(u32, Point)> = Vec::with_capacity(moves.len());
        let mut row_over: Vec<(u16, f64)> = Vec::with_capacity(moves.len());
        let mut col_over: Vec<(u16, f64)> = Vec::with_capacity(moves.len());
        fn upsert<K: PartialEq, V>(list: &mut Vec<(K, V)>, key: K, value: V) {
            match list.iter_mut().find(|(k, _)| *k == key) {
                Some(entry) => entry.1 = value,
                None => list.push((key, value)),
            }
        }
        for m in moves {
            match self.trap_of(m.q as usize) {
                Some(Trap::Aod { row, col }) => {
                    upsert(&mut moved, m.q, Point::new(m.x, m.y));
                    upsert(&mut row_over, row, m.y);
                    upsert(&mut col_over, col, m.x);
                }
                other => panic!("qubit {} is not AOD-trapped (trap = {other:?})", m.q),
            }
        }
        let pos_of = |q: usize| -> Point {
            moved
                .iter()
                .find(|&&(mq, _)| mq as usize == q)
                .map(|&(_, p)| p)
                .unwrap_or(self.positions[q])
        };

        let margin = self.grid.pitch_um();
        let max = self.spec.extent_um() + margin;
        for m in moves {
            let p = pos_of(m.q as usize);
            if (p.x < -margin || p.y < -margin || p.x > max || p.y > max)
                && !emit(Violation::OutOfBounds { q: m.q })
            {
                return;
            }
        }
        let gap = self.line_gap();
        let mut prev: Option<(u16, f64)> = None;
        for (i, &owner) in self.row_owner.iter().enumerate() {
            if owner == NO_OWNER {
                continue;
            }
            let y = row_over
                .iter()
                .find(|&&(r, _)| r as usize == i)
                .map(|&(_, y)| y)
                .unwrap_or(self.row_y[i]);
            if let Some((pi, py)) = prev {
                if y - py < gap - 1e-9
                    && !emit(Violation::RowOrdering { row_a: pi, row_b: i as u16 })
                {
                    return;
                }
            }
            prev = Some((i as u16, y));
        }
        let mut prev: Option<(u16, f64)> = None;
        for (i, &owner) in self.col_owner.iter().enumerate() {
            if owner == NO_OWNER {
                continue;
            }
            let x = col_over
                .iter()
                .find(|&&(c, _)| c as usize == i)
                .map(|&(_, x)| x)
                .unwrap_or(self.col_x[i]);
            if let Some((pi, px)) = prev {
                if x - px < gap - 1e-9
                    && !emit(Violation::ColOrdering { col_a: pi, col_b: i as u16 })
                {
                    return;
                }
            }
            prev = Some((i as u16, x));
        }
        let min_sep = self.spec.min_separation_um;
        for m in moves {
            let p = pos_of(m.q as usize);
            for (other, &tag) in self.trap_tags.iter().enumerate() {
                if tag == TAG_NONE || other as u32 == m.q {
                    continue;
                }
                if other as u32 > m.q && moved.iter().any(|&(mq, _)| mq as usize == other) {
                    continue;
                }
                let po = pos_of(other);
                if violates_separation(&p, &po, min_sep)
                    && !emit(Violation::Separation {
                        q1: m.q,
                        q2: other as u32,
                        distance: p.distance(&po),
                    })
                {
                    return;
                }
            }
        }
    }

    /// Full-state invariant check (used by tests and debug assertions).
    pub fn validate(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        let gap = self.line_gap();
        let rows: Vec<(u16, f64)> = self
            .row_owner
            .iter()
            .enumerate()
            .filter(|&(_, &o)| o != NO_OWNER)
            .map(|(i, _)| (i as u16, self.row_y[i]))
            .collect();
        for w in rows.windows(2) {
            if w[1].1 - w[0].1 < gap - 1e-9 {
                out.push(Violation::RowOrdering { row_a: w[0].0, row_b: w[1].0 });
            }
        }
        let cols: Vec<(u16, f64)> = self
            .col_owner
            .iter()
            .enumerate()
            .filter(|&(_, &o)| o != NO_OWNER)
            .map(|(i, _)| (i as u16, self.col_x[i]))
            .collect();
        for w in cols.windows(2) {
            if w[1].1 - w[0].1 < gap - 1e-9 {
                out.push(Violation::ColOrdering { col_a: w[0].0, col_b: w[1].0 });
            }
        }
        let min_sep = self.spec.min_separation_um;
        for a in 0..self.trap_tags.len() {
            if self.trap_tags[a] == TAG_NONE {
                continue;
            }
            for b in (a + 1)..self.trap_tags.len() {
                if self.trap_tags[b] == TAG_NONE {
                    continue;
                }
                if violates_separation(&self.positions[a], &self.positions[b], min_sep) {
                    out.push(Violation::Separation {
                        q1: a as u32,
                        q2: b as u32,
                        distance: self.positions[a].distance(&self.positions[b]),
                    });
                }
            }
        }
        out
    }

    /// Minimum coordinate gap between adjacent owned AOD lines. Using the
    /// atom separation distance keeps crossing and trap-interference
    /// constraints aligned.
    pub fn line_gap(&self) -> f64 {
        self.spec.min_separation_um
    }

    fn check_line_orders(&self, row: u16, y: f64, col: u16, x: f64) -> Option<Violation> {
        let gap = self.line_gap();
        for (i, &owner) in self.row_owner.iter().enumerate() {
            if owner == NO_OWNER {
                continue;
            }
            let other_y = self.row_y[i];
            let i = i as u16;
            if i < row && other_y > y - gap + 1e-9 {
                return Some(Violation::RowOrdering { row_a: i, row_b: row });
            }
            if i > row && other_y < y + gap - 1e-9 {
                return Some(Violation::RowOrdering { row_a: row, row_b: i });
            }
        }
        for (i, &owner) in self.col_owner.iter().enumerate() {
            if owner == NO_OWNER {
                continue;
            }
            let other_x = self.col_x[i];
            let i = i as u16;
            if i < col && other_x > x - gap + 1e-9 {
                return Some(Violation::ColOrdering { col_a: i, col_b: col });
            }
            if i > col && other_x < x + gap - 1e-9 {
                return Some(Violation::ColOrdering { col_a: col, col_b: i });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> AtomArray {
        AtomArray::new(MachineSpec::quera_aquila_256(), 8)
    }

    #[test]
    fn placement_sets_position() {
        let mut a = array();
        a.place_in_slm(0, (2, 3));
        assert_eq!(a.position(0), Point::new(14.0, 21.0));
        assert_eq!(a.trap(0), Some(Trap::Slm((2, 3))));
        assert!(!a.is_aod(0));
        assert!(a.validate().is_empty());
    }

    #[test]
    #[should_panic(expected = "already placed")]
    fn double_placement_panics() {
        let mut a = array();
        a.place_in_slm(0, (0, 0));
        a.place_in_slm(0, (1, 1));
    }

    #[test]
    fn transfer_to_aod_keeps_position() {
        let mut a = array();
        a.place_in_slm(0, (4, 4));
        let before = a.position(0);
        a.transfer_to_aod(0, 3, 3).unwrap();
        assert_eq!(a.position(0), before);
        assert!(a.is_aod(0));
        assert_eq!(a.aod_qubits(), vec![0]);
        // The SLM site is free again.
        assert!(!a.grid().is_occupied((4, 4)));
    }

    #[test]
    fn owner_lookup_tracks_transfers_and_releases() {
        let mut a = array();
        a.place_in_slm(0, (4, 4));
        assert_eq!(a.row_owner(3), None);
        assert_eq!(a.col_owner(3), None);
        a.transfer_to_aod(0, 3, 3).unwrap();
        assert_eq!(a.row_owner(3), Some(0));
        assert_eq!(a.col_owner(3), Some(0));
        a.release_to_slm(0, (4, 4));
        assert_eq!(a.row_owner(3), None);
        assert_eq!(a.col_owner(3), None);
    }

    #[test]
    fn aod_ordering_enforced_on_transfer() {
        let mut a = array();
        a.place_in_slm(0, (4, 4)); // (28, 28)
        a.place_in_slm(1, (8, 8)); // (56, 56)
        a.transfer_to_aod(0, 3, 3).unwrap();
        // Row 2 < row 3 requires y(2) < y(3) = 28; qubit 1 has y = 56 -> violation.
        let err = a.transfer_to_aod(1, 2, 5).unwrap_err();
        assert!(matches!(err, Violation::RowOrdering { row_a: 2, row_b: 3 }));
        // Using a higher row index works.
        a.transfer_to_aod(1, 5, 5).unwrap();
        assert!(a.validate().is_empty());
    }

    #[test]
    fn moves_validate_and_commit() {
        let mut a = array();
        a.place_in_slm(0, (4, 4));
        a.place_in_slm(1, (10, 10));
        a.transfer_to_aod(0, 0, 0).unwrap();
        a.apply_aod_moves(&[AodMove { q: 0, x: 35.0, y: 35.0 }]).unwrap();
        assert_eq!(a.position(0), Point::new(35.0, 35.0));
        assert!(a.validate().is_empty());
    }

    #[test]
    fn move_into_separation_violation_rejected() {
        let mut a = array();
        a.place_in_slm(0, (4, 4));
        a.place_in_slm(1, (10, 10)); // (70, 70)
        a.transfer_to_aod(0, 0, 0).unwrap();
        let err = a.apply_aod_moves(&[AodMove { q: 0, x: 69.0, y: 70.0 }]).unwrap_err();
        assert!(matches!(err, Violation::Separation { .. }));
        // State unchanged.
        assert_eq!(a.position(0), Point::new(28.0, 28.0));
    }

    #[test]
    fn batch_move_can_resolve_mutual_obstruction() {
        let mut a = array();
        a.place_in_slm(0, (2, 2)); // (14, 14)
        a.place_in_slm(1, (6, 3)); // (42, 21)
        a.transfer_to_aod(0, 0, 0).unwrap();
        a.transfer_to_aod(1, 1, 1).unwrap();
        // Moving q0's column right next to q1's alone violates the column
        // gap constraint…
        let solo = a.check_aod_moves(&[AodMove { q: 0, x: 41.0, y: 14.0 }]);
        assert!(!solo.is_empty());
        // …but displacing q1 further right in the same batch resolves it.
        let batch = [AodMove { q: 0, x: 41.0, y: 14.0 }, AodMove { q: 1, x: 47.0, y: 21.0 }];
        assert!(a.check_aod_moves(&batch).is_empty());
        a.apply_aod_moves(&batch).unwrap();
        assert!(a.validate().is_empty());
    }

    #[test]
    fn crossing_rows_rejected_in_moves() {
        let mut a = array();
        a.place_in_slm(0, (2, 2)); // y=14
        a.place_in_slm(1, (6, 6)); // y=42
        a.transfer_to_aod(0, 0, 0).unwrap();
        a.transfer_to_aod(1, 1, 1).unwrap();
        // Move q0 (row 0) above q1 (row 1): rows would cross.
        let vs = a.check_aod_moves(&[AodMove { q: 0, x: 14.0, y: 60.0 }]);
        assert!(vs.iter().any(|v| matches!(v, Violation::RowOrdering { .. })), "{vs:?}");
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut a = array();
        a.place_in_slm(0, (2, 2));
        a.transfer_to_aod(0, 0, 0).unwrap();
        let vs = a.check_aod_moves(&[AodMove { q: 0, x: 1e4, y: 14.0 }]);
        assert!(vs.iter().any(|v| matches!(v, Violation::OutOfBounds { q: 0 })));
    }

    #[test]
    fn first_violation_matches_full_scan_on_every_batch_shape() {
        // The movement planner's resolution cascade is steered exclusively
        // by the first violation, so the early-exit scan must agree with
        // the full scan everywhere: clean batches, single violations of
        // each kind, and batches violating several constraints at once.
        let mut a = array();
        a.place_in_slm(0, (2, 2)); // (14, 14)
        a.place_in_slm(1, (6, 3)); // (42, 21)
        a.place_in_slm(2, (10, 10)); // (70, 70) static
        a.place_in_slm(3, (12, 4)); // (84, 28) static
        a.transfer_to_aod(0, 0, 0).unwrap();
        a.transfer_to_aod(1, 1, 1).unwrap();
        let batches: Vec<Vec<AodMove>> = vec![
            vec![],
            vec![AodMove { q: 0, x: 35.0, y: 35.0 }], // clean
            vec![AodMove { q: 0, x: 1e4, y: 14.0 }],  // out of bounds
            vec![AodMove { q: 0, x: 14.0, y: 60.0 }], // row crossing
            vec![AodMove { q: 0, x: 41.0, y: 14.0 }], // column gap
            vec![AodMove { q: 0, x: 69.0, y: 70.0 }], // separation
            vec![AodMove { q: 0, x: 41.0, y: 14.0 }, AodMove { q: 1, x: 47.0, y: 21.0 }],
            vec![AodMove { q: 0, x: 84.0, y: 27.0 }, AodMove { q: 1, x: 43.0, y: 60.0 }],
            vec![AodMove { q: 0, x: -1e4, y: 60.0 }, AodMove { q: 1, x: 69.5, y: 69.5 }],
            // Duplicate move of one qubit: the last write wins, as in a
            // sequential commit.
            vec![AodMove { q: 0, x: 69.0, y: 70.0 }, AodMove { q: 0, x: 35.0, y: 35.0 }],
        ];
        for batch in &batches {
            assert_eq!(
                a.first_aod_move_violation(batch),
                a.check_aod_moves(batch).first().copied(),
                "batch {batch:?}"
            );
        }
    }

    #[test]
    fn release_to_slm_frees_lines() {
        let mut a = array();
        a.place_in_slm(0, (2, 2));
        a.transfer_to_aod(0, 4, 4).unwrap();
        a.release_to_slm(0, (3, 3));
        assert!(!a.is_aod(0));
        assert!(a.grid().is_occupied((3, 3)));
        // Lines are reusable.
        a.place_in_slm(1, (8, 8));
        a.transfer_to_aod(1, 4, 4).unwrap();
    }

    #[test]
    fn validate_detects_separation_of_static_atoms() {
        // Two SLM atoms are always >= pitch apart by construction, so build
        // a violation through an AOD move bypass: directly place atoms on
        // adjacent sites is fine (7 µm >= 3 µm).
        let mut a = array();
        a.place_in_slm(0, (0, 0));
        a.place_in_slm(1, (0, 1));
        assert!(a.validate().is_empty());
    }

    #[test]
    fn transfer_at_nudged_coordinates() {
        let mut a = array();
        a.place_in_slm(0, (2, 2)); // (14, 14)
        a.place_in_slm(1, (2, 4)); // (14, 28): same x as q0
        a.transfer_to_aod_at(0, 0, 0, 14.0, 14.0).unwrap();
        // Same column coordinate would cross; nudged x resolves it.
        let err = a.transfer_to_aod_at(1, 1, 1, 14.0, 28.0).unwrap_err();
        assert!(matches!(err, Violation::ColOrdering { .. }));
        a.transfer_to_aod_at(1, 1, 1, 17.5, 28.0).unwrap();
        assert_eq!(a.position(1), Point::new(17.5, 28.0));
        assert!(a.validate().is_empty());
    }

    #[test]
    fn transfer_at_rejects_separation_violation() {
        let mut a = array();
        a.place_in_slm(0, (2, 2));
        a.place_in_slm(1, (4, 2)); // (28, 14)
        let err = a.transfer_to_aod_at(0, 0, 0, 26.5, 14.0).unwrap_err();
        assert!(matches!(err, Violation::Separation { .. }));
        // Unchanged: q0 still in SLM.
        assert!(!a.is_aod(0));
        assert!(a.grid().is_occupied((2, 2)));
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn too_many_qubits_rejected() {
        let _ = AtomArray::new(MachineSpec::quera_aquila_256(), 257);
    }

    #[test]
    fn spatial_index_query_finds_every_nearby_atom() {
        let mut a = array();
        a.place_in_slm(0, (2, 2));
        a.place_in_slm(1, (3, 2));
        a.place_in_slm(2, (10, 10));
        a.transfer_to_aod(0, 0, 0).unwrap();
        a.apply_aod_moves(&[AodMove { q: 0, x: 66.0, y: 70.0 }]).unwrap();
        // Query around q2 (70, 70): must see q2 and the moved q0 at its
        // *new* position, not the far-away q1.
        let mut seen = Vec::new();
        a.for_each_atom_within(Point::new(70.0, 70.0), 5.0, |q| seen.push(q));
        seen.sort_unstable();
        assert!(seen.contains(&0) && seen.contains(&2), "{seen:?}");
        assert!(!seen.contains(&1), "{seen:?}");
    }

    #[test]
    fn aod_snapshot_and_matcher_agree() {
        let mut a = array();
        a.place_in_slm(0, (2, 2));
        a.place_in_slm(1, (6, 6));
        a.place_in_slm(2, (10, 2));
        a.transfer_to_aod(0, 0, 0).unwrap();
        a.transfer_to_aod(1, 1, 1).unwrap();
        let mut snap = Vec::new();
        a.aod_snapshot(&mut snap);
        assert_eq!(snap.len(), 2);
        assert!(a.aod_config_matches(&snap));
        // Any divergence breaks the match: a move, a shorter snapshot, a
        // position nudge.
        let mut moved = a.clone();
        moved.apply_aod_moves(&[AodMove { q: 0, x: 15.0, y: 15.0 }]).unwrap();
        assert!(!moved.aod_config_matches(&snap));
        assert!(!a.aod_config_matches(&snap[..1]));
        let mut nudged = snap.clone();
        nudged[1].1.x += 1e-12;
        assert!(!a.aod_config_matches(&nudged));
        // Moving out and back home restores the match (the steady state
        // the movement caches exploit).
        let home = a.position(0);
        a.apply_aod_moves(&[AodMove { q: 0, x: 15.0, y: 15.0 }]).unwrap();
        a.apply_aod_moves(&[AodMove { q: 0, x: home.x, y: home.y }]).unwrap();
        assert!(a.aod_config_matches(&snap));
    }

    #[test]
    fn fingerprints_split_static_and_aod_state() {
        let mut a = array();
        a.place_in_slm(0, (2, 2));
        a.place_in_slm(1, (6, 6));
        a.transfer_to_aod(0, 0, 0).unwrap();
        let (s0, m0) = (a.static_fingerprint(), a.aod_fingerprint());
        // An AOD move changes only the AOD fingerprint…
        a.apply_aod_moves(&[AodMove { q: 0, x: 15.0, y: 15.0 }]).unwrap();
        assert_eq!(a.static_fingerprint(), s0);
        assert_ne!(a.aod_fingerprint(), m0);
        // …and returning home restores it exactly.
        a.apply_aod_moves(&[AodMove { q: 0, x: 14.0, y: 14.0 }]).unwrap();
        assert_eq!(a.aod_fingerprint(), m0);
        // A different SLM layout changes the static fingerprint.
        let mut b = array();
        b.place_in_slm(0, (2, 2));
        b.place_in_slm(1, (8, 6));
        b.transfer_to_aod(0, 0, 0).unwrap();
        assert_ne!(b.static_fingerprint(), s0);
        // A different machine does too (even with equal geometry of atoms).
        let mut c = AtomArray::new(MachineSpec::atom_1225(), 8);
        c.place_in_slm(0, (2, 2));
        c.place_in_slm(1, (6, 6));
        c.transfer_to_aod(0, 0, 0).unwrap();
        assert_ne!(c.static_fingerprint(), s0);
    }

    #[test]
    fn placed_snapshot_verifies_full_state() {
        let mut a = array();
        a.place_in_slm(0, (2, 2));
        a.place_in_slm(1, (6, 6));
        a.transfer_to_aod(1, 0, 0).unwrap();
        let snap = a.placed_snapshot();
        assert_eq!(snap.len(), 2);
        assert!(a.placed_state_matches(&snap));
        // A trap change breaks the match even at identical positions.
        let mut released = a.clone();
        released.release_to_slm(1, (6, 6));
        assert_eq!(released.position(1), a.position(1));
        assert!(!released.placed_state_matches(&snap));
        // An extra placed atom breaks it (suffix rule).
        let mut grown = a.clone();
        grown.place_in_slm(2, (10, 10));
        assert!(!grown.placed_state_matches(&snap));
        assert!(grown.placed_state_matches(&grown.placed_snapshot()));
    }

    #[test]
    fn positions_epoch_tracks_mutations() {
        let mut a = array();
        let e0 = a.positions_epoch();
        a.place_in_slm(0, (2, 2));
        assert!(a.positions_epoch() > e0);
        a.transfer_to_aod(0, 0, 0).unwrap();
        let e1 = a.positions_epoch();
        a.apply_aod_moves(&[]).unwrap(); // empty batch: no change
        assert_eq!(a.positions_epoch(), e1);
        a.apply_aod_moves(&[AodMove { q: 0, x: 35.0, y: 35.0 }]).unwrap();
        assert!(a.positions_epoch() > e1);
    }

    mod indexed_scan_matches_naive {
        use super::*;
        use proptest::prelude::*;

        /// A crowded array: eight AOD atoms on the grid diagonal (so the
        /// row/column orders are valid at transfer time) interleaved with
        /// sixteen static SLM atoms.
        fn crowded_array() -> AtomArray {
            let mut a = AtomArray::new(MachineSpec::quera_aquila_256(), 24);
            for q in 0..8u16 {
                a.place_in_slm(q as u32, (2 * q, 2 * q));
            }
            for q in 8..24u32 {
                let i = (q - 8) as u16;
                a.place_in_slm(q, ((i % 4) * 4 + 1, (i / 4) * 4 + 1));
            }
            for q in 0..8u32 {
                a.transfer_to_aod(q, q as u16, q as u16).unwrap();
            }
            a
        }

        proptest! {
            /// The spatial-index scan must agree with the naive full sweep
            /// violation-for-violation — the first violation steers every
            /// recursive move plan, and any divergence would change
            /// compiled schedules.
            #[test]
            fn on_random_move_batches(
                batch in proptest::collection::vec(
                    (0..8u32, -10.0f64..120.0, -10.0f64..120.0),
                    1..5,
                )
            ) {
                let a = crowded_array();
                let moves: Vec<AodMove> =
                    batch.into_iter().map(|(q, x, y)| AodMove { q, x, y }).collect();
                let naive = a.check_aod_moves_naive(&moves);
                let indexed = a.check_aod_moves(&moves);
                prop_assert_eq!(&indexed, &naive);
                prop_assert_eq!(a.first_aod_move_violation(&moves), naive.first().copied());
            }

            /// Near-separation batches (targets clustered around existing
            /// atoms) hit the separation branch far more often than the
            /// uniform batches above.
            #[test]
            fn on_colliding_move_batches(
                q in 0..8u32,
                dx in -4.0f64..4.0,
                dy in -4.0f64..4.0,
                victim in 8..24u32,
            ) {
                let a = crowded_array();
                let target = a.position(victim);
                let moves = [AodMove { q, x: target.x + dx, y: target.y + dy }];
                let naive = a.check_aod_moves_naive(&moves);
                prop_assert_eq!(&a.check_aod_moves(&moves), &naive);
                prop_assert_eq!(a.first_aod_move_violation(&moves), naive.first().copied());
            }
        }
    }
}
