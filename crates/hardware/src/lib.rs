//! Neutral-atom hardware model for the Parallax compiler suite.
//!
//! Models the machine of the paper's Fig. 2: atoms held by a static SLM
//! grid and a mobile AOD (rows/columns of optical traps), with the hardware
//! constraints of Section I-A:
//!
//! * Rydberg interaction radius and the 2.5x blockade radius ([`geometry`]),
//! * the minimum atom separation distance,
//! * AOD rows/columns that cannot cross and move in tandem ([`array`]),
//! * the discretized SLM site grid with the paper's pitch rule ([`grid`]),
//! * the Table II machine parameters for QuEra's 256-qubit and Atom
//!   Computing's 1,225-qubit systems ([`params`]).
//!
//! [`AtomArray`] is engineered for the compiler's movement-planning hot
//! path: a uniform-bucket **spatial occupancy index** (maintained through
//! every position change) lets the batch-move constraint check find
//! separation conflicts from a handful of nearby atoms instead of
//! sweeping the whole array — the check emits violations in the same
//! order as the naive sweep, so move plans (and therefore compiled
//! schedules) are bit-identical. Measured on the 128-qubit TFIM compile,
//! the indexed scan is a large share of the scheduler stage's 192 ms →
//! 53 ms drop (PR 4, 10-sample means). A monotone
//! [`AtomArray::positions_epoch`] counter supports the scheduler's
//! failed-move memoization: equal epochs prove an unchanged
//! configuration without comparing positions.
//!
//! Internally the array is packed SoA lanes, not `Vec<Option<..>>`: a
//! `u8` trap-tag lane (whose values equal the fingerprint discriminants,
//! keeping `static_fingerprint` byte-compatible), `u32` payload lanes,
//! and `u32` AOD line-owner lanes with a `u32::MAX` free sentinel, so the
//! move-scan loops stream flat memory (`docs/DATA_LAYOUT.md`). With the
//! CSR circuit/graph layouts this took the 1000-qubit Atom-1225 cold
//! post-placement compile from 21.9 ms to 12.2 ms (10-sample means, one
//! machine, `experiments scale`), and a synthetic 4096-site grid
//! ([`MachineSpec::synthetic_grid`]) compiles 4000 qubits in ~155 ms.
//!
//! # Example
//! ```
//! use parallax_hardware::{AtomArray, MachineSpec, AodMove};
//!
//! let mut array = AtomArray::new(MachineSpec::quera_aquila_256(), 2);
//! array.place_in_slm(0, (2, 2));
//! array.place_in_slm(1, (10, 10));
//! array.transfer_to_aod(0, 0, 0).unwrap();
//! array.apply_aod_moves(&[AodMove { q: 0, x: 66.0, y: 70.0 }]).unwrap();
//! assert!(array.distance(0, 1) < 5.0);
//! ```

pub mod array;
pub mod fingerprint;
pub mod geometry;
pub mod grid;
pub mod params;

pub use array::{AodMove, AtomArray, Trap, Violation};
pub use fingerprint::StableHasher;
pub use geometry::{
    point_segment_distance, segment_distance, violates_separation, within_blockade,
    within_interaction, Point,
};
pub use grid::{CellGeometry, Site, SiteGrid};
pub use params::{HardwareParams, MachineSpec};
