//! Neutral-atom hardware model for the Parallax compiler suite.
//!
//! Models the machine of the paper's Fig. 2: atoms held by a static SLM
//! grid and a mobile AOD (rows/columns of optical traps), with the hardware
//! constraints of Section I-A:
//!
//! * Rydberg interaction radius and the 2.5x blockade radius ([`geometry`]),
//! * the minimum atom separation distance,
//! * AOD rows/columns that cannot cross and move in tandem ([`array`]),
//! * the discretized SLM site grid with the paper's pitch rule ([`grid`]),
//! * the Table II machine parameters for QuEra's 256-qubit and Atom
//!   Computing's 1,225-qubit systems ([`params`]).
//!
//! # Example
//! ```
//! use parallax_hardware::{AtomArray, MachineSpec, AodMove};
//!
//! let mut array = AtomArray::new(MachineSpec::quera_aquila_256(), 2);
//! array.place_in_slm(0, (2, 2));
//! array.place_in_slm(1, (10, 10));
//! array.transfer_to_aod(0, 0, 0).unwrap();
//! array.apply_aod_moves(&[AodMove { q: 0, x: 66.0, y: 70.0 }]).unwrap();
//! assert!(array.distance(0, 1) < 5.0);
//! ```

pub mod array;
pub mod fingerprint;
pub mod geometry;
pub mod grid;
pub mod params;

pub use array::{AodMove, AtomArray, Trap, Violation};
pub use fingerprint::StableHasher;
pub use geometry::{violates_separation, within_blockade, within_interaction, Point};
pub use grid::{Site, SiteGrid};
pub use params::{HardwareParams, MachineSpec};
