//! The discretized SLM site grid.
//!
//! Section II-A: Parallax discretizes the `[0,1]^2` plane GRAPHINE places
//! qubits on into machine sites whose pitch is twice the minimum separation
//! plus padding, guaranteeing (1) the separation constraint holds for any
//! static layout, and (2) AOD atoms can always navigate between SLM atoms.

use crate::geometry::Point;
use crate::params::MachineSpec;
use std::collections::VecDeque;

/// A site index on the SLM grid, `(column, row)` with `0 <= x, y < dim`.
pub type Site = (u16, u16);

/// Geometry of a uniform square cell grid laid over the machine plane —
/// the shared cell math behind every bucketed spatial structure (the
/// atom-occupancy index in [`crate::AtomArray`], the scheduler's blockade
/// index). Covers `[-margin, extent + margin]` per axis; coordinates
/// outside clamp into the border cells, so every point maps to a cell and
/// a bounding-box query is always a superset of the disc it covers (the
/// clamp is monotone, so box corners clamp outward-inclusively).
#[derive(Debug, Clone)]
pub struct CellGeometry {
    cell_um: f64,
    offset_um: f64,
    dim: usize,
}

impl CellGeometry {
    /// Grid over `[-margin_um, extent_um + margin_um]` with `cell_um`
    /// cells (floored at a tiny positive size so degenerate inputs cannot
    /// divide by zero).
    pub fn new(extent_um: f64, margin_um: f64, cell_um: f64) -> Self {
        let cell = cell_um.max(1e-6);
        let span = extent_um + 2.0 * margin_um;
        let dim = ((span / cell).ceil() as usize).max(1) + 1;
        Self { cell_um: cell, offset_um: margin_um, dim }
    }

    /// Cells per side.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total cell count (`dim²`) — the bucket-array length for users.
    pub fn num_cells(&self) -> usize {
        self.dim * self.dim
    }

    /// Cell coordinate along one axis, clamped into `[0, dim)`.
    pub fn axis_cell(&self, coord: f64) -> usize {
        let c = ((coord + self.offset_um) / self.cell_um).floor();
        (c.max(0.0) as usize).min(self.dim - 1)
    }

    /// Flat cell index of a point.
    pub fn cell_of(&self, p: Point) -> usize {
        self.axis_cell(p.y) * self.dim + self.axis_cell(p.x)
    }

    /// Visit the flat index of every cell overlapping the bounding box of
    /// the disc of `radius` around `center` — a superset of the cells
    /// containing points within `radius`.
    pub fn for_each_cell_within(&self, center: Point, radius: f64, mut f: impl FnMut(usize)) {
        let (x0, x1) = (self.axis_cell(center.x - radius), self.axis_cell(center.x + radius));
        let (y0, y1) = (self.axis_cell(center.y - radius), self.axis_cell(center.y + radius));
        for cy in y0..=y1 {
            for cx in x0..=x1 {
                f(cy * self.dim + cx);
            }
        }
    }

    /// Visit the flat index of every cell overlapping the axis-aligned box
    /// `[min, max]` grown by `margin` on all sides — a superset of the
    /// cells containing points within `margin` of the box. The clamp is
    /// monotone, so out-of-range boxes collapse onto the border cells
    /// rather than missing anything.
    pub fn for_each_cell_in_box(
        &self,
        min: Point,
        max: Point,
        margin: f64,
        mut f: impl FnMut(usize),
    ) {
        let (x0, x1) = (self.axis_cell(min.x - margin), self.axis_cell(max.x + margin));
        let (y0, y1) = (self.axis_cell(min.y - margin), self.axis_cell(max.y + margin));
        for cy in y0..=y1 {
            for cx in x0..=x1 {
                f(cy * self.dim + cx);
            }
        }
    }
}

/// The discrete site grid of a machine.
#[derive(Debug, Clone)]
pub struct SiteGrid {
    dim: usize,
    pitch_um: f64,
    occupied: Vec<bool>,
}

impl SiteGrid {
    /// Create an empty grid for `spec`.
    pub fn new(spec: &MachineSpec) -> Self {
        Self {
            dim: spec.grid_dim,
            pitch_um: spec.site_pitch_um(),
            occupied: vec![false; spec.grid_dim * spec.grid_dim],
        }
    }

    /// Grid dimension (sites per side).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Grid pitch, µm.
    pub fn pitch_um(&self) -> f64 {
        self.pitch_um
    }

    fn index(&self, site: Site) -> usize {
        site.1 as usize * self.dim + site.0 as usize
    }

    /// Whether `site` is inside the grid.
    pub fn contains(&self, site: Site) -> bool {
        (site.0 as usize) < self.dim && (site.1 as usize) < self.dim
    }

    /// Whether `site` currently holds an atom.
    pub fn is_occupied(&self, site: Site) -> bool {
        self.occupied[self.index(site)]
    }

    /// Mark `site` occupied. Panics if already occupied or out of range.
    pub fn occupy(&mut self, site: Site) {
        assert!(self.contains(site), "site {site:?} outside {0}x{0} grid", self.dim);
        let idx = self.index(site);
        assert!(!self.occupied[idx], "site {site:?} is already occupied");
        self.occupied[idx] = true;
    }

    /// Clear `site`. Panics if it was not occupied.
    pub fn vacate(&mut self, site: Site) {
        let idx = self.index(site);
        assert!(self.occupied[idx], "site {site:?} is not occupied");
        self.occupied[idx] = false;
    }

    /// Number of occupied sites.
    pub fn occupied_count(&self) -> usize {
        self.occupied.iter().filter(|&&b| b).count()
    }

    /// Physical position of a site's centre, µm.
    pub fn site_position(&self, site: Site) -> Point {
        Point::new(site.0 as f64 * self.pitch_um, site.1 as f64 * self.pitch_um)
    }

    /// Map a normalized `[0,1]^2` coordinate to the nearest site (no
    /// occupancy check).
    pub fn nearest_site(&self, x: f64, y: f64) -> Site {
        let scale = (self.dim - 1) as f64;
        let sx = (x.clamp(0.0, 1.0) * scale).round() as u16;
        let sy = (y.clamp(0.0, 1.0) * scale).round() as u16;
        (sx, sy)
    }

    /// Find the free site closest to `target` by BFS ring expansion
    /// ("places atoms wherever there is free space" when the ideal cell is
    /// taken). Returns `None` when the grid is full.
    pub fn nearest_free_site(&self, target: Site) -> Option<Site> {
        if self.contains(target) && !self.is_occupied(target) {
            return Some(target);
        }
        let mut visited = vec![false; self.dim * self.dim];
        let mut queue = VecDeque::new();
        let start = (target.0.min(self.dim as u16 - 1), target.1.min(self.dim as u16 - 1));
        visited[self.index(start)] = true;
        queue.push_back(start);
        let mut best: Option<(f64, Site)> = None;
        let target_pos =
            Point::new(target.0 as f64 * self.pitch_um, target.1 as f64 * self.pitch_um);
        while let Some(site) = queue.pop_front() {
            if !self.is_occupied(site) {
                let d = self.site_position(site).distance_sq(&target_pos);
                match best {
                    Some((bd, _)) if bd <= d => {}
                    _ => best = Some((d, site)),
                }
                // Keep scanning the current BFS frontier for a closer free
                // site, but do not expand further once one is found: ring
                // distance approximates Euclidean well enough here.
                continue;
            }
            for (dx, dy) in
                [(0i32, 1i32), (0, -1), (1, 0), (-1, 0), (1, 1), (1, -1), (-1, 1), (-1, -1)]
            {
                let nx = site.0 as i32 + dx;
                let ny = site.1 as i32 + dy;
                if nx < 0 || ny < 0 || nx >= self.dim as i32 || ny >= self.dim as i32 {
                    continue;
                }
                let n = (nx as u16, ny as u16);
                let idx = self.index(n);
                if !visited[idx] {
                    visited[idx] = true;
                    queue.push_back(n);
                }
            }
        }
        best.map(|(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> SiteGrid {
        SiteGrid::new(&MachineSpec::quera_aquila_256())
    }

    #[test]
    fn occupancy_lifecycle() {
        let mut g = grid();
        assert!(!g.is_occupied((3, 4)));
        g.occupy((3, 4));
        assert!(g.is_occupied((3, 4)));
        assert_eq!(g.occupied_count(), 1);
        g.vacate((3, 4));
        assert!(!g.is_occupied((3, 4)));
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_occupy_panics() {
        let mut g = grid();
        g.occupy((0, 0));
        g.occupy((0, 0));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_occupy_panics() {
        let mut g = grid();
        g.occupy((16, 0));
    }

    #[test]
    fn site_positions_scale_with_pitch() {
        let g = grid();
        let p = g.site_position((2, 3));
        assert_eq!(p, Point::new(14.0, 21.0)); // pitch 7 µm
    }

    #[test]
    fn nearest_site_maps_unit_square_corners() {
        let g = grid();
        assert_eq!(g.nearest_site(0.0, 0.0), (0, 0));
        assert_eq!(g.nearest_site(1.0, 1.0), (15, 15));
        assert_eq!(g.nearest_site(0.5, 0.5), (8, 8));
        // Out-of-range inputs are clamped.
        assert_eq!(g.nearest_site(-2.0, 7.0), (0, 15));
    }

    #[test]
    fn nearest_free_site_prefers_target() {
        let g = grid();
        assert_eq!(g.nearest_free_site((5, 5)), Some((5, 5)));
    }

    #[test]
    fn nearest_free_site_spills_to_neighbor() {
        let mut g = grid();
        g.occupy((5, 5));
        let s = g.nearest_free_site((5, 5)).unwrap();
        assert_ne!(s, (5, 5));
        let d = g.site_position(s).distance(&g.site_position((5, 5)));
        assert!(d <= g.pitch_um() * 2f64.sqrt() + 1e-9);
    }

    #[test]
    fn nearest_free_site_none_when_full() {
        let spec = MachineSpec { grid_dim: 2, ..MachineSpec::quera_aquila_256() };
        let mut g = SiteGrid::new(&spec);
        for x in 0..2 {
            for y in 0..2 {
                g.occupy((x, y));
            }
        }
        assert_eq!(g.nearest_free_site((0, 0)), None);
    }

    #[test]
    fn bfs_escapes_occupied_cluster() {
        let mut g = grid();
        for x in 0..4u16 {
            for y in 0..4u16 {
                g.occupy((x, y));
            }
        }
        let s = g.nearest_free_site((1, 1)).unwrap();
        assert!(!g.is_occupied(s));
    }

    #[test]
    fn cell_geometry_clamps_out_of_span_points_into_border_cells() {
        let c = CellGeometry::new(100.0, 7.0, 7.0);
        assert_eq!(c.axis_cell(-1e6), 0);
        assert_eq!(c.axis_cell(1e6), c.dim() - 1);
        assert!(c.cell_of(Point::new(-50.0, 1e9)) < c.num_cells());
    }

    #[test]
    fn cell_geometry_box_query_covers_margin_around_box() {
        let c = CellGeometry::new(100.0, 7.0, 7.0);
        let (min, max) = (Point::new(20.0, 30.0), Point::new(45.0, 38.0));
        let margin = 5.0;
        let mut visited = vec![false; c.num_cells()];
        c.for_each_cell_in_box(min, max, margin, |cell| visited[cell] = true);
        // Every point within `margin` of the box lies in a visited cell.
        for dx in 0..=70 {
            for dy in 0..=40 {
                let p = Point::new(min.x - 5.0 + dx as f64 * 0.5, min.y - 5.0 + dy as f64 * 0.5);
                let cx = p.x.clamp(min.x, max.x);
                let cy = p.y.clamp(min.y, max.y);
                if p.distance(&Point::new(cx, cy)) <= margin {
                    assert!(visited[c.cell_of(p)], "{p:?} missed");
                }
            }
        }
    }

    #[test]
    fn cell_geometry_box_query_is_a_superset_of_the_disc() {
        let c = CellGeometry::new(100.0, 7.0, 7.0);
        let center = Point::new(33.0, 41.0);
        let radius = 6.5;
        // Every point within `radius` of the centre lies in a visited cell.
        let mut visited = vec![false; c.num_cells()];
        c.for_each_cell_within(center, radius, |cell| visited[cell] = true);
        for dx in -13..=13 {
            for dy in -13..=13 {
                let p = Point::new(center.x + dx as f64 * 0.5, center.y + dy as f64 * 0.5);
                if p.distance(&center) <= radius {
                    assert!(visited[c.cell_of(p)], "{p:?} missed");
                }
            }
        }
    }

    #[test]
    fn cell_geometry_degenerate_cell_size_does_not_divide_by_zero() {
        let c = CellGeometry::new(10.0, 1.0, 0.0);
        assert!(c.dim() >= 1);
        let _ = c.cell_of(Point::new(5.0, 5.0));
    }
}
