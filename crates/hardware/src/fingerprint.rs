//! Stable structural fingerprints for cache keys.
//!
//! The compile service keys its result cache on (circuit, config, machine).
//! `std::hash::DefaultHasher` is randomly seeded per process, so cache keys
//! built with it would not survive a restart nor match across replicas.
//! [`StableHasher`] is a fixed-seed 64-bit FNV-1a accumulator with typed
//! `write_*` helpers; floats are hashed by IEEE bit pattern, so two configs
//! fingerprint equally iff their fields are bitwise equal.

use crate::params::{HardwareParams, MachineSpec};

/// FNV-1a 64-bit offset basis. Must match `parallax_qasm::hash` — the two
/// crates are independent leaves of the dependency graph, so the algorithm
/// is duplicated rather than shared; both halves feed the same service
/// cache-key scheme and must not drift.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime (see the sync note on [`FNV_OFFSET`]).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Process- and platform-stable 64-bit FNV-1a accumulator.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// Start from the FNV-1a offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Absorb raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorb a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Absorb a `usize` widened to `u64`.
    pub fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// Absorb a `bool` as one byte.
    pub fn write_bool(&mut self, v: bool) -> &mut Self {
        self.write_bytes(&[u8::from(v)])
    }

    /// Absorb an `f64` by IEEE-754 bit pattern (NaNs with different
    /// payloads hash differently; `-0.0 != 0.0` — bitwise semantics are
    /// what a cache key wants).
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Absorb a string (length-prefixed to avoid concatenation collisions).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes())
    }

    /// Final digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl HardwareParams {
    /// Absorb every physical parameter into `h` (used by
    /// [`MachineSpec::fingerprint`]).
    pub fn hash_into(&self, h: &mut StableHasher) {
        h.write_f64(self.atom_loss_rate)
            .write_f64(self.trap_switch_time_us)
            .write_f64(self.u3_gate_error)
            .write_f64(self.u3_gate_time_us)
            .write_f64(self.aod_move_speed_um_per_us)
            .write_f64(self.t1_seconds)
            .write_f64(self.t2_seconds)
            .write_f64(self.cz_gate_error)
            .write_f64(self.cz_gate_time_us)
            .write_f64(self.swap_gate_error)
            .write_f64(self.readout_error);
    }
}

impl MachineSpec {
    /// Stable structural fingerprint of the full machine description —
    /// equal iff every geometric and physical field is bitwise equal.
    pub fn fingerprint(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_str(self.name)
            .write_usize(self.grid_dim)
            .write_usize(self.aod_dim)
            .write_f64(self.min_separation_um)
            .write_f64(self.padding_um)
            .write_f64(self.blockade_factor);
        self.params.hash_into(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let quera = MachineSpec::quera_aquila_256();
        assert_eq!(quera.fingerprint(), MachineSpec::quera_aquila_256().fingerprint());
        assert_ne!(quera.fingerprint(), MachineSpec::atom_1225().fingerprint());
        assert_ne!(quera.fingerprint(), quera.with_aod_dim(5).fingerprint());
        // Synthetic grids: named sides and generic sides are all distinct
        // (the generic name is shared, so grid_dim must discriminate).
        let s46 = MachineSpec::synthetic_grid(46).fingerprint();
        let s64 = MachineSpec::synthetic_grid(64).fingerprint();
        let g50 = MachineSpec::synthetic_grid(50).fingerprint();
        let g51 = MachineSpec::synthetic_grid(51).fingerprint();
        assert_ne!(s46, s64);
        assert_ne!(g50, g51);
        assert_ne!(s46, quera.fingerprint());
    }

    #[test]
    fn param_changes_change_the_fingerprint() {
        let mut spec = MachineSpec::quera_aquila_256();
        let base = spec.fingerprint();
        spec.params.cz_gate_error *= 2.0;
        assert_ne!(base, spec.fingerprint());
    }

    #[test]
    fn hasher_is_order_sensitive_and_prefix_safe() {
        let mut a = StableHasher::new();
        a.write_str("ab").write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn matches_fnv1a_reference_vectors() {
        // Keeps this copy in lockstep with `parallax_qasm::hash::fnv1a_64`
        // (same published FNV-1a test vectors there).
        let digest = |bytes: &[u8]| {
            let mut h = StableHasher::new();
            h.write_bytes(bytes);
            h.finish()
        };
        assert_eq!(digest(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(digest(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(digest(b"foobar"), 0x85944171f73967e8);
    }
}
