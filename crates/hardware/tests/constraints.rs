//! Hardware-model tier tests: the paper's Section I-A/II-A constraints hold
//! through full place/transfer/move/release lifecycles on both machines.

use parallax_hardware::{
    violates_separation, within_blockade, within_interaction, AodMove, AtomArray, MachineSpec,
    SiteGrid, Violation,
};

#[test]
fn discretization_pitch_guarantees_separation_on_both_machines() {
    // Section II-A: pitch = 2 * min_sep + padding, so any two distinct SLM
    // sites are always legally separated — even diagonal neighbours.
    for spec in [MachineSpec::quera_aquila_256(), MachineSpec::atom_1225()] {
        let grid = SiteGrid::new(&spec);
        assert_eq!(grid.pitch_um(), 2.0 * spec.min_separation_um + spec.padding_um);
        let a = grid.site_position((0, 0));
        for site in [(0u16, 1u16), (1, 0), (1, 1)] {
            let b = grid.site_position(site);
            assert!(
                !violates_separation(&a, &b, spec.min_separation_um),
                "{}: adjacent sites {site:?} too close",
                spec.name
            );
            // And an AOD atom can pass between two static columns: half the
            // pitch still respects the separation constraint.
            let mid = parallax_hardware::Point::new((a.x + b.x) / 2.0, (a.y + b.y) / 2.0);
            let _ = mid; // midpoint distance = pitch/2 = 3.5 >= 3.0
            assert!(grid.pitch_um() / 2.0 >= spec.min_separation_um);
        }
    }
}

#[test]
fn blockade_radius_is_exactly_2_5x_interaction() {
    let spec = MachineSpec::quera_aquila_256();
    assert_eq!(spec.blockade_factor, 2.5);
    let a = parallax_hardware::Point::new(0.0, 0.0);
    let r = 7.0; // one pitch as the interaction radius
                 // In interaction range -> also in blockade range.
    let near = parallax_hardware::Point::new(6.9, 0.0);
    assert!(within_interaction(&a, &near, r));
    assert!(within_blockade(&a, &near, r, spec.blockade_factor));
    // Between r and 2.5r: serializes (blockade) but cannot interact.
    let mid = parallax_hardware::Point::new(12.0, 0.0);
    assert!(!within_interaction(&a, &mid, r));
    assert!(within_blockade(&a, &mid, r, spec.blockade_factor));
    // Beyond 2.5r: free.
    let far = parallax_hardware::Point::new(17.6, 0.0);
    assert!(!within_blockade(&a, &far, r, spec.blockade_factor));
}

#[test]
fn one_atom_per_aod_line_pair_is_enforced() {
    let mut a = AtomArray::new(MachineSpec::quera_aquila_256(), 4);
    a.place_in_slm(0, (2, 2));
    a.place_in_slm(1, (6, 6));
    a.transfer_to_aod(0, 0, 0).unwrap();
    // Row 0 is owned by qubit 0; taking it again must be rejected loudly.
    let result =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.transfer_to_aod(1, 0, 1)));
    assert!(result.is_err(), "row reuse must panic");
}

#[test]
fn full_aod_capacity_diagonal_is_usable() {
    // All 20 row/column pairs can be owned at once when atoms sit on a
    // diagonal (coordinates strictly increasing in both axes).
    let spec = MachineSpec::atom_1225();
    let mut a = AtomArray::new(spec, spec.aod_dim);
    for q in 0..spec.aod_dim as u32 {
        a.place_in_slm(q, (q as u16, q as u16));
        a.transfer_to_aod(q, q as u16, q as u16).unwrap();
    }
    assert_eq!(a.aod_qubits().len(), spec.aod_dim);
    assert!(a.validate().is_empty());
}

#[test]
fn tandem_batch_translation_preserves_ordering() {
    // Moving every AOD atom by the same offset keeps line order intact, so
    // a rigid translation of the whole AOD grid is always legal in-bounds.
    let spec = MachineSpec::quera_aquila_256();
    let mut a = AtomArray::new(spec, 3);
    for q in 0..3u32 {
        a.place_in_slm(q, (2 * q as u16 + 2, 2 * q as u16 + 2));
        a.transfer_to_aod(q, q as u16, q as u16).unwrap();
    }
    let moves: Vec<AodMove> = (0..3u32)
        .map(|q| {
            let p = a.position(q);
            AodMove { q, x: p.x + 3.0, y: p.y - 2.0 }
        })
        .collect();
    assert!(a.check_aod_moves(&moves).is_empty());
    a.apply_aod_moves(&moves).unwrap();
    assert!(a.validate().is_empty());
}

#[test]
fn converging_columns_and_static_approach_are_rejected() {
    let spec = MachineSpec::quera_aquila_256();
    let mut a = AtomArray::new(spec, 3);
    a.place_in_slm(0, (2, 2)); // (14, 14) -> AOD row 0 / col 0
    a.place_in_slm(1, (6, 6)); // (42, 42) -> AOD row 1 / col 1
    a.place_in_slm(2, (10, 2)); // (70, 14), stays static
    a.transfer_to_aod(0, 0, 0).unwrap();
    a.transfer_to_aod(1, 1, 1).unwrap();
    // Column 0 parked 2 µm left of column 1: closer than the 3 µm line gap.
    let crossing = [AodMove { q: 0, x: 40.0, y: 14.0 }];
    let vs = a.check_aod_moves(&crossing);
    assert!(vs.iter().any(|v| matches!(v, Violation::ColOrdering { .. })), "{vs:?}");
    // Parking 2 µm away from the static atom violates min separation.
    let too_close = [AodMove { q: 0, x: 68.0, y: 14.0 }];
    let vs = a.check_aod_moves(&too_close);
    assert!(vs.iter().any(|v| matches!(v, Violation::Separation { .. })), "{vs:?}");
    // Failed batches leave the state untouched.
    assert!(a.apply_aod_moves(&too_close).is_err());
    assert_eq!(a.position(0), parallax_hardware::Point::new(14.0, 14.0));
    assert!(a.validate().is_empty());
}

#[test]
fn bounds_margin_is_one_pitch() {
    let spec = MachineSpec::quera_aquila_256();
    let mut a = AtomArray::new(spec, 1);
    a.place_in_slm(0, (2, 2));
    a.transfer_to_aod(0, 0, 0).unwrap();
    let pitch = spec.site_pitch_um();
    let extent = spec.extent_um();
    // One pitch beyond the grid on either side is still addressable…
    assert!(a.check_aod_moves(&[AodMove { q: 0, x: -pitch + 0.1, y: 14.0 }]).is_empty());
    assert!(a.check_aod_moves(&[AodMove { q: 0, x: extent + pitch - 0.1, y: 14.0 }]).is_empty());
    // …anything further is out of bounds.
    let vs = a.check_aod_moves(&[AodMove { q: 0, x: extent + pitch + 1.0, y: 14.0 }]);
    assert!(vs.iter().any(|v| matches!(v, Violation::OutOfBounds { q: 0 })));
}

#[test]
fn trap_change_lifecycle_keeps_state_consistent() {
    // place -> AOD -> move -> release (trap change) -> re-acquire by another
    // atom: the exact release/retrap fallback sequence of Algorithm 1.
    let spec = MachineSpec::quera_aquila_256();
    let mut a = AtomArray::new(spec, 2);
    a.place_in_slm(0, (3, 3));
    a.place_in_slm(1, (9, 9));
    a.transfer_to_aod(0, 2, 2).unwrap();
    a.apply_aod_moves(&[AodMove { q: 0, x: 56.0, y: 56.0 }]).unwrap();
    a.release_to_slm(0, (8, 8));
    assert!(!a.is_aod(0));
    assert_eq!(a.position(0), a.grid().site_position((8, 8)));
    // The freed line pair is immediately reusable by the other atom.
    a.transfer_to_aod(1, 2, 2).unwrap();
    assert!(a.validate().is_empty());
    assert_eq!(a.grid().occupied_count(), 1, "only q0 occupies an SLM site");
}
