//! Circuit-IR tier tests: dependency-DAG ordering invariants and
//! optimizer structural guarantees (CZ count and length never increase).

use parallax_circuit::optimize::{cancel_cz, merge_u3};
use parallax_circuit::{circuit_from_qasm_str, layers, optimize, CircuitBuilder, DependencyDag};
use parallax_testkit::lcg_circuit;

#[test]
fn respects_order_accepts_program_order() {
    let c = lcg_circuit(5, 40, 1);
    let dag = DependencyDag::build(&c);
    let order: Vec<usize> = (0..c.len()).collect();
    assert!(dag.respects_order(&order));
}

#[test]
fn respects_order_accepts_valid_commutation() {
    // h(0) and h(1) act on disjoint qubits: swapping them is legal.
    let mut b = CircuitBuilder::new(2);
    b.h(0).h(1).cz(0, 1);
    let c = b.build();
    let dag = DependencyDag::build(&c);
    assert!(dag.respects_order(&[1, 0, 2]));
}

#[test]
fn respects_order_rejects_dependency_violation() {
    // cz(0,1) depends on both h gates; running it first is illegal.
    let mut b = CircuitBuilder::new(2);
    b.h(0).h(1).cz(0, 1);
    let dag = DependencyDag::build(&b.build());
    assert!(!dag.respects_order(&[2, 0, 1]));
    assert!(!dag.respects_order(&[0, 2, 1]));
}

#[test]
fn respects_order_rejects_malformed_permutations() {
    let mut b = CircuitBuilder::new(2);
    b.h(0).cz(0, 1).h(1);
    let dag = DependencyDag::build(&b.build());
    assert!(!dag.respects_order(&[0, 1]), "wrong length");
    assert!(!dag.respects_order(&[0, 0, 1]), "duplicate index");
    assert!(!dag.respects_order(&[0, 1, 7]), "out-of-range index");
}

#[test]
fn dag_edges_follow_operand_qubits() {
    let mut b = CircuitBuilder::new(3);
    b.h(0).cz(0, 1).cz(1, 2).h(0);
    let dag = DependencyDag::build(&b.build());
    assert_eq!(dag.predecessors(0), &[] as &[u32]);
    assert_eq!(dag.predecessors(1), &[0]);
    assert_eq!(dag.predecessors(2), &[1]);
    assert_eq!(dag.predecessors(3), &[1], "h(0) waits on cz(0,1), not cz(1,2)");
    assert_eq!(dag.successors(1), &[2, 3]);
}

#[test]
fn asap_layers_match_depth_and_respect_dag() {
    for seed in 0..5u64 {
        let c = lcg_circuit(6, 48, seed);
        let ls = layers(&c);
        assert_eq!(ls.len(), c.depth(), "seed {seed}");
        // Flattening layers in order is a dependency-correct permutation.
        let flat: Vec<usize> = ls.iter().flatten().copied().collect();
        assert!(DependencyDag::build(&c).respects_order(&flat), "seed {seed}");
        // No two gates in one layer share a qubit.
        for layer in &ls {
            let mut seen: Vec<u32> = Vec::new();
            for &g in layer {
                for &q in c.gates()[g].qubits().as_slice() {
                    assert!(!seen.contains(&q), "layer shares qubit {q}");
                    seen.push(q);
                }
            }
        }
    }
}

#[test]
fn optimize_never_increases_cz_count_or_length() {
    for seed in 0..10u64 {
        let c = lcg_circuit(5, 60, seed);
        let o = optimize(&c);
        assert!(o.cz_count() <= c.cz_count(), "seed {seed}");
        assert!(o.len() <= c.len(), "seed {seed}");
        assert_eq!(o.num_qubits(), c.num_qubits());
    }
}

#[test]
fn optimize_cancels_adjacent_cz_pairs() {
    let mut b = CircuitBuilder::new(3);
    b.cz(0, 1).cz(1, 0).cz(1, 2); // cz(0,1) == cz(1,0): cancels
    let c = b.build();
    let o = optimize(&c);
    assert_eq!(o.cz_count(), 1);
    let (cancelled, changed) = cancel_cz(&c);
    assert!(changed);
    assert_eq!(cancelled.cz_count(), 1);
}

#[test]
fn optimize_merges_u3_runs() {
    let mut b = CircuitBuilder::new(1);
    b.rz(0.3, 0).rz(0.4, 0).rz(-0.7, 0); // net identity rotation
    let (merged, changed) = merge_u3(&b.build());
    assert!(changed);
    assert!(merged.len() <= 1, "three rz collapse to at most one U3");
}

#[test]
fn optimize_is_idempotent() {
    for seed in 0..5u64 {
        let once = optimize(&lcg_circuit(4, 40, seed));
        let twice = optimize(&once);
        assert_eq!(once.len(), twice.len(), "seed {seed}");
        assert_eq!(once.cz_count(), twice.cz_count(), "seed {seed}");
    }
}

#[test]
fn qasm_roundtrip_preserves_gate_counts() {
    let mut b = CircuitBuilder::new(4);
    b.h(0).cx(0, 1).ccx(0, 1, 2).cz(2, 3).u3(0.1, 0.2, 0.3, 3);
    let c = b.build();
    let back = circuit_from_qasm_str(&c.to_qasm()).unwrap();
    assert_eq!(back.num_qubits(), c.num_qubits());
    assert_eq!(back.cz_count(), c.cz_count());
    assert_eq!(back.u3_count(), c.u3_count());
}
