//! Peephole optimization over the {U3, CZ} basis.
//!
//! Plays the role of the Qiskit transpiler's highest optimization level in
//! the paper's methodology: adjacent one-qubit gates are resynthesized into
//! a single `U3` (via the 2x2 unitary product and ZYZ re-extraction) and
//! adjacent identical `CZ` pairs cancel (CZ is self-inverse). Passes run to
//! a fixpoint.

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::unitary::{zyz_decompose, Mat2};

/// Tolerance for treating a merged one-qubit unitary as the identity.
const IDENTITY_EPS: f64 = 1e-9;

/// Merge runs of adjacent `U3` gates on each qubit into single gates and
/// drop resulting identities. Returns the optimized circuit and whether
/// anything changed.
pub fn merge_u3(circuit: &Circuit) -> (Circuit, bool) {
    let mut out = Circuit::new(circuit.num_qubits());
    let mut pending: Vec<Option<Mat2>> = vec![None; circuit.num_qubits()];
    let mut pending_count = vec![0usize; circuit.num_qubits()];
    let mut changed = false;

    let flush = |q: usize,
                 pending: &mut Vec<Option<Mat2>>,
                 pending_count: &mut Vec<usize>,
                 out: &mut Circuit,
                 changed: &mut bool| {
        if let Some(m) = pending[q].take() {
            if m.phase_distance(&Mat2::IDENTITY) < IDENTITY_EPS {
                *changed = true; // gates annihilated entirely
            } else {
                let (theta, phi, lam) = zyz_decompose(&m);
                if pending_count[q] > 1 {
                    *changed = true;
                }
                out.push(Gate::u3(q as u32, theta, phi, lam));
            }
            pending_count[q] = 0;
        }
    };

    for g in circuit.gates() {
        match *g {
            Gate::U3 { q, theta, phi, lam } => {
                let m = Mat2::u3(theta, phi, lam);
                let qi = q as usize;
                pending[qi] = Some(match pending[qi].take() {
                    Some(prev) => m.mul(&prev), // apply prev first
                    None => m,
                });
                pending_count[qi] += 1;
            }
            Gate::Cz { a, b } => {
                flush(a as usize, &mut pending, &mut pending_count, &mut out, &mut changed);
                flush(b as usize, &mut pending, &mut pending_count, &mut out, &mut changed);
                out.push(*g);
            }
        }
    }
    for q in 0..circuit.num_qubits() {
        flush(q, &mut pending, &mut pending_count, &mut out, &mut changed);
    }
    (out, changed)
}

/// Cancel `CZ(a,b); CZ(a,b)` pairs with no intervening gate on either qubit.
/// Returns the optimized circuit and whether anything changed.
pub fn cancel_cz(circuit: &Circuit) -> (Circuit, bool) {
    let n = circuit.len();
    let mut removed = vec![false; n];
    let mut changed = false;
    // `last_cz[q]`: index of the most recent surviving gate acting on q, if
    // that gate is a CZ and nothing on q has happened since.
    let mut last_touch: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
    for (i, g) in circuit.gates().iter().enumerate() {
        match *g {
            Gate::U3 { q, .. } => {
                last_touch[q as usize] = Some(i);
            }
            Gate::Cz { a, b } => {
                let (ai, bi) = (a as usize, b as usize);
                if let (Some(pa), Some(pb)) = (last_touch[ai], last_touch[bi]) {
                    if pa == pb && !removed[pa] {
                        if let Gate::Cz { a: x, b: y } = circuit.gates()[pa] {
                            let same_pair = (x == a && y == b) || (x == b && y == a);
                            if same_pair {
                                removed[pa] = true;
                                removed[i] = true;
                                changed = true;
                                // Both qubits' last surviving touch reverts to
                                // "unknown"; conservatively block further
                                // cancellation through this point.
                                last_touch[ai] = None;
                                last_touch[bi] = None;
                                continue;
                            }
                        }
                    }
                }
                last_touch[ai] = Some(i);
                last_touch[bi] = Some(i);
            }
        }
    }
    let mut out = Circuit::new(circuit.num_qubits());
    for (i, g) in circuit.gates().iter().enumerate() {
        if !removed[i] {
            out.push(*g);
        }
    }
    (out, changed)
}

/// Run [`merge_u3`] and [`cancel_cz`] to a fixpoint (bounded, in practice
/// 2-4 iterations).
pub fn optimize(circuit: &Circuit) -> Circuit {
    let mut current = circuit.clone();
    for _ in 0..32 {
        let (merged, ch1) = merge_u3(&current);
        let (canceled, ch2) = cancel_cz(&merged);
        current = canceled;
        if !ch1 && !ch2 {
            break;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::circuit_from_qasm_str;
    use std::f64::consts::PI;

    #[test]
    fn merges_adjacent_rotations() {
        let mut c = Circuit::new(1);
        c.push(Gate::rz(0, 0.3));
        c.push(Gate::rz(0, 0.4));
        let (o, changed) = merge_u3(&c);
        assert!(changed);
        assert_eq!(o.len(), 1);
        match o.gates()[0] {
            Gate::U3 { lam, theta, .. } => {
                assert!(theta.abs() < 1e-9);
                assert!((lam - 0.7).rem_euclid(2.0 * PI) < 1e-9);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn h_h_annihilates() {
        let mut c = Circuit::new(1);
        c.push(Gate::h(0));
        c.push(Gate::h(0));
        let (o, changed) = merge_u3(&c);
        assert!(changed);
        assert!(o.is_empty());
    }

    #[test]
    fn cz_blocks_merge() {
        let mut c = Circuit::new(2);
        c.push(Gate::rz(0, 0.3));
        c.push(Gate::cz(0, 1));
        c.push(Gate::rz(0, 0.4));
        let (o, _) = merge_u3(&c);
        assert_eq!(o.len(), 3);
    }

    #[test]
    fn merge_on_other_qubit_unaffected_by_cz() {
        let mut c = Circuit::new(3);
        c.push(Gate::rz(2, 0.3));
        c.push(Gate::cz(0, 1));
        c.push(Gate::rz(2, 0.4));
        let (o, changed) = merge_u3(&c);
        assert!(changed);
        assert_eq!(o.len(), 2); // merged rz(0.7) on q2 + the cz
    }

    #[test]
    fn adjacent_cz_pair_cancels() {
        let mut c = Circuit::new(2);
        c.push(Gate::cz(0, 1));
        c.push(Gate::cz(1, 0)); // unordered match
        let (o, changed) = cancel_cz(&c);
        assert!(changed);
        assert!(o.is_empty());
    }

    #[test]
    fn intervening_gate_blocks_cancellation() {
        let mut c = Circuit::new(2);
        c.push(Gate::cz(0, 1));
        c.push(Gate::h(0));
        c.push(Gate::cz(0, 1));
        let (o, changed) = cancel_cz(&c);
        assert!(!changed);
        assert_eq!(o.len(), 3);
    }

    #[test]
    fn gate_on_one_qubit_only_blocks_cancellation() {
        let mut c = Circuit::new(3);
        c.push(Gate::cz(0, 1));
        c.push(Gate::h(1));
        c.push(Gate::cz(0, 1));
        let (_, changed) = cancel_cz(&c);
        assert!(!changed);
    }

    #[test]
    fn different_pairs_do_not_cancel() {
        let mut c = Circuit::new(3);
        c.push(Gate::cz(0, 1));
        c.push(Gate::cz(1, 2));
        let (o, changed) = cancel_cz(&c);
        assert!(!changed);
        assert_eq!(o.len(), 2);
    }

    #[test]
    fn cx_cx_fully_cancels_through_fixpoint() {
        // cx;cx lowers to h cz h h cz h: needs merge (h h -> id) then cancel
        // (cz cz) then merge (h h -> id).
        let c = circuit_from_qasm_str("OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[1];\ncx q[0],q[1];\n")
            .unwrap();
        let o = optimize(&c);
        assert!(o.is_empty(), "leftover: {:?}", o.gates());
    }

    #[test]
    fn swap_swap_cancels() {
        let c =
            circuit_from_qasm_str("OPENQASM 2.0;\nqreg q[2];\nswap q[0],q[1];\nswap q[0],q[1];\n")
                .unwrap();
        let o = optimize(&c);
        assert!(o.is_empty(), "leftover: {:?}", o.gates());
    }

    #[test]
    fn optimize_preserves_cz_structure_of_irreducible_circuit() {
        let c = circuit_from_qasm_str(
            "OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\nrz(0.25) q[2];\n",
        )
        .unwrap();
        let o = optimize(&c);
        assert_eq!(o.cz_count(), 2);
        assert!(o.len() <= c.len());
    }

    #[test]
    fn optimize_is_idempotent() {
        let c = circuit_from_qasm_str(
            "OPENQASM 2.0;\nqreg q[4];\nh q;\ncx q[0],q[1];\nccx q[1],q[2],q[3];\nh q;\n",
        )
        .unwrap();
        let once = optimize(&c);
        let twice = optimize(&once);
        assert_eq!(once, twice);
    }
}
