//! Quantum circuit IR for the Parallax compiler suite.
//!
//! Everything downstream of the QASM front end works over this crate's
//! [`Circuit`] type: a flat, validated gate list in the neutral-atom
//! {U3, CZ} universal basis (the paper's Section I-A), with dependency
//! analysis ([`dag`]), ASAP layering, a basis-lowering pass playing the role
//! of the Qiskit transpiler ([`lower`]), a peephole optimizer ([`optimize`]),
//! and a programmatic builder for the workload generators ([`builder`]).
//!
//! The structures the scheduler walks per layer are CSR, not nested
//! `Vec`s: [`dag::DependencyDag`] stores predecessor/successor lists as
//! offsets + flat `u32` lanes (four allocations total, any gate count),
//! and [`circuit::QubitGatesCsr`] does the same for the per-qubit gate
//! lists the frontier probes. Both are proven row-identical to their
//! retained nested oracles (`build_nested`, `qubit_gate_indices`) by
//! proptests here and in the umbrella differential suite; see
//! `docs/DATA_LAYOUT.md` for the layout and the oracle-retention
//! convention.
//!
//! # Example
//! ```
//! use parallax_circuit::{CircuitBuilder, optimize::optimize};
//!
//! let mut b = CircuitBuilder::new(3);
//! b.h(0).cx(0, 1).cx(1, 2).cx(1, 2); // the repeated CX cancels
//! let circuit = optimize(&b.build());
//! assert_eq!(circuit.cz_count(), 1);
//! ```

pub mod builder;
pub mod circuit;
pub mod dag;
pub mod gate;
pub mod lower;
pub mod optimize;
pub mod qelib;
pub mod slack;
pub mod template;
pub mod unitary;

pub use builder::CircuitBuilder;
pub use circuit::{Circuit, QubitGatesCsr};
pub use dag::{layers, DependencyDag};
pub use gate::Gate;
pub use lower::{apply_named, circuit_from_qasm_str, from_qasm, LowerError};
pub use optimize::optimize;
pub use slack::SlackTable;
pub use template::{circuit_bits_hash, structural_hash, BindError, CircuitTemplate, TemplateGate};
pub use unitary::{zyz_decompose, Mat2, C64};
