//! ASAP/ALAP levels and per-gate slack over the dependency DAG.
//!
//! The classic list-scheduling formulation: a gate's ASAP level is the
//! earliest layer it can occupy (longest predecessor chain), its ALAP
//! level the latest layer that still fits the circuit's critical-path
//! depth, and `slack = alap - asap` the scheduling freedom in between.
//! Zero-slack gates sit on a critical path; slack-rich gates can wait for
//! an opportunistic batching window. The multi-mover scheduler orders its
//! movement candidates by this table (zero-slack first), so the gates that
//! gate the circuit's depth claim the layer's movement budget before
//! gates that could run later anyway.
//!
//! Gate indices are program order, and every dependency edge points from a
//! lower to a higher index ([`DependencyDag::build`] links each gate to the
//! *previous* gate on each operand qubit), so both levels are single linear
//! sweeps over the CSR arrays — no worklist, no fixpoint. The retained
//! fixpoint twin ([`SlackTable::compute_naive`]) is the differential
//! oracle per the `docs/DATA_LAYOUT.md` convention.

use crate::dag::DependencyDag;

/// ASAP/ALAP levels and slack for every gate of one circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlackTable {
    /// Earliest layer each gate can occupy (longest predecessor chain).
    asap: Vec<u32>,
    /// Latest layer each gate can occupy without stretching the depth.
    alap: Vec<u32>,
    /// Critical-path depth in layers (0 for an empty circuit).
    depth: u32,
}

impl SlackTable {
    /// Compute both level tables with two linear sweeps over `dag`.
    pub fn compute(dag: &DependencyDag) -> Self {
        let n = dag.len();
        let mut asap = vec![0u32; n];
        for i in 0..n {
            let mut level = 0;
            for &p in dag.predecessors(i) {
                debug_assert!((p as usize) < i, "dependency edge points forward");
                level = level.max(asap[p as usize] + 1);
            }
            asap[i] = level;
        }
        let depth = asap.iter().map(|&l| l + 1).max().unwrap_or(0);
        let mut alap = vec![depth.saturating_sub(1); n];
        for i in (0..n).rev() {
            for &s in dag.successors(i) {
                alap[i] = alap[i].min(alap[s as usize] - 1);
            }
        }
        Self { asap, alap, depth }
    }

    /// The fixpoint formulation: iterate relaxation until no level moves.
    /// Kept as the differential oracle for the linear-sweep build — the
    /// sweeps exploit the program-order edge direction, the fixpoint does
    /// not assume it.
    #[cfg(any(test, debug_assertions))]
    pub fn compute_naive(dag: &DependencyDag) -> Self {
        let n = dag.len();
        let mut asap = vec![0u32; n];
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                for &p in dag.predecessors(i) {
                    if asap[p as usize] + 1 > asap[i] {
                        asap[i] = asap[p as usize] + 1;
                        changed = true;
                    }
                }
            }
        }
        let depth = asap.iter().map(|&l| l + 1).max().unwrap_or(0);
        let mut alap = vec![depth.saturating_sub(1); n];
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                for &s in dag.successors(i) {
                    if alap[s as usize] - 1 < alap[i] {
                        alap[i] = alap[s as usize] - 1;
                        changed = true;
                    }
                }
            }
        }
        Self { asap, alap, depth }
    }

    /// Earliest layer gate `g` can occupy.
    pub fn asap(&self, g: usize) -> u32 {
        self.asap[g]
    }

    /// Latest layer gate `g` can occupy without stretching the depth.
    pub fn alap(&self, g: usize) -> u32 {
        self.alap[g]
    }

    /// Scheduling freedom of gate `g` in layers (`alap - asap`).
    pub fn slack(&self, g: usize) -> u32 {
        self.alap[g] - self.asap[g]
    }

    /// Whether gate `g` sits on a critical path (zero slack).
    pub fn is_critical(&self, g: usize) -> bool {
        self.slack(g) == 0
    }

    /// Critical-path depth in layers.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of gates covered.
    pub fn len(&self) -> usize {
        self.asap.len()
    }

    /// True for an empty circuit.
    pub fn is_empty(&self) -> bool {
        self.asap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::gate::Gate;

    fn fredkin_like() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::h(1)); // 0
        c.push(Gate::h(2)); // 1
        c.push(Gate::cz(1, 2)); // 2
        c.push(Gate::h(0)); // 3
        c.push(Gate::cz(0, 1)); // 4
        c.push(Gate::cz(0, 2)); // 5
        c.push(Gate::x(1)); // 6
        c
    }

    #[test]
    fn levels_match_layered_structure() {
        let c = fredkin_like();
        let t = SlackTable::compute(&DependencyDag::build(&c));
        assert_eq!(t.depth(), 4);
        assert_eq!(t.asap(0), 0);
        assert_eq!(t.asap(2), 1);
        assert_eq!(t.asap(4), 2);
        assert_eq!(t.asap(5), 3);
        // h(0) only feeds cz(0,1) at layer 2, so it can wait until layer 1.
        assert_eq!(t.alap(3), 1);
        assert_eq!(t.slack(3), 1);
        // The chain cz(1,2) -> cz(0,1) -> cz(0,2) is critical.
        for g in [2, 4, 5] {
            assert!(t.is_critical(g), "gate {g} should be critical");
        }
    }

    #[test]
    fn asap_never_exceeds_alap() {
        let c = fredkin_like();
        let t = SlackTable::compute(&DependencyDag::build(&c));
        for g in 0..t.len() {
            assert!(t.asap(g) <= t.alap(g));
            assert_eq!(t.slack(g), t.alap(g) - t.asap(g));
        }
    }

    #[test]
    fn critical_gates_chain_to_full_depth() {
        // Every zero-slack gate below the last level has a zero-slack
        // successor one level deeper, so critical gates form a path that
        // spans the whole depth.
        let c = fredkin_like();
        let dag = DependencyDag::build(&c);
        let t = SlackTable::compute(&dag);
        for g in 0..t.len() {
            if t.is_critical(g) && t.asap(g) + 1 < t.depth() {
                assert!(
                    dag.successors(g)
                        .iter()
                        .any(|&s| t.is_critical(s as usize) && t.asap(s as usize) == t.asap(g) + 1),
                    "critical gate {g} has no critical successor"
                );
            }
        }
    }

    #[test]
    fn empty_circuit() {
        let c = Circuit::new(2);
        let t = SlackTable::compute(&DependencyDag::build(&c));
        assert!(t.is_empty());
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn single_gate() {
        let mut c = Circuit::new(1);
        c.push(Gate::h(0));
        let t = SlackTable::compute(&DependencyDag::build(&c));
        assert_eq!(t.depth(), 1);
        assert_eq!(t.slack(0), 0);
    }

    #[test]
    fn sweeps_match_fixpoint_oracle() {
        for (n, len, seed) in [(4usize, 24usize, 7u64), (6, 60, 11), (9, 120, 13)] {
            let mut c = Circuit::new(n);
            // Small LCG-driven mix of U3 and CZ gates.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as usize
            };
            for _ in 0..len {
                let a = next() % n;
                if next() % 3 == 0 {
                    c.push(Gate::h(a as u32));
                } else {
                    let b = (a + 1 + next() % (n - 1)) % n;
                    c.push(Gate::cz(a as u32, b as u32));
                }
            }
            let dag = DependencyDag::build(&c);
            assert_eq!(SlackTable::compute(&dag), SlackTable::compute_naive(&dag));
        }
    }
}
