//! Lowering from the QASM AST to a flat [`Circuit`] in the {U3, CZ} basis.
//!
//! This pass plays the role of the basis-translation stage of the Qiskit
//! transpiler in the paper's methodology: every gate call is recursively
//! expanded through its (built-in or user) definition until only `u3`-family
//! and `cx`/`cz` primitives remain, which map onto [`Gate::U3`] and
//! [`Gate::Cz`]. Register arguments broadcast per QASM 2.0 semantics.

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::qelib;
use parallax_qasm::ast::{Argument, GateDef, Program, Statement};
use parallax_qasm::expr::Expr;
use std::collections::HashMap;
use std::f64::consts::FRAC_PI_2;
use std::fmt;

/// Maximum depth of nested gate-definition expansion.
const MAX_EXPANSION_DEPTH: usize = 64;

/// An error produced while lowering a parsed program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError(pub String);

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering error: {}", self.0)
    }
}

impl std::error::Error for LowerError {}

/// Lower a parsed QASM program to a flat circuit.
///
/// `measure` and `barrier` statements are accepted and dropped (every
/// compiler in the suite measures all qubits at the end of the circuit, as
/// the paper's shot model assumes); `reset` and classical conditionals are
/// rejected — no Table III benchmark uses them.
pub fn from_qasm(program: &Program) -> Result<Circuit, LowerError> {
    let num_qubits = program.total_qubits();
    if num_qubits == 0 {
        return Err(LowerError("program declares no qubits".into()));
    }
    let offsets = program.qubit_offsets();
    let qreg_sizes: HashMap<String, usize> = program.qregs().into_iter().collect();
    let mut defs: HashMap<String, GateDef> = qelib::builtin_defs().clone();
    let mut circuit = Circuit::new(num_qubits);

    for stmt in &program.statements {
        match stmt {
            Statement::Include(_) => {} // builtins are always available
            Statement::QRegDecl { .. } | Statement::CRegDecl { .. } => {}
            Statement::GateDef(def) => {
                defs.insert(def.name.clone(), def.clone());
            }
            Statement::Measure { .. } | Statement::Barrier(_) => {}
            Statement::Reset(_) => {
                return Err(LowerError("reset statements are not supported".into()));
            }
            Statement::Conditional { .. } => {
                return Err(LowerError("classical conditionals are not supported".into()));
            }
            Statement::GateCall { name, params, args } => {
                for concrete in broadcast(args, &offsets, &qreg_sizes)? {
                    let values: Vec<f64> = params
                        .iter()
                        .map(|e| e.eval_const().map_err(LowerError))
                        .collect::<Result<_, _>>()?;
                    expand_numeric(name, &values, &concrete, &defs, &mut circuit, 0)?;
                }
            }
        }
    }
    Ok(circuit)
}

/// Resolve arguments to flat qubit indices, broadcasting whole-register
/// arguments (all register args must agree in size).
fn broadcast(
    args: &[Argument],
    offsets: &HashMap<String, usize>,
    sizes: &HashMap<String, usize>,
) -> Result<Vec<Vec<u32>>, LowerError> {
    let mut width: Option<usize> = None;
    for a in args {
        if let Argument::Register(r) = a {
            let size =
                *sizes.get(r).ok_or_else(|| LowerError(format!("unknown register '{r}'")))?;
            match width {
                None => width = Some(size),
                Some(w) if w == size => {}
                Some(w) => {
                    return Err(LowerError(format!(
                        "broadcast size mismatch: register '{r}' has {size} qubits, expected {w}"
                    )))
                }
            }
        }
    }
    let width = width.unwrap_or(1);
    let mut out = Vec::with_capacity(width);
    for k in 0..width {
        let mut concrete = Vec::with_capacity(args.len());
        for a in args {
            let (reg, idx) = match a {
                Argument::Register(r) => (r, k),
                Argument::Indexed(r, i) => (r, *i),
            };
            let off =
                *offsets.get(reg).ok_or_else(|| LowerError(format!("unknown register '{reg}'")))?;
            let size = sizes[reg];
            if idx >= size {
                return Err(LowerError(format!(
                    "index {idx} out of range for register '{reg}' of size {size}"
                )));
            }
            concrete.push((off + idx) as u32);
        }
        let mut sorted = concrete.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != concrete.len() {
            return Err(LowerError("gate call repeats a qubit operand".into()));
        }
        out.push(concrete);
    }
    Ok(out)
}

/// Expand a gate call whose parameters are already numeric.
fn expand_numeric(
    name: &str,
    params: &[f64],
    qubits: &[u32],
    defs: &HashMap<String, GateDef>,
    out: &mut Circuit,
    depth: usize,
) -> Result<(), LowerError> {
    if depth > MAX_EXPANSION_DEPTH {
        return Err(LowerError(format!("gate expansion too deep at '{name}' (cycle?)")));
    }
    let arity_err = |want: usize| {
        LowerError(format!("gate '{name}' expects {want} qubit(s), got {}", qubits.len()))
    };
    let param_err = |want: usize| {
        LowerError(format!("gate '{name}' expects {want} parameter(s), got {}", params.len()))
    };
    match name {
        "u3" | "u" | "U" => {
            if qubits.len() != 1 {
                return Err(arity_err(1));
            }
            if params.len() != 3 {
                return Err(param_err(3));
            }
            out.push(Gate::u3(qubits[0], params[0], params[1], params[2]));
        }
        "u2" => {
            if qubits.len() != 1 {
                return Err(arity_err(1));
            }
            if params.len() != 2 {
                return Err(param_err(2));
            }
            out.push(Gate::u3(qubits[0], FRAC_PI_2, params[0], params[1]));
        }
        "u1" | "p" => {
            if qubits.len() != 1 {
                return Err(arity_err(1));
            }
            if params.len() != 1 {
                return Err(param_err(1));
            }
            out.push(Gate::rz(qubits[0], params[0]));
        }
        "id" => {
            if qubits.len() != 1 {
                return Err(arity_err(1));
            }
        }
        "cx" | "CX" => {
            if qubits.len() != 2 {
                return Err(arity_err(2));
            }
            // CX(a, b) = (I ⊗ H) CZ (I ⊗ H) — exact identity.
            out.push(Gate::h(qubits[1]));
            out.push(Gate::cz(qubits[0], qubits[1]));
            out.push(Gate::h(qubits[1]));
        }
        "cz" => {
            if qubits.len() != 2 {
                return Err(arity_err(2));
            }
            out.push(Gate::cz(qubits[0], qubits[1]));
        }
        _ => {
            let def = defs.get(name).ok_or_else(|| LowerError(format!("unknown gate '{name}'")))?;
            if def.opaque {
                return Err(LowerError(format!("cannot expand opaque gate '{name}'")));
            }
            if def.params.len() != params.len() {
                return Err(param_err(def.params.len()));
            }
            if def.qubits.len() != qubits.len() {
                return Err(arity_err(def.qubits.len()));
            }
            let param_env: HashMap<String, f64> =
                def.params.iter().cloned().zip(params.iter().copied()).collect();
            let qubit_env: HashMap<&str, u32> =
                def.qubits.iter().map(String::as_str).zip(qubits.iter().copied()).collect();
            for body in &def.body {
                let values: Vec<f64> = body
                    .params
                    .iter()
                    .map(|e| eval_with(e, &param_env))
                    .collect::<Result<_, _>>()?;
                let mapped: Vec<u32> = body
                    .qubits
                    .iter()
                    .map(|q| {
                        qubit_env.get(q.as_str()).copied().ok_or_else(|| {
                            LowerError(format!("unknown qubit formal '{q}' in gate '{name}'"))
                        })
                    })
                    .collect::<Result<_, _>>()?;
                expand_numeric(&body.name, &values, &mapped, defs, out, depth + 1)?;
            }
        }
    }
    Ok(())
}

fn eval_with(e: &Expr, env: &HashMap<String, f64>) -> Result<f64, LowerError> {
    e.eval(env).map_err(LowerError)
}

/// Apply a named gate (primitive or built-in qelib gate) with numeric
/// parameters directly to a circuit. This is the programmatic twin of a QASM
/// gate call and is what [`crate::builder::CircuitBuilder`] delegates to.
pub fn apply_named(
    circuit: &mut Circuit,
    name: &str,
    params: &[f64],
    qubits: &[u32],
) -> Result<(), LowerError> {
    expand_numeric(name, params, qubits, qelib::builtin_defs(), circuit, 0)
}

/// Convenience: parse QASM source and lower it in one step.
pub fn circuit_from_qasm_str(source: &str) -> Result<Circuit, LowerError> {
    let program = parallax_qasm::parse(source).map_err(|e| LowerError(e.to_string()))?;
    from_qasm(&program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn lower(src: &str) -> Circuit {
        circuit_from_qasm_str(src).unwrap()
    }

    #[test]
    fn lowers_primitives_directly() {
        let c = lower("OPENQASM 2.0;\nqreg q[2];\nu3(0.1,0.2,0.3) q[0];\ncz q[0],q[1];\n");
        assert_eq!(c.len(), 2);
        assert_eq!(c.cz_count(), 1);
    }

    #[test]
    fn cx_becomes_h_cz_h() {
        let c = lower("OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[1];\n");
        assert_eq!(c.len(), 3);
        assert_eq!(c.gates()[0], Gate::h(1));
        assert_eq!(c.gates()[1], Gate::cz(0, 1));
        assert_eq!(c.gates()[2], Gate::h(1));
    }

    #[test]
    fn builtin_gates_expand() {
        let c = lower("OPENQASM 2.0;\nqreg q[3];\nccx q[0],q[1],q[2];\n");
        // ccx has 6 cx -> 6 CZ plus single-qubit gates.
        assert_eq!(c.cz_count(), 6);
    }

    #[test]
    fn swap_is_three_cz() {
        let c = lower("OPENQASM 2.0;\nqreg q[2];\nswap q[0],q[1];\n");
        assert_eq!(c.cz_count(), 3);
    }

    #[test]
    fn user_gate_with_params_expands() {
        let src = "OPENQASM 2.0;\nqreg q[2];\ngate mine(t) a,b { rz(t/2) a; cx a,b; rz(-t/2) b; }\nmine(pi) q[0],q[1];\n";
        let c = lower(src);
        assert_eq!(c.cz_count(), 1);
        match c.gates()[0] {
            Gate::U3 { q: 0, theta, lam, .. } => {
                assert_eq!(theta, 0.0);
                assert!((lam - PI / 2.0).abs() < 1e-12);
            }
            other => panic!("unexpected first gate {other:?}"),
        }
    }

    #[test]
    fn register_broadcast() {
        let c = lower("OPENQASM 2.0;\nqreg q[4];\nh q;\n");
        assert_eq!(c.len(), 4);
        assert_eq!(c.u3_count(), 4);
    }

    #[test]
    fn two_register_broadcast() {
        let c = lower("OPENQASM 2.0;\nqreg a[3];\nqreg b[3];\ncx a,b;\n");
        assert_eq!(c.cz_count(), 3);
        // cx a[i], b[i] pairs with flat offsets 0..3 and 3..6.
        assert_eq!(c.gates()[1], Gate::cz(0, 3));
    }

    #[test]
    fn mixed_broadcast_repeats_indexed_arg() {
        let c = lower("OPENQASM 2.0;\nqreg a[1];\nqreg b[3];\ncx a[0],b;\n");
        assert_eq!(c.cz_count(), 3);
        assert_eq!(c.gates()[1], Gate::cz(0, 1));
        assert_eq!(c.gates()[4], Gate::cz(0, 2));
    }

    #[test]
    fn broadcast_size_mismatch_errors() {
        let r = circuit_from_qasm_str("OPENQASM 2.0;\nqreg a[2];\nqreg b[3];\ncx a,b;\n");
        assert!(r.is_err());
    }

    #[test]
    fn repeated_operand_errors() {
        let r = circuit_from_qasm_str("OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[0];\n");
        assert!(r.is_err());
    }

    #[test]
    fn out_of_range_index_errors() {
        let r = circuit_from_qasm_str("OPENQASM 2.0;\nqreg q[2];\nh q[5];\n");
        assert!(r.is_err());
    }

    #[test]
    fn unknown_gate_errors() {
        let r = circuit_from_qasm_str("OPENQASM 2.0;\nqreg q[1];\nwarp q[0];\n");
        assert!(r.is_err());
    }

    #[test]
    fn reset_and_conditionals_rejected() {
        assert!(circuit_from_qasm_str("OPENQASM 2.0;\nqreg q[1];\nreset q[0];\n").is_err());
        assert!(circuit_from_qasm_str(
            "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nif (c == 0) x q[0];\n"
        )
        .is_err());
    }

    #[test]
    fn measure_and_barrier_dropped() {
        let c = lower(
            "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\nbarrier q[0],q[1];\nmeasure q -> c;\n",
        );
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn id_gate_is_dropped() {
        let c = lower("OPENQASM 2.0;\nqreg q[1];\nid q[0];\n");
        assert!(c.is_empty());
    }

    #[test]
    fn recursive_user_gate_errors_not_hangs() {
        let src = "OPENQASM 2.0;\nqreg q[1];\ngate loop a { loop a; }\nloop q[0];\n";
        assert!(circuit_from_qasm_str(src).is_err());
    }

    #[test]
    fn multi_register_offsets() {
        let c = lower("OPENQASM 2.0;\nqreg a[2];\nqreg b[2];\ncz a[1],b[0];\n");
        assert_eq!(c.gates()[0], Gate::cz(1, 2));
        assert_eq!(c.num_qubits(), 4);
    }
}
