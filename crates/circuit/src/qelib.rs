//! Built-in gate library equivalent to `qelib1.inc`.
//!
//! The benchmarks reference the standard OpenQASM 2.0 gate set. Rather than
//! resolving the include from disk, the definitions are embedded here in
//! QASM syntax and parsed once on first use. Every definition bottoms out in
//! the primitives `u3`/`u2`/`u1`/`cx`/`cz`/`id`, which the lowering pass in
//! [`crate::lower`] maps onto the {U3, CZ} hardware basis.
//!
//! All decompositions are the exact (global-phase-respecting where it
//! matters, i.e. inside controlled constructions) textbook identities used
//! by `qelib1.inc` itself, so lowering preserves circuit semantics — a fact
//! the statevector equivalence tests in `parallax-sim` verify.

use parallax_qasm::ast::GateDef;
use std::collections::HashMap;
use std::sync::OnceLock;

/// QASM source of the built-in library.
pub const QELIB_SRC: &str = r#"OPENQASM 2.0;
gate x a { u3(pi,0,pi) a; }
gate y a { u3(pi,pi/2,pi/2) a; }
gate z a { u1(pi) a; }
gate h a { u2(0,pi) a; }
gate s a { u1(pi/2) a; }
gate sdg a { u1(-pi/2) a; }
gate t a { u1(pi/4) a; }
gate tdg a { u1(-pi/4) a; }
gate rx(theta) a { u3(theta,-pi/2,pi/2) a; }
gate ry(theta) a { u3(theta,0,0) a; }
gate rz(phi) a { u1(phi) a; }
gate sx a { sdg a; h a; sdg a; }
gate sxdg a { s a; h a; s a; }
gate cy a,b { sdg b; cx a,b; s b; }
gate swap a,b { cx a,b; cx b,a; cx a,b; }
gate ch a,b { h b; sdg b; cx a,b; h b; t b; cx a,b; t b; h b; s b; x b; s a; }
gate ccx a,b,c { h c; cx b,c; tdg c; cx a,c; t c; cx b,c; tdg c; cx a,c; t b; t c; h c; cx a,b; t a; tdg b; cx a,b; }
gate ccz a,b,c { h c; ccx a,b,c; h c; }
gate cswap a,b,c { cx c,b; ccx a,b,c; cx c,b; }
gate crx(lambda) a,b { u1(pi/2) b; cx a,b; u3(-lambda/2,0,0) b; cx a,b; u3(lambda/2,-pi/2,0) b; }
gate cry(lambda) a,b { ry(lambda/2) b; cx a,b; ry(-lambda/2) b; cx a,b; }
gate crz(lambda) a,b { rz(lambda/2) b; cx a,b; rz(-lambda/2) b; cx a,b; }
gate cu1(lambda) a,b { u1(lambda/2) a; cx a,b; u1(-lambda/2) b; cx a,b; u1(lambda/2) b; }
gate cp(lambda) a,b { cu1(lambda) a,b; }
gate cu3(theta,phi,lambda) c,t { u1((lambda+phi)/2) c; u1((lambda-phi)/2) t; cx c,t; u3(-theta/2,0,-(phi+lambda)/2) t; cx c,t; u3(theta/2,phi,0) t; }
gate rzz(theta) a,b { cx a,b; u1(theta) b; cx a,b; }
gate rxx(theta) a,b { h a; h b; cx a,b; u1(theta) b; cx a,b; h a; h b; }
gate ryy(theta) a,b { rx(pi/2) a; rx(pi/2) b; cx a,b; u1(theta) b; cx a,b; rx(-pi/2) a; rx(-pi/2) b; }
"#;

/// Names handled directly by the lowering pass (never looked up in the
/// definition table).
pub const PRIMITIVES: &[&str] = &["u3", "u2", "u1", "u", "p", "U", "CX", "cx", "cz", "id"];

/// True when `name` is a lowering primitive.
pub fn is_primitive(name: &str) -> bool {
    PRIMITIVES.contains(&name)
}

/// The parsed built-in definitions, keyed by gate name.
pub fn builtin_defs() -> &'static HashMap<String, GateDef> {
    static DEFS: OnceLock<HashMap<String, GateDef>> = OnceLock::new();
    DEFS.get_or_init(|| {
        parallax_qasm::parse(QELIB_SRC).expect("embedded qelib source must parse").gate_defs()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_library_parses() {
        let defs = builtin_defs();
        for name in [
            "x", "y", "z", "h", "s", "sdg", "t", "tdg", "rx", "ry", "rz", "sx", "sxdg", "cy",
            "swap", "ch", "ccx", "ccz", "cswap", "crx", "cry", "crz", "cu1", "cp", "cu3", "rzz",
            "rxx", "ryy",
        ] {
            assert!(defs.contains_key(name), "missing builtin gate '{name}'");
        }
    }

    #[test]
    fn ccx_has_fifteen_operations() {
        assert_eq!(builtin_defs()["ccx"].body.len(), 15);
    }

    #[test]
    fn primitives_are_not_defined_as_gates() {
        let defs = builtin_defs();
        for p in PRIMITIVES {
            assert!(!defs.contains_key(*p), "primitive '{p}' must stay primitive");
        }
        assert!(is_primitive("u3"));
        assert!(is_primitive("cz"));
        assert!(!is_primitive("ccx"));
    }

    #[test]
    fn parameterized_builtins_record_formals() {
        let defs = builtin_defs();
        assert_eq!(defs["cu3"].params, vec!["theta", "phi", "lambda"]);
        assert_eq!(defs["cu3"].qubits, vec!["c", "t"]);
    }
}
