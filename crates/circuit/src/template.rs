//! Parameterized circuit templates for variational sweeps.
//!
//! QAOA/VQE-style traffic compiles millions of circuits that differ only
//! in their U3 rotation angles. Placement and movement scheduling depend
//! only on circuit *structure* (CZ topology + gate order), so the sweep's
//! members can share one compiled artifact. This module provides the
//! structure side of that contract: a [`CircuitTemplate`] canonicalizes a
//! circuit's angles into ordinal parameter slots, hashes the remaining
//! structure ([`structural_hash`]), and re-materializes concrete circuits
//! via [`CircuitTemplate::bind`] — validating arity and finiteness so a
//! malformed parameter vector can never produce a silently-wrong circuit.
//!
//! The structural hash is defined as the FNV-1a hash of the circuit's
//! canonical QASM rendering with every angle replaced by its slot marker —
//! byte-identical to
//! [`parallax_qasm::structural_source_hash`] of [`Circuit::to_qasm`], so
//! the text front end and the IR agree on what "same structure" means.

use crate::circuit::Circuit;
use crate::gate::Gate;
use parallax_qasm::fnv1a_64;
use std::fmt;

/// One gate of a template: a U3 whose three angles are ordinal parameter
/// slots, or an angle-free CZ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemplateGate {
    /// `U3` whose `(theta, phi, lambda)` come from `slots` of the bound
    /// parameter vector.
    U3 {
        /// Target qubit.
        q: u32,
        /// Parameter-vector indices for `(theta, phi, lambda)`.
        slots: [usize; 3],
    },
    /// Two-qubit controlled-Z (carries no parameters).
    Cz {
        /// First qubit.
        a: u32,
        /// Second qubit.
        b: u32,
    },
}

/// A circuit with its rotation angles abstracted into ordinal slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitTemplate {
    num_qubits: usize,
    gates: Vec<TemplateGate>,
    num_params: usize,
    structural: u64,
}

/// Why a parameter vector could not be bound to a template.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BindError {
    /// The vector's length does not match the template's slot count.
    ParamCount {
        /// Slots the template expects.
        expected: usize,
        /// Parameters supplied.
        got: usize,
    },
    /// A parameter is NaN or infinite.
    NonFinite {
        /// Slot index of the offending parameter.
        slot: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BindError::ParamCount { expected, got } => {
                write!(f, "parameter count mismatch: template has {expected} slots, got {got}")
            }
            BindError::NonFinite { slot, value } => {
                write!(f, "parameter {slot} is not finite ({value})")
            }
        }
    }
}

impl std::error::Error for BindError {}

impl CircuitTemplate {
    /// Abstract `circuit` into a template: each U3 angle becomes the next
    /// ordinal parameter slot, in program order `(theta, phi, lambda)`.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut gates = Vec::with_capacity(circuit.len());
        let mut slot = 0usize;
        for g in circuit.gates() {
            match *g {
                Gate::U3 { q, .. } => {
                    gates.push(TemplateGate::U3 { q, slots: [slot, slot + 1, slot + 2] });
                    slot += 3;
                }
                Gate::Cz { a, b } => gates.push(TemplateGate::Cz { a, b }),
            }
        }
        let structural = structural_hash(circuit);
        Self { num_qubits: circuit.num_qubits(), gates, num_params: slot, structural }
    }

    /// Number of qubits of every bound circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of parameter slots a bind must fill (3 per U3 gate).
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True when the template contains no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The template's gates with slot back-references.
    pub fn gates(&self) -> &[TemplateGate] {
        &self.gates
    }

    /// The structural fingerprint shared by every circuit this template
    /// abstracts (see [`structural_hash`]).
    pub fn structural_hash(&self) -> u64 {
        self.structural
    }

    /// True when `circuit` has exactly this template's structure (same
    /// qubit count, gate kinds, operands, and order) — i.e. when
    /// [`params_of`](Self::params_of) would succeed.
    pub fn matches(&self, circuit: &Circuit) -> bool {
        self.params_of(circuit).is_some()
    }

    /// Extract the parameter vector that would re-bind to `circuit`, or
    /// `None` if `circuit` does not share this template's structure.
    pub fn params_of(&self, circuit: &Circuit) -> Option<Vec<f64>> {
        if circuit.num_qubits() != self.num_qubits || circuit.len() != self.gates.len() {
            return None;
        }
        let mut params = vec![0.0; self.num_params];
        for (tg, g) in self.gates.iter().zip(circuit.gates()) {
            match (*tg, *g) {
                (TemplateGate::U3 { q, slots }, Gate::U3 { q: cq, theta, phi, lam }) if q == cq => {
                    params[slots[0]] = theta;
                    params[slots[1]] = phi;
                    params[slots[2]] = lam;
                }
                (TemplateGate::Cz { a, b }, Gate::Cz { a: ca, b: cb }) if a == ca && b == cb => {}
                _ => return None,
            }
        }
        Some(params)
    }

    /// Materialize a concrete circuit from `params`.
    ///
    /// Fails (never panics) on arity mismatch or non-finite parameters, so
    /// untrusted parameter vectors — e.g. from the service protocol — are
    /// safe to bind directly.
    pub fn bind(&self, params: &[f64]) -> Result<Circuit, BindError> {
        if params.len() != self.num_params {
            return Err(BindError::ParamCount { expected: self.num_params, got: params.len() });
        }
        if let Some(slot) = params.iter().position(|v| !v.is_finite()) {
            return Err(BindError::NonFinite { slot, value: params[slot] });
        }
        let mut c = Circuit::new(self.num_qubits);
        for tg in &self.gates {
            match *tg {
                TemplateGate::U3 { q, slots } => {
                    c.push(Gate::u3(q, params[slots[0]], params[slots[1]], params[slots[2]]));
                }
                TemplateGate::Cz { a, b } => c.push(Gate::cz(a, b)),
            }
        }
        Ok(c)
    }
}

/// Structural fingerprint of a circuit: the FNV-1a hash of its canonical
/// QASM rendering with every U3 angle replaced by its ordinal slot marker
/// (`$0`, `$1`, ...). Circuits that differ only in rotation angles collide
/// here; any change to gate kinds, operands, order, or register sizes does
/// not. Identical to `parallax_qasm::structural_source_hash(&c.to_qasm())`.
pub fn structural_hash(circuit: &Circuit) -> u64 {
    use std::fmt::Write as _;
    let n = circuit.num_qubits();
    let mut out = String::new();
    let _ = writeln!(out, "OPENQASM 2.0;");
    let _ = writeln!(out, "include \"qelib1.inc\";");
    let _ = writeln!(out, "qreg q[{n}];");
    let _ = writeln!(out, "creg c[{n}];");
    let mut slot = 0usize;
    for g in circuit.gates() {
        match *g {
            Gate::U3 { q, .. } => {
                let _ = writeln!(out, "u3(${},${},${}) q[{q}];", slot, slot + 1, slot + 2);
                slot += 3;
            }
            Gate::Cz { a, b } => {
                let _ = writeln!(out, "cz q[{a}],q[{b}];");
            }
        }
    }
    let _ = writeln!(out, "measure q -> c;");
    fnv1a_64(out.as_bytes())
}

/// Bit-exact content hash of a circuit: FNV-1a over the qubit count and
/// every gate's kind, operands, and raw angle bit patterns (in program
/// order). Two circuits collide exactly when every gate and every angle
/// bit agrees — the same discrimination as hashing the canonical QASM
/// rendering, at a fraction of the cost: no float formatting, which
/// dominates text hashing on angle-dense circuits. This is the sweep
/// protocol's per-point attestation (`bound_hash`): it runs once per
/// rebind inside the microsecond budget, and a client can recompute it
/// from its own [`CircuitTemplate::bind`] to verify the server
/// materialized the same member.
pub fn circuit_bits_hash(circuit: &Circuit) -> u64 {
    let mut bytes = Vec::with_capacity(8 + circuit.len() * 29);
    bytes.extend_from_slice(&(circuit.num_qubits() as u64).to_le_bytes());
    for g in circuit.gates() {
        match *g {
            Gate::U3 { q, theta, phi, lam } => {
                bytes.push(1);
                bytes.extend_from_slice(&q.to_le_bytes());
                for a in [theta, phi, lam] {
                    bytes.extend_from_slice(&a.to_bits().to_le_bytes());
                }
            }
            Gate::Cz { a, b } => {
                bytes.push(2);
                bytes.extend_from_slice(&a.to_le_bytes());
                bytes.extend_from_slice(&b.to_le_bytes());
            }
        }
    }
    fnv1a_64(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::h(0));
        c.push(Gate::cz(0, 1));
        c.push(Gate::u3(2, 0.1, -0.2, 0.3));
        c.push(Gate::cz(1, 2));
        c
    }

    #[test]
    fn round_trips_its_own_circuit() {
        let c = sample();
        let t = CircuitTemplate::from_circuit(&c);
        assert_eq!(t.num_params(), 6);
        assert_eq!(t.len(), 4);
        assert!(t.matches(&c));
        let params = t.params_of(&c).unwrap();
        assert_eq!(t.bind(&params).unwrap(), c);
    }

    #[test]
    fn bind_swaps_in_new_angles_without_touching_structure() {
        let c = sample();
        let t = CircuitTemplate::from_circuit(&c);
        let params = vec![0.0, PI, 2.0 * PI, -PI / 2.0, 1.25, -3.0];
        let bound = t.bind(&params).unwrap();
        assert_eq!(structural_hash(&bound), t.structural_hash());
        assert_ne!(bound, c);
        assert_eq!(bound.gates()[0], Gate::u3(0, 0.0, PI, 2.0 * PI));
        assert_eq!(bound.gates()[1], Gate::cz(0, 1));
    }

    #[test]
    fn bind_rejects_bad_parameter_vectors() {
        let t = CircuitTemplate::from_circuit(&sample());
        assert_eq!(t.bind(&[0.0; 5]).unwrap_err(), BindError::ParamCount { expected: 6, got: 5 });
        let mut params = vec![0.0; 6];
        params[4] = f64::NAN;
        assert!(matches!(t.bind(&params).unwrap_err(), BindError::NonFinite { slot: 4, .. }));
        params[4] = f64::INFINITY;
        assert!(matches!(t.bind(&params).unwrap_err(), BindError::NonFinite { slot: 4, .. }));
        // Error messages are human-readable for the service protocol.
        assert!(t.bind(&[0.0; 5]).unwrap_err().to_string().contains("6 slots"));
    }

    #[test]
    fn structural_hash_is_angle_blind_but_structure_sighted() {
        let a = sample();
        let t = CircuitTemplate::from_circuit(&a);
        let b = t.bind(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(structural_hash(&a), structural_hash(&b));

        let mut other_qubit = Circuit::new(3);
        other_qubit.push(Gate::h(1)); // h(0) -> h(1)
        other_qubit.push(Gate::cz(0, 1));
        other_qubit.push(Gate::u3(2, 0.1, -0.2, 0.3));
        other_qubit.push(Gate::cz(1, 2));
        assert_ne!(structural_hash(&a), structural_hash(&other_qubit));

        let mut fewer = sample();
        fewer = {
            let mut c = Circuit::new(3);
            for g in fewer.gates().iter().take(3) {
                c.push(*g);
            }
            c
        };
        assert_ne!(structural_hash(&a), structural_hash(&fewer));
    }

    #[test]
    fn bits_hash_is_angle_sighted_and_text_equivalent() {
        let a = sample();
        let t = CircuitTemplate::from_circuit(&a);
        let b = t.bind(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        // Angle-sighted where the structural hash is angle-blind…
        assert_ne!(circuit_bits_hash(&a), circuit_bits_hash(&b));
        assert_eq!(structural_hash(&a), structural_hash(&b));
        // …and exactly as discriminating as the canonical text: equal bits
        // imply equal QASM, distinct bits came from distinct circuits.
        let c = t.params_of(&a).map(|p| t.bind(&p).unwrap()).unwrap();
        assert_eq!(circuit_bits_hash(&a), circuit_bits_hash(&c));
        assert_eq!(a.to_qasm(), c.to_qasm());
        let mut fewer = Circuit::new(3);
        fewer.push(Gate::h(0));
        assert_ne!(circuit_bits_hash(&a), circuit_bits_hash(&fewer));
    }

    #[test]
    fn structural_hash_agrees_with_the_qasm_front_end() {
        for c in [sample(), Circuit::new(2), {
            let mut c = Circuit::new(4);
            c.push(Gate::cz(0, 3));
            c.push(Gate::rz(1, 0.7));
            c
        }] {
            assert_eq!(
                structural_hash(&c),
                parallax_qasm::structural_source_hash(&c.to_qasm()).unwrap(),
                "IR and text front end must agree on structure"
            );
        }
    }

    #[test]
    fn mismatched_structures_fail_params_of() {
        let t = CircuitTemplate::from_circuit(&sample());
        let mut other = Circuit::new(3);
        other.push(Gate::cz(0, 1));
        assert!(t.params_of(&other).is_none());
        assert!(!t.matches(&other));
        // Same length, different gate kind at one position.
        let mut swapped = Circuit::new(3);
        swapped.push(Gate::h(0));
        swapped.push(Gate::cz(0, 1));
        swapped.push(Gate::h(2));
        swapped.push(Gate::cz(1, 2));
        assert!(t.params_of(&swapped).is_some(), "same structure, different angles");
        let mut kinds = Circuit::new(3);
        kinds.push(Gate::cz(0, 1));
        kinds.push(Gate::h(0));
        kinds.push(Gate::u3(2, 0.1, -0.2, 0.3));
        kinds.push(Gate::cz(1, 2));
        assert!(kinds.len() == t.len() && t.params_of(&kinds).is_none());
    }
}
