//! Minimal complex/2x2-unitary arithmetic used by the peephole optimizer
//! and the statevector simulator.
//!
//! Implemented from scratch (no external complex-number crate) so the whole
//! suite stays within the offline dependency allowlist.

use std::ops::{Add, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Complex zero.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// Complex one.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Construct from rectangular components.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// `e^{i theta}`.
    pub fn cis(theta: f64) -> Self {
        Self { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Argument in `(-pi, pi]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Scale by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Self { re: self.re * k, im: self.im * k }
    }
}

impl Add for C64 {
    type Output = C64;
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    fn mul(self, rhs: C64) -> C64 {
        C64::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl Neg for C64 {
    type Output = C64;
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

/// A 2x2 complex matrix in row-major order `[[m00, m01], [m10, m11]]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat2 {
    /// Entries `[m00, m01, m10, m11]`.
    pub m: [C64; 4],
}

impl Mat2 {
    /// Identity matrix.
    pub const IDENTITY: Mat2 =
        Mat2 { m: [C64 { re: 1.0, im: 0.0 }, C64::ZERO, C64::ZERO, C64 { re: 1.0, im: 0.0 }] };

    /// Build from rows.
    pub fn new(m00: C64, m01: C64, m10: C64, m11: C64) -> Self {
        Self { m: [m00, m01, m10, m11] }
    }

    /// The matrix of `U3(theta, phi, lambda)` following the OpenQASM
    /// convention used in the paper's background section.
    pub fn u3(theta: f64, phi: f64, lam: f64) -> Self {
        let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
        Mat2::new(
            C64::new(c, 0.0),
            -(C64::cis(lam).scale(s)),
            C64::cis(phi).scale(s),
            C64::cis(phi + lam).scale(c),
        )
    }

    /// Matrix product `self * rhs` (applies `rhs` first).
    pub fn mul(&self, rhs: &Mat2) -> Mat2 {
        let a = &self.m;
        let b = &rhs.m;
        Mat2::new(
            a[0] * b[0] + a[1] * b[2],
            a[0] * b[1] + a[1] * b[3],
            a[2] * b[0] + a[3] * b[2],
            a[2] * b[1] + a[3] * b[3],
        )
    }

    /// Frobenius distance to `other` after aligning global phase, i.e. the
    /// distance between the projective unitaries. Zero means the matrices
    /// are equal up to global phase.
    pub fn phase_distance(&self, other: &Mat2) -> f64 {
        // Align phases using the largest-magnitude entry of `other`.
        let (mut best, mut idx) = (0.0f64, 0usize);
        for (i, e) in other.m.iter().enumerate() {
            if e.abs() > best {
                best = e.abs();
                idx = i;
            }
        }
        if best < 1e-12 {
            return f64::INFINITY;
        }
        let phase = self.m[idx].arg() - other.m[idx].arg();
        let rot = C64::cis(-phase);
        let mut d = 0.0;
        for i in 0..4 {
            let diff = self.m[i] * rot - other.m[i];
            d += diff.norm_sq();
        }
        d.sqrt()
    }

    /// Whether the matrix is unitary within `eps`.
    pub fn is_unitary(&self, eps: f64) -> bool {
        // U * U^dagger == I
        let a = &self.m;
        let entries = [
            a[0] * a[0].conj() + a[1] * a[1].conj(),
            a[0] * a[2].conj() + a[1] * a[3].conj(),
            a[2] * a[0].conj() + a[3] * a[1].conj(),
            a[2] * a[2].conj() + a[3] * a[3].conj(),
        ];
        (entries[0] - C64::ONE).abs() < eps
            && entries[1].abs() < eps
            && entries[2].abs() < eps
            && (entries[3] - C64::ONE).abs() < eps
    }
}

/// Decompose a 2x2 unitary into `(theta, phi, lambda)` such that
/// `U = e^{i alpha} * U3(theta, phi, lambda)` for some global phase `alpha`.
///
/// This is the ZYZ-style extraction the peephole optimizer uses to merge
/// chains of adjacent one-qubit gates back into a single `U3`.
pub fn zyz_decompose(u: &Mat2) -> (f64, f64, f64) {
    let m = &u.m;
    let c = m[0].abs().clamp(0.0, 1.0);
    let s = m[2].abs().clamp(0.0, 1.0);
    let theta = 2.0 * s.atan2(c);
    // Degenerate branches: theta ~ 0 (diagonal) and theta ~ pi (anti-diagonal).
    if s < 1e-12 {
        // Diagonal: U = e^{i alpha} diag(1, e^{i(phi+lam)}); put it all in lambda.
        let alpha = m[0].arg();
        let lam = m[3].arg() - alpha;
        return (0.0, 0.0, lam);
    }
    if c < 1e-12 {
        // Anti-diagonal: U = e^{i alpha} [[0, -e^{i lam}], [e^{i phi}, 0]];
        // choose phi = 0 and absorb the rest into alpha and lambda.
        let alpha = m[2].arg();
        let lam = (-m[1]).arg() - alpha;
        return (std::f64::consts::PI, 0.0, lam);
    }
    let alpha = m[0].arg();
    let phi = m[2].arg() - alpha;
    let lam = (-m[1]).arg() - alpha;
    (theta, phi, lam)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn complex_arithmetic() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert_eq!(a + b, C64::new(4.0, 1.0));
        assert_eq!(a - b, C64::new(-2.0, 3.0));
        assert_eq!(a * b, C64::new(5.0, 5.0));
        assert_eq!(-a, C64::new(-1.0, -2.0));
        assert_eq!(a.conj(), C64::new(1.0, -2.0));
        assert_close(C64::cis(FRAC_PI_2).im, 1.0);
        assert_close(C64::new(3.0, 4.0).abs(), 5.0);
    }

    #[test]
    fn u3_special_values() {
        // U3(pi, 0, pi) == X
        let x = Mat2::u3(PI, 0.0, PI);
        assert!(x.m[0].abs() < 1e-12);
        assert_close(x.m[1].re, 1.0);
        assert_close(x.m[2].re, 1.0);
        assert!(x.m[3].abs() < 1e-12);

        // U3(0, 0, pi) == Z
        let z = Mat2::u3(0.0, 0.0, PI);
        assert_close(z.m[0].re, 1.0);
        assert_close(z.m[3].re, -1.0);

        // U3(pi/2, 0, pi) == H up to sign conventions
        let h = Mat2::u3(FRAC_PI_2, 0.0, PI);
        let inv = 1.0 / 2.0_f64.sqrt();
        assert_close(h.m[0].re, inv);
        assert_close(h.m[1].re, inv);
        assert_close(h.m[2].re, inv);
        assert_close(h.m[3].re, -inv);
    }

    #[test]
    fn u3_matrices_are_unitary() {
        for &(t, p, l) in
            &[(0.3, 1.1, -0.7), (0.0, 0.0, 0.0), (PI, 2.0, 3.0), (FRAC_PI_2, -1.0, 0.5)]
        {
            assert!(Mat2::u3(t, p, l).is_unitary(1e-10));
        }
    }

    #[test]
    fn matrix_multiplication_against_known_product() {
        // H * H == I
        let h = Mat2::u3(FRAC_PI_2, 0.0, PI);
        let hh = h.mul(&h);
        assert!(hh.phase_distance(&Mat2::IDENTITY) < 1e-9);
    }

    #[test]
    fn zyz_roundtrip_generic() {
        let cases = [
            (0.7, 0.3, -1.2),
            (2.1, -0.4, 0.9),
            (1.0, 0.0, 0.0),
            (0.0, 0.0, 1.3),
            (PI, 0.0, 0.4),
            (PI - 1e-5, 2.5, -2.5), // near-gimbal-lock
        ];
        for &(t, p, l) in &cases {
            let u = Mat2::u3(t, p, l);
            let (t2, p2, l2) = zyz_decompose(&u);
            let v = Mat2::u3(t2, p2, l2);
            assert!(
                u.phase_distance(&v) < 1e-8,
                "roundtrip failed for ({t},{p},{l}) -> ({t2},{p2},{l2})"
            );
        }
    }

    #[test]
    fn zyz_handles_phased_inputs() {
        // Multiply by a global phase; the decomposition must still match
        // projectively.
        let u = Mat2::u3(1.1, 0.2, 0.3);
        let phased = Mat2::new(
            u.m[0] * C64::cis(0.77),
            u.m[1] * C64::cis(0.77),
            u.m[2] * C64::cis(0.77),
            u.m[3] * C64::cis(0.77),
        );
        let (t, p, l) = zyz_decompose(&phased);
        assert!(Mat2::u3(t, p, l).phase_distance(&u) < 1e-8);
    }

    #[test]
    fn phase_distance_detects_difference() {
        let a = Mat2::u3(1.0, 0.0, 0.0);
        let b = Mat2::u3(1.0, 0.5, 0.0);
        assert!(a.phase_distance(&b) > 1e-3);
        assert!(a.phase_distance(&a) < 1e-12);
    }
}
