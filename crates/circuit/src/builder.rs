//! Ergonomic programmatic circuit construction.
//!
//! The workload generators build the 18 Table III benchmarks directly in
//! Rust; [`CircuitBuilder`] gives them the same named-gate vocabulary a QASM
//! file would have, lowering every call straight to the {U3, CZ} basis via
//! [`crate::lower::apply_named`].

use crate::circuit::Circuit;
use crate::lower::apply_named;

/// Builder over a growing [`Circuit`].
///
/// All methods panic on misuse (bad qubit index, repeated operands) since
/// builder callers are in-repo generators, not untrusted input.
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    circuit: Circuit,
}

macro_rules! one_qubit {
    ($(#[$doc:meta] $fn_name:ident => $gate:literal),+ $(,)?) => {
        $(
            #[$doc]
            pub fn $fn_name(&mut self, q: u32) -> &mut Self {
                self.apply($gate, &[], &[q])
            }
        )+
    };
}

macro_rules! one_qubit_param {
    ($(#[$doc:meta] $fn_name:ident => $gate:literal),+ $(,)?) => {
        $(
            #[$doc]
            pub fn $fn_name(&mut self, angle: f64, q: u32) -> &mut Self {
                self.apply($gate, &[angle], &[q])
            }
        )+
    };
}

macro_rules! two_qubit {
    ($(#[$doc:meta] $fn_name:ident => $gate:literal),+ $(,)?) => {
        $(
            #[$doc]
            pub fn $fn_name(&mut self, a: u32, b: u32) -> &mut Self {
                self.apply($gate, &[], &[a, b])
            }
        )+
    };
}

macro_rules! two_qubit_param {
    ($(#[$doc:meta] $fn_name:ident => $gate:literal),+ $(,)?) => {
        $(
            #[$doc]
            pub fn $fn_name(&mut self, angle: f64, a: u32, b: u32) -> &mut Self {
                self.apply($gate, &[angle], &[a, b])
            }
        )+
    };
}

impl CircuitBuilder {
    /// Start building a circuit on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Self { circuit: Circuit::new(num_qubits) }
    }

    /// Finish and return the built circuit.
    pub fn build(self) -> Circuit {
        self.circuit
    }

    /// Read access to the circuit under construction.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Apply any named qelib gate.
    pub fn apply(&mut self, name: &str, params: &[f64], qubits: &[u32]) -> &mut Self {
        apply_named(&mut self.circuit, name, params, qubits)
            .unwrap_or_else(|e| panic!("builder misuse: {e}"));
        self
    }

    one_qubit! {
        /// Hadamard.
        h => "h",
        /// Pauli-X.
        x => "x",
        /// Pauli-Y.
        y => "y",
        /// Pauli-Z.
        z => "z",
        /// Phase gate S.
        s => "s",
        /// S-dagger.
        sdg => "sdg",
        /// T gate.
        t => "t",
        /// T-dagger.
        tdg => "tdg",
        /// Square-root of X.
        sx => "sx",
    }

    one_qubit_param! {
        /// X-rotation.
        rx => "rx",
        /// Y-rotation.
        ry => "ry",
        /// Z-rotation.
        rz => "rz",
        /// Phase gate `p(lambda)`.
        p => "p",
    }

    two_qubit! {
        /// Controlled-X.
        cx => "cx",
        /// Controlled-Z.
        cz => "cz",
        /// Controlled-Y.
        cy => "cy",
        /// Controlled-H.
        ch => "ch",
        /// SWAP (three CZ after lowering).
        swap => "swap",
    }

    two_qubit_param! {
        /// Controlled phase.
        cp => "cp",
        /// Controlled X-rotation.
        crx => "crx",
        /// Controlled Y-rotation.
        cry => "cry",
        /// Controlled Z-rotation.
        crz => "crz",
        /// Ising ZZ interaction.
        rzz => "rzz",
        /// Ising XX interaction.
        rxx => "rxx",
        /// Ising YY interaction.
        ryy => "ryy",
    }

    /// General one-qubit rotation.
    pub fn u3(&mut self, theta: f64, phi: f64, lam: f64, q: u32) -> &mut Self {
        self.apply("u3", &[theta, phi, lam], &[q])
    }

    /// Controlled-U3.
    pub fn cu3(&mut self, theta: f64, phi: f64, lam: f64, c: u32, t: u32) -> &mut Self {
        self.apply("cu3", &[theta, phi, lam], &[c, t])
    }

    /// Toffoli.
    pub fn ccx(&mut self, a: u32, b: u32, c: u32) -> &mut Self {
        self.apply("ccx", &[], &[a, b, c])
    }

    /// Controlled-controlled-Z.
    pub fn ccz(&mut self, a: u32, b: u32, c: u32) -> &mut Self {
        self.apply("ccz", &[], &[a, b, c])
    }

    /// Fredkin (controlled-SWAP).
    pub fn cswap(&mut self, c: u32, a: u32, b: u32) -> &mut Self {
        self.apply("cswap", &[], &[c, a, b])
    }

    /// Multi-controlled X over arbitrarily many controls using a clean
    /// ancilla chain (ancillas must be distinct from controls and target and
    /// are returned to |0>). With zero controls this is `x`; with one, `cx`;
    /// with two, `ccx`. For `k >= 3` controls, `k - 2` ancillas are required.
    pub fn mcx(&mut self, controls: &[u32], target: u32, ancillas: &[u32]) -> &mut Self {
        match controls.len() {
            0 => return self.x(target),
            1 => return self.cx(controls[0], target),
            2 => return self.ccx(controls[0], controls[1], target),
            k => assert!(
                ancillas.len() >= k - 2,
                "mcx with {k} controls needs {} ancillas, got {}",
                k - 2,
                ancillas.len()
            ),
        }
        let k = controls.len();
        // Forward ladder of Toffolis into ancillas.
        self.ccx(controls[0], controls[1], ancillas[0]);
        for i in 2..k - 1 {
            self.ccx(controls[i], ancillas[i - 2], ancillas[i - 1]);
        }
        self.ccx(controls[k - 1], ancillas[k - 3], target);
        // Uncompute the ladder.
        for i in (2..k - 1).rev() {
            self.ccx(controls[i], ancillas[i - 2], ancillas[i - 1]);
        }
        self.ccx(controls[0], controls[1], ancillas[0]);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_bell_pair() {
        let mut b = CircuitBuilder::new(2);
        b.h(0).cx(0, 1);
        let c = b.build();
        assert_eq!(c.cz_count(), 1);
        assert_eq!(c.u3_count(), 3); // h + (h cz h)
    }

    #[test]
    fn chained_calls_accumulate() {
        let mut b = CircuitBuilder::new(3);
        b.h(0).h(1).h(2).cz(0, 1).cz(1, 2).rz(0.5, 0);
        assert_eq!(b.circuit().len(), 6);
    }

    #[test]
    fn ising_gates_lower() {
        let mut b = CircuitBuilder::new(2);
        b.rzz(0.3, 0, 1);
        assert_eq!(b.circuit().cz_count(), 2);
    }

    #[test]
    #[should_panic(expected = "outside circuit")]
    fn bad_qubit_panics() {
        let mut b = CircuitBuilder::new(1);
        b.cx(0, 1);
    }

    #[test]
    fn mcx_small_cases() {
        let mut b = CircuitBuilder::new(4);
        b.mcx(&[], 0, &[]);
        b.mcx(&[0], 1, &[]);
        b.mcx(&[0, 1], 2, &[]);
        // 1 (x) + 1 (cx) + 6 (ccx) CZ after lowering = 0 + 1 + 6
        assert_eq!(b.circuit().cz_count(), 7);
    }

    #[test]
    fn mcx_with_ancillas_uncomputes() {
        let mut b = CircuitBuilder::new(8);
        // 4 controls, 2 ancillas: 2*(k-2)+1 = 5 Toffolis.
        b.mcx(&[0, 1, 2, 3], 6, &[4, 5]);
        assert_eq!(b.circuit().cz_count(), 5 * 6);
    }

    #[test]
    #[should_panic(expected = "ancillas")]
    fn mcx_without_enough_ancillas_panics() {
        let mut b = CircuitBuilder::new(5);
        b.mcx(&[0, 1, 2], 3, &[]);
    }

    #[test]
    fn cu3_expands_to_two_cz() {
        let mut b = CircuitBuilder::new(2);
        b.cu3(0.1, 0.2, 0.3, 0, 1);
        assert_eq!(b.circuit().cz_count(), 2);
    }
}
