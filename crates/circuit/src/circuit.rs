//! The flat circuit container shared by all compilers.

use crate::gate::Gate;
use std::collections::BTreeMap;
use std::fmt;

/// A quantum circuit over the {U3, CZ} basis.
///
/// Gates are stored in program order. Two gates commute for scheduling
/// purposes iff they act on disjoint qubits; all compilers in this suite
/// preserve the per-qubit gate order (the dependency model of the paper's
/// Algorithm 1).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Create an empty circuit on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Self { num_qubits, gates: Vec::new() }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// All gates in program order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True when the circuit contains no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Append a gate, validating its qubit indices.
    ///
    /// # Panics
    /// Panics if a qubit index is out of range.
    pub fn push(&mut self, gate: Gate) {
        for q in &gate.qubits() {
            assert!(
                (q as usize) < self.num_qubits,
                "gate {gate} references qubit {q} outside circuit of {} qubits",
                self.num_qubits
            );
        }
        self.gates.push(gate);
    }

    /// Append every gate of `other` (qubit indices are shared).
    pub fn extend_from(&mut self, other: &Circuit) {
        assert!(other.num_qubits <= self.num_qubits);
        for g in &other.gates {
            self.push(*g);
        }
    }

    /// Number of two-qubit CZ gates — metric (1) of the paper's evaluation.
    pub fn cz_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Number of one-qubit U3 gates.
    pub fn u3_count(&self) -> usize {
        self.gates.len() - self.cz_count()
    }

    /// Interaction multiset: for every unordered qubit pair `(min, max)`,
    /// the number of CZ gates between them. This is the weighted graph
    /// GRAPHINE anneals over.
    pub fn cz_pair_counts(&self) -> BTreeMap<(u32, u32), usize> {
        let mut map = BTreeMap::new();
        for g in &self.gates {
            if let Gate::Cz { a, b } = *g {
                let key = (a.min(b), a.max(b));
                *map.entry(key).or_insert(0) += 1;
            }
        }
        map
    }

    /// Number of distinct partners each qubit shares a CZ with (the paper's
    /// notion of qubit connectivity, used to explain Fig. 9).
    pub fn connectivity(&self) -> Vec<usize> {
        let mut partners: Vec<std::collections::BTreeSet<u32>> =
            vec![Default::default(); self.num_qubits];
        for g in &self.gates {
            if let Gate::Cz { a, b } = *g {
                partners[a as usize].insert(b);
                partners[b as usize].insert(a);
            }
        }
        partners.into_iter().map(|s| s.len()).collect()
    }

    /// Circuit depth counted in parallel layers (see [`crate::dag::layers`]).
    pub fn depth(&self) -> usize {
        crate::dag::layers(self).len()
    }

    /// Per-qubit gate-index lists in program order as one CSR pair
    /// (offsets + flat targets), the structure the scheduler's frontier
    /// walks on every layer. Built by a stable counting sort, so each
    /// qubit's row is exactly the nested
    /// [`Circuit::qubit_gate_indices`] oracle's list.
    pub fn qubit_gates_csr(&self) -> QubitGatesCsr {
        assert!(self.gates.len() < u32::MAX as usize, "circuit too large for u32 gate indices");
        let mut offsets = vec![0u32; self.num_qubits + 1];
        for g in &self.gates {
            for q in &g.qubits() {
                offsets[q as usize + 1] += 1;
            }
        }
        for q in 1..=self.num_qubits {
            offsets[q] += offsets[q - 1];
        }
        let mut cursor: Vec<u32> = offsets[..self.num_qubits].to_vec();
        let mut targets = vec![0u32; *offsets.last().unwrap() as usize];
        for (i, g) in self.gates.iter().enumerate() {
            for q in &g.qubits() {
                targets[cursor[q as usize] as usize] = i as u32;
                cursor[q as usize] += 1;
            }
        }
        QubitGatesCsr { offsets, targets }
    }

    /// Per-qubit lists of gate indices in program order — the nested-Vec
    /// layout [`Circuit::qubit_gates_csr`] replaced, kept as its
    /// differential oracle and for the naive scheduler twin. (Not
    /// cfg-gated: downstream crates' release-profile test builds compile
    /// their naive oracles against this crate's release build.)
    pub fn qubit_gate_indices(&self) -> Vec<Vec<usize>> {
        let mut per_qubit = vec![Vec::new(); self.num_qubits];
        for (i, g) in self.gates.iter().enumerate() {
            for q in &g.qubits() {
                per_qubit[q as usize].push(i);
            }
        }
        per_qubit
    }

    /// Render as OpenQASM 2.0 text (inverse of `from_qasm` up to
    /// decomposition).
    pub fn to_qasm(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "OPENQASM 2.0;");
        let _ = writeln!(out, "include \"qelib1.inc\";");
        let _ = writeln!(out, "qreg q[{}];", self.num_qubits);
        let _ = writeln!(out, "creg c[{}];", self.num_qubits);
        for g in &self.gates {
            let _ = writeln!(out, "{g};");
        }
        let _ = writeln!(out, "measure q -> c;");
        out
    }
}

/// CSR view of per-qubit gate-index lists: qubit `q`'s gates occupy
/// `targets[offsets[q] as usize..offsets[q + 1] as usize]`, ascending.
/// Two flat arrays total, so the scheduler frontier's per-layer head
/// probes hit contiguous memory regardless of qubit count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QubitGatesCsr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl QubitGatesCsr {
    /// Number of qubits (rows).
    pub fn num_qubits(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Qubit `q`'s gate indices in program order.
    pub fn row(&self, q: usize) -> &[u32] {
        &self.targets[self.offsets[q] as usize..self.offsets[q + 1] as usize]
    }

    /// The `idx`-th gate on qubit `q`, or `None` past the row's end — the
    /// frontier's head probe (`row(q)[ptr[q]]` with bounds semantics).
    #[inline]
    pub fn gate_at(&self, q: usize, idx: usize) -> Option<usize> {
        self.row(q).get(idx).map(|&g| g as usize)
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Circuit({} qubits, {} gates: {} U3 + {} CZ, depth {})",
            self.num_qubits,
            self.len(),
            self.u3_count(),
            self.cz_count(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::h(0));
        c.push(Gate::cz(0, 1));
        c.push(Gate::cz(1, 2));
        c.push(Gate::cz(0, 1));
        c.push(Gate::x(2));
        c
    }

    #[test]
    fn counts() {
        let c = sample();
        assert_eq!(c.len(), 5);
        assert_eq!(c.cz_count(), 3);
        assert_eq!(c.u3_count(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside circuit")]
    fn push_validates_qubits() {
        let mut c = Circuit::new(2);
        c.push(Gate::cz(0, 2));
    }

    #[test]
    fn pair_counts_are_unordered() {
        let mut c = Circuit::new(2);
        c.push(Gate::cz(0, 1));
        c.push(Gate::cz(1, 0));
        let pairs = c.cz_pair_counts();
        assert_eq!(pairs[&(0, 1)], 2);
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn connectivity_counts_distinct_partners() {
        let c = sample();
        assert_eq!(c.connectivity(), vec![1, 2, 1]);
    }

    #[test]
    fn qubit_gate_indices_in_order() {
        let c = sample();
        let per_q = c.qubit_gate_indices();
        assert_eq!(per_q[0], vec![0, 1, 3]);
        assert_eq!(per_q[1], vec![1, 2, 3]);
        assert_eq!(per_q[2], vec![2, 4]);
    }

    #[test]
    fn qubit_gates_csr_matches_nested_oracle() {
        let c = sample();
        let csr = c.qubit_gates_csr();
        let nested = c.qubit_gate_indices();
        assert_eq!(csr.num_qubits(), 3);
        for (q, nested_row) in nested.iter().enumerate() {
            let row: Vec<usize> = csr.row(q).iter().map(|&g| g as usize).collect();
            assert_eq!(&row, nested_row, "qubit {q}");
            assert_eq!(csr.gate_at(q, nested_row.len()), None);
        }
        assert_eq!(csr.gate_at(0, 1), Some(1));
    }

    #[test]
    fn extend_from_appends() {
        let mut a = Circuit::new(3);
        a.push(Gate::h(0));
        let b = sample();
        a.extend_from(&b);
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn to_qasm_reparses() {
        let c = sample();
        let text = c.to_qasm();
        let p = parallax_qasm::parse(&text).unwrap();
        assert_eq!(p.total_qubits(), 3);
    }

    #[test]
    fn display_mentions_counts() {
        let c = sample();
        let s = c.to_string();
        assert!(s.contains("3 qubits"));
        assert!(s.contains("3 CZ"));
    }
}
