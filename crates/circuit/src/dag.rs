//! Dependency analysis and ASAP layering.
//!
//! Gates on the same qubit must execute in program order; gates on disjoint
//! qubits may run in parallel (Fig. 1 of the paper). [`layers`] computes the
//! as-soon-as-possible layering; [`DependencyDag`] exposes the predecessor
//! structure the schedulers walk.

use crate::circuit::Circuit;

/// Compute ASAP layers: each inner `Vec` holds indices of gates that can run
/// in the same layer assuming full hardware parallelism.
pub fn layers(circuit: &Circuit) -> Vec<Vec<usize>> {
    let mut qubit_depth = vec![0usize; circuit.num_qubits()];
    let mut out: Vec<Vec<usize>> = Vec::new();
    for (i, g) in circuit.gates().iter().enumerate() {
        let layer = g.qubits().as_slice().iter().map(|&q| qubit_depth[q as usize]).max().unwrap();
        if layer == out.len() {
            out.push(Vec::new());
        }
        out[layer].push(i);
        for &q in g.qubits().as_slice() {
            qubit_depth[q as usize] = layer + 1;
        }
    }
    out
}

/// Explicit gate dependency DAG in compressed sparse row form.
///
/// `predecessors(i)` lists the gate indices that must complete before gate
/// `i` (at most one per operand qubit — the previous gate on that qubit).
/// Both directions are stored as one offsets array plus one flat target
/// array, so a full DAG walk touches two contiguous allocations instead of
/// a `Vec<Vec<_>>`'s per-gate heap islands; at 4,000-qubit circuits the
/// walk is bandwidth-bound and the layout is what keeps it cheap. The
/// per-list orders are identical to the retained nested-Vec oracle
/// ([`DependencyDag::build_nested`]) by construction: predecessors appear
/// in operand order, successors in ascending gate order (a stable
/// counting sort over edges discovered in ascending gate order).
#[derive(Debug, Clone)]
pub struct DependencyDag {
    /// Gate `i`'s predecessors occupy `pred_targets[pred_offsets[i] as
    /// usize..pred_offsets[i + 1] as usize]`.
    pred_offsets: Vec<u32>,
    pred_targets: Vec<u32>,
    /// Same shape for the successor direction.
    succ_offsets: Vec<u32>,
    succ_targets: Vec<u32>,
}

impl DependencyDag {
    /// Build the DAG for `circuit`.
    pub fn build(circuit: &Circuit) -> Self {
        let n = circuit.len();
        assert!(n < u32::MAX as usize, "circuit too large for u32 gate indices");
        // Predecessor edges in discovery order: ascending gate, and within
        // a gate, operand order (the nested builder's push order). Because
        // discovery order is already CSR order for the predecessor
        // direction, `edges` *is* `pred_targets`.
        let mut pred_targets: Vec<u32> = Vec::with_capacity(n * 2);
        let mut pred_offsets: Vec<u32> = Vec::with_capacity(n + 1);
        pred_offsets.push(0);
        let mut last_on_qubit: Vec<u32> = vec![u32::MAX; circuit.num_qubits()];
        for (i, g) in circuit.gates().iter().enumerate() {
            let start = *pred_offsets.last().unwrap() as usize;
            for &q in g.qubits().as_slice() {
                let p = last_on_qubit[q as usize];
                if p != u32::MAX && !pred_targets[start..].contains(&p) {
                    pred_targets.push(p);
                }
                last_on_qubit[q as usize] = i as u32;
            }
            pred_offsets.push(pred_targets.len() as u32);
        }
        // Successors: stable counting sort of the same edges by source
        // gate. Scattering in edge (= ascending gate) order reproduces the
        // nested builder's `succs[p].push(i)` order exactly.
        let mut succ_offsets = vec![0u32; n + 1];
        for &p in &pred_targets {
            succ_offsets[p as usize + 1] += 1;
        }
        for i in 1..=n {
            succ_offsets[i] += succ_offsets[i - 1];
        }
        let mut cursor: Vec<u32> = succ_offsets[..n].to_vec();
        let mut succ_targets = vec![0u32; pred_targets.len()];
        for i in 0..n {
            let (s, e) = (pred_offsets[i] as usize, pred_offsets[i + 1] as usize);
            for &p in &pred_targets[s..e] {
                succ_targets[cursor[p as usize] as usize] = i as u32;
                cursor[p as usize] += 1;
            }
        }
        Self { pred_offsets, pred_targets, succ_offsets, succ_targets }
    }

    /// The nested-Vec construction the CSR build replaced, kept as the
    /// differential oracle: `(preds, succs)` with the exact per-gate list
    /// orders [`DependencyDag::build`] must reproduce.
    #[cfg(any(test, debug_assertions))]
    pub fn build_nested(circuit: &Circuit) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
        let n = circuit.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        let mut last_on_qubit: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
        for (i, g) in circuit.gates().iter().enumerate() {
            for &q in g.qubits().as_slice() {
                if let Some(p) = last_on_qubit[q as usize] {
                    if !preds[i].contains(&p) {
                        preds[i].push(p);
                        succs[p].push(i);
                    }
                }
                last_on_qubit[q as usize] = Some(i);
            }
        }
        (preds, succs)
    }

    /// Gates that must run before gate `i`, in operand order.
    pub fn predecessors(&self, i: usize) -> &[u32] {
        &self.pred_targets[self.pred_offsets[i] as usize..self.pred_offsets[i + 1] as usize]
    }

    /// Gates that directly depend on gate `i`, ascending.
    pub fn successors(&self, i: usize) -> &[u32] {
        &self.succ_targets[self.succ_offsets[i] as usize..self.succ_offsets[i + 1] as usize]
    }

    /// Number of gates in the DAG.
    pub fn len(&self) -> usize {
        self.pred_offsets.len() - 1
    }

    /// True for an empty circuit.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Verify that `order` (a permutation of gate indices) respects every
    /// dependency edge. Used by tests and the simulator to validate
    /// schedules produced by the compilers.
    pub fn respects_order(&self, order: &[usize]) -> bool {
        if order.len() != self.len() {
            return false;
        }
        let mut pos = vec![usize::MAX; self.len()];
        for (at, &g) in order.iter().enumerate() {
            if g >= self.len() || pos[g] != usize::MAX {
                return false;
            }
            pos[g] = at;
        }
        for i in 0..self.len() {
            for &p in self.predecessors(i) {
                if pos[p as usize] >= pos[i] {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    fn fredkin_like() -> Circuit {
        // Mirrors the structure of the paper's Fig. 1: interleaved U3 and CZ.
        let mut c = Circuit::new(3);
        c.push(Gate::h(1)); // 0
        c.push(Gate::h(2)); // 1
        c.push(Gate::cz(1, 2)); // 2
        c.push(Gate::h(0)); // 3
        c.push(Gate::cz(0, 1)); // 4
        c.push(Gate::cz(0, 2)); // 5
        c.push(Gate::x(1)); // 6
        c
    }

    #[test]
    fn layers_pack_parallel_gates() {
        let c = fredkin_like();
        let ls = layers(&c);
        // Layer 0: h(1), h(2), h(0) all parallel.
        assert_eq!(ls[0], vec![0, 1, 3]);
        // Layer 1: cz(1,2).
        assert_eq!(ls[1], vec![2]);
        assert_eq!(ls[2], vec![4]);
        assert_eq!(ls[3], vec![5, 6]);
        assert_eq!(c.depth(), 4);
    }

    #[test]
    fn every_gate_appears_exactly_once_in_layers() {
        let c = fredkin_like();
        let mut seen = vec![false; c.len()];
        for l in layers(&c) {
            for i in l {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn dag_predecessors() {
        let c = fredkin_like();
        let dag = DependencyDag::build(&c);
        assert!(dag.predecessors(0).is_empty());
        assert_eq!(dag.predecessors(2), &[0, 1]);
        assert_eq!(dag.predecessors(4), &[3, 2]);
        assert_eq!(dag.predecessors(5), &[4, 2]);
        assert_eq!(dag.predecessors(6), &[4]);
        assert!(dag.successors(0).contains(&2));
    }

    #[test]
    fn csr_matches_nested_oracle_list_for_list() {
        let c = fredkin_like();
        let dag = DependencyDag::build(&c);
        let (preds, succs) = DependencyDag::build_nested(&c);
        for i in 0..c.len() {
            let p: Vec<usize> = dag.predecessors(i).iter().map(|&g| g as usize).collect();
            let s: Vec<usize> = dag.successors(i).iter().map(|&g| g as usize).collect();
            assert_eq!(p, preds[i], "preds of gate {i}");
            assert_eq!(s, succs[i], "succs of gate {i}");
        }
    }

    #[test]
    fn program_order_respects_dag() {
        let c = fredkin_like();
        let dag = DependencyDag::build(&c);
        let order: Vec<usize> = (0..c.len()).collect();
        assert!(dag.respects_order(&order));
    }

    #[test]
    fn swapped_dependent_gates_rejected() {
        let c = fredkin_like();
        let dag = DependencyDag::build(&c);
        let order = vec![0, 1, 4, 3, 2, 5, 6]; // cz(0,1) before cz(1,2)
        assert!(!dag.respects_order(&order));
    }

    #[test]
    fn commuting_reorder_accepted() {
        let c = fredkin_like();
        let dag = DependencyDag::build(&c);
        let order = vec![3, 1, 0, 2, 4, 6, 5]; // only disjoint-qubit swaps
        assert!(dag.respects_order(&order));
    }

    #[test]
    fn malformed_orders_rejected() {
        let c = fredkin_like();
        let dag = DependencyDag::build(&c);
        assert!(!dag.respects_order(&[0, 1])); // wrong length
        assert!(!dag.respects_order(&[0, 0, 1, 2, 3, 4, 5])); // duplicate
    }

    #[test]
    fn empty_circuit() {
        let c = Circuit::new(2);
        assert!(layers(&c).is_empty());
        let dag = DependencyDag::build(&c);
        assert!(dag.is_empty());
        assert!(dag.respects_order(&[]));
    }
}
