//! The {U3, CZ} universal basis used by every compiler in this suite.
//!
//! The Parallax paper compiles all circuits to one-qubit `U3` rotations
//! (implemented on hardware by Raman transitions) and two-qubit `CZ` gates
//! (implemented by Rydberg interactions). A SWAP is three CZ gates; Parallax
//! never emits one, the baselines do.

use std::fmt;

/// Angle tolerance for treating two gates as equal / a rotation as identity.
pub const ANGLE_EPS: f64 = 1e-9;

/// A gate in the neutral-atom basis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// General one-qubit rotation `U3(theta, phi, lambda)`.
    U3 {
        /// Target qubit.
        q: u32,
        /// Polar rotation angle.
        theta: f64,
        /// First phase angle.
        phi: f64,
        /// Second phase angle.
        lam: f64,
    },
    /// Two-qubit controlled-Z (symmetric in its operands).
    Cz {
        /// First qubit.
        a: u32,
        /// Second qubit.
        b: u32,
    },
}

impl Gate {
    /// Construct a `U3` gate.
    pub fn u3(q: u32, theta: f64, phi: f64, lam: f64) -> Self {
        Gate::U3 { q, theta, phi, lam }
    }

    /// Construct a `CZ` gate. Panics if `a == b`.
    pub fn cz(a: u32, b: u32) -> Self {
        assert_ne!(a, b, "CZ requires two distinct qubits");
        Gate::Cz { a, b }
    }

    /// Hadamard as a `U3`.
    pub fn h(q: u32) -> Self {
        Gate::u3(q, std::f64::consts::FRAC_PI_2, 0.0, std::f64::consts::PI)
    }

    /// Pauli-X as a `U3`.
    pub fn x(q: u32) -> Self {
        Gate::u3(q, std::f64::consts::PI, 0.0, std::f64::consts::PI)
    }

    /// Z-rotation (`u1`) as a `U3`.
    pub fn rz(q: u32, lam: f64) -> Self {
        Gate::u3(q, 0.0, 0.0, lam)
    }

    /// True for two-qubit gates.
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, Gate::Cz { .. })
    }

    /// The qubits this gate acts on (one or two entries).
    pub fn qubits(&self) -> GateQubits {
        match *self {
            Gate::U3 { q, .. } => GateQubits { qs: [q, 0], len: 1 },
            Gate::Cz { a, b } => GateQubits { qs: [a, b], len: 2 },
        }
    }

    /// First operand qubit.
    pub fn q0(&self) -> u32 {
        match *self {
            Gate::U3 { q, .. } => q,
            Gate::Cz { a, .. } => a,
        }
    }

    /// Second operand qubit for `CZ`, `None` for `U3`.
    pub fn q1(&self) -> Option<u32> {
        match *self {
            Gate::U3 { .. } => None,
            Gate::Cz { b, .. } => Some(b),
        }
    }

    /// Whether the gate acts on qubit `q`.
    pub fn acts_on(&self, q: u32) -> bool {
        match *self {
            Gate::U3 { q: t, .. } => t == q,
            Gate::Cz { a, b } => a == q || b == q,
        }
    }

    /// For a `CZ` acting on `q`, the other operand.
    pub fn partner(&self, q: u32) -> Option<u32> {
        match *self {
            Gate::Cz { a, b } if a == q => Some(b),
            Gate::Cz { a, b } if b == q => Some(a),
            _ => None,
        }
    }

    /// True if this `U3` is the identity up to global phase (within
    /// [`ANGLE_EPS`]). `CZ` gates are never identity.
    pub fn is_identity(&self) -> bool {
        match *self {
            Gate::U3 { theta, phi, lam, .. } => {
                let theta_zero = (theta.rem_euclid(2.0 * std::f64::consts::PI)).min(
                    (2.0 * std::f64::consts::PI) - theta.rem_euclid(2.0 * std::f64::consts::PI),
                ) < ANGLE_EPS;
                if !theta_zero {
                    return false;
                }
                let total = (phi + lam).rem_euclid(2.0 * std::f64::consts::PI);
                total.min(2.0 * std::f64::consts::PI - total) < ANGLE_EPS
            }
            Gate::Cz { .. } => false,
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Gate::U3 { q, theta, phi, lam } => {
                write!(f, "u3({theta:.6},{phi:.6},{lam:.6}) q[{q}]")
            }
            Gate::Cz { a, b } => write!(f, "cz q[{a}],q[{b}]"),
        }
    }
}

/// Small fixed-capacity qubit list returned by [`Gate::qubits`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateQubits {
    qs: [u32; 2],
    len: u8,
}

impl GateQubits {
    /// View as a slice of qubit indices.
    pub fn as_slice(&self) -> &[u32] {
        &self.qs[..self.len as usize]
    }

    /// Number of qubits (1 or 2).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Always false: a gate acts on at least one qubit.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl<'a> IntoIterator for &'a GateQubits {
    type Item = u32;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, u32>>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn qubit_accessors() {
        let g = Gate::cz(2, 5);
        assert_eq!(g.q0(), 2);
        assert_eq!(g.q1(), Some(5));
        assert_eq!(g.qubits().as_slice(), &[2, 5]);
        assert!(g.is_two_qubit());
        assert!(g.acts_on(2) && g.acts_on(5) && !g.acts_on(3));
        assert_eq!(g.partner(2), Some(5));
        assert_eq!(g.partner(5), Some(2));
        assert_eq!(g.partner(9), None);

        let u = Gate::h(1);
        assert_eq!(u.q0(), 1);
        assert_eq!(u.q1(), None);
        assert_eq!(u.qubits().len(), 1);
        assert!(!u.is_two_qubit());
        assert_eq!(u.partner(1), None);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn cz_rejects_equal_qubits() {
        let _ = Gate::cz(3, 3);
    }

    #[test]
    fn identity_detection() {
        assert!(Gate::u3(0, 0.0, 0.0, 0.0).is_identity());
        assert!(Gate::u3(0, 0.0, PI, -PI).is_identity());
        assert!(Gate::u3(0, 2.0 * PI, 0.0, 0.0).is_identity());
        assert!(!Gate::h(0).is_identity());
        assert!(!Gate::rz(0, 0.1).is_identity());
        assert!(!Gate::cz(0, 1).is_identity());
    }

    #[test]
    fn rz_is_theta_zero() {
        match Gate::rz(4, 1.25) {
            Gate::U3 { q, theta, phi, lam } => {
                assert_eq!(q, 4);
                assert_eq!(theta, 0.0);
                assert_eq!(phi, 0.0);
                assert_eq!(lam, 1.25);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Gate::cz(0, 1).to_string(), "cz q[0],q[1]");
        assert!(Gate::h(2).to_string().starts_with("u3("));
    }

    #[test]
    fn gate_qubits_iterates() {
        let g = Gate::cz(7, 3);
        let v: Vec<u32> = (&g.qubits()).into_iter().collect();
        assert_eq!(v, vec![7, 3]);
    }
}
