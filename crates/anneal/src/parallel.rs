//! Deterministic multi-restart parallel annealing.
//!
//! [`dual_annealing`] explores one seeded trajectory. This module runs `K`
//! **independent restart streams** — each a full [`dual_annealing`] run with
//! its own seed derived from the base seed by a SplitMix64 stream split —
//! across a scoped worker pool, then reduces to a single winner under a
//! *total order* (energy by [`f64::total_cmp`], ties broken by the lower
//! stream index).
//!
//! Because every stream is a pure function of `(base_seed, stream_index)`
//! and the reduction is order-independent of scheduling, the result is
//! **bit-identical for a given seed at any worker count** — 1 worker, 8
//! workers, or one per stream all return the same [`AnnealResult`]. With
//! `restarts == 1` the single stream uses the base seed unchanged, so the
//! output is byte-for-byte the plain [`dual_annealing`] result.

use crate::{dual_annealing, AnnealParams, AnnealResult};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Tuning knobs for [`dual_annealing_multi`].
#[derive(Debug, Clone)]
pub struct MultiRestartParams {
    /// Per-stream annealing parameters; `base.seed` is the base seed every
    /// stream seed derives from.
    pub base: AnnealParams,
    /// Number of independent restart streams `K` (min 1). Affects the
    /// result (more streams explore more basins).
    pub restarts: usize,
    /// Worker threads (0 = available CPUs). Never affects the result —
    /// only how fast the streams complete.
    pub workers: usize,
}

impl Default for MultiRestartParams {
    fn default() -> Self {
        Self { base: AnnealParams::default(), restarts: 1, workers: 0 }
    }
}

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed of restart stream `stream` for base seed `seed`.
///
/// Stream 0 uses the base seed unchanged (so a single-restart run
/// reproduces [`dual_annealing`] exactly); stream `k > 0` mixes the base
/// seed with the stream index through SplitMix64, giving well-separated,
/// platform-independent streams.
pub fn restart_seed(seed: u64, stream: usize) -> u64 {
    if stream == 0 {
        seed
    } else {
        splitmix64(seed ^ splitmix64(stream as u64))
    }
}

/// Number of workers to use for `restarts` streams when `requested` is the
/// configured worker count (0 = available CPUs).
fn effective_workers(requested: usize, restarts: usize) -> usize {
    let hw = if requested == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        requested
    };
    hw.clamp(1, restarts.max(1))
}

/// Global minimization of `K` independent annealing streams over `bounds`.
///
/// `make_objective` is called once per stream (on the worker that runs it)
/// so each stream gets private scratch state — e.g. its own incremental
/// energy table — without synchronization. The returned result is the
/// winning stream's point/energy with evaluation, iteration, restart, and
/// allocation counts **summed across all streams** (so `restarts == 1`
/// reports exactly the single-stream counts).
pub fn dual_annealing_multi<O, M>(
    make_objective: M,
    bounds: &[(f64, f64)],
    params: &MultiRestartParams,
) -> AnnealResult
where
    O: FnMut(&[f64]) -> f64,
    M: Fn() -> O + Sync,
{
    let streams = params.restarts.max(1);
    let stream_params =
        |k: usize| AnnealParams { seed: restart_seed(params.base.seed, k), ..params.base.clone() };
    if streams == 1 {
        return dual_annealing(make_objective(), bounds, &stream_params(0));
    }
    let workers = effective_workers(params.workers, streams);
    let mut slots: Vec<Option<AnnealResult>> = vec![None; streams];
    if workers == 1 {
        for (k, slot) in slots.iter_mut().enumerate() {
            *slot = Some(dual_annealing(make_objective(), bounds, &stream_params(k)));
        }
    } else {
        // Work-stealing over an atomic stream counter, results funneled
        // back by index — the same fan-out idiom as the bench harness.
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, AnnealResult)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let make_objective = &make_objective;
                let stream_params = &stream_params;
                scope.spawn(move || loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= streams {
                        return;
                    }
                    let r = dual_annealing(make_objective(), bounds, &stream_params(k));
                    if tx.send((k, r)).is_err() {
                        return;
                    }
                });
            }
            drop(tx);
            while let Ok((k, r)) = rx.recv() {
                slots[k] = Some(r);
            }
        });
    }
    reduce(slots.into_iter().map(|s| s.expect("all streams completed")))
}

/// Reduce per-stream results (in stream order) to the final winner: lowest
/// energy under `total_cmp`, first stream winning ties; counts summed.
fn reduce(results: impl Iterator<Item = AnnealResult>) -> AnnealResult {
    let mut best: Option<AnnealResult> = None;
    let (mut evals, mut iterations, mut restarts, mut allocs) = (0usize, 0usize, 0usize, 0usize);
    for r in results {
        evals += r.evals;
        iterations += r.iterations;
        restarts += r.restarts;
        allocs += r.allocs;
        let better = match &best {
            None => true,
            Some(b) => r.energy.total_cmp(&b.energy) == std::cmp::Ordering::Less,
        };
        if better {
            best = Some(r);
        }
    }
    let mut winner = best.expect("at least one stream");
    winner.evals = evals;
    winner.iterations = iterations;
    winner.restarts = restarts;
    winner.allocs = allocs;
    winner
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rastrigin(x: &[f64]) -> f64 {
        let a = 10.0;
        a * x.len() as f64
            + x.iter().map(|v| v * v - a * (2.0 * std::f64::consts::PI * v).cos()).sum::<f64>()
    }

    fn params(seed: u64, restarts: usize, workers: usize) -> MultiRestartParams {
        MultiRestartParams {
            base: AnnealParams {
                seed,
                max_iter: 150,
                local_search_evals: 300,
                ..Default::default()
            },
            restarts,
            workers,
        }
    }

    #[test]
    fn single_restart_matches_plain_dual_annealing() {
        let bounds = vec![(-5.12, 5.12); 3];
        let p = params(42, 1, 4);
        let multi = dual_annealing_multi(|| rastrigin, &bounds, &p);
        let plain = dual_annealing(rastrigin, &bounds, &p.base);
        assert_eq!(multi, plain);
    }

    #[test]
    fn bit_identical_across_worker_counts() {
        let bounds = vec![(-5.12, 5.12); 2];
        let reference = dual_annealing_multi(|| rastrigin, &bounds, &params(7, 4, 1));
        for workers in [2, 3, 4, 8] {
            let r = dual_annealing_multi(|| rastrigin, &bounds, &params(7, 4, workers));
            assert_eq!(r, reference, "workers={workers}");
        }
    }

    #[test]
    fn more_restarts_never_worsen_the_energy() {
        // Stream 0 is the plain run; the reduction only replaces it when a
        // later stream is strictly better under total_cmp.
        let bounds = vec![(-5.12, 5.12); 2];
        let one = dual_annealing_multi(|| rastrigin, &bounds, &params(3, 1, 1));
        let many = dual_annealing_multi(|| rastrigin, &bounds, &params(3, 6, 0));
        assert!(many.energy <= one.energy, "{} > {}", many.energy, one.energy);
        assert!(many.evals > one.evals, "counts must sum across streams");
    }

    #[test]
    fn restart_seeds_are_distinct_and_stream0_is_identity() {
        assert_eq!(restart_seed(99, 0), 99);
        let seeds: Vec<u64> = (0..16).map(|k| restart_seed(99, k)).collect();
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len(), "stream seeds must not collide: {seeds:?}");
    }

    #[test]
    fn per_stream_objective_state_is_private() {
        // Each stream's objective closure counts its own calls; totals must
        // add up to the summed evals, proving no cross-stream sharing.
        use std::sync::atomic::AtomicUsize;
        let total = AtomicUsize::new(0);
        let bounds = vec![(-1.0, 1.0); 2];
        let p = params(5, 3, 2);
        let r = dual_annealing_multi(
            || {
                let total = &total;
                let mut local = 0usize;
                move |x: &[f64]| {
                    local += 1;
                    total.fetch_add(1, Ordering::Relaxed);
                    let _ = local;
                    x.iter().map(|v| v * v).sum()
                }
            },
            &bounds,
            &p,
        );
        assert_eq!(total.load(Ordering::Relaxed), r.evals);
    }

    #[test]
    fn reduce_breaks_ties_by_stream_order() {
        let mk = |energy: f64, evals: usize| AnnealResult {
            x: vec![evals as f64],
            energy,
            evals,
            iterations: 1,
            restarts: 0,
            allocs: 2,
        };
        let r = reduce(vec![mk(1.0, 10), mk(1.0, 20), mk(0.5, 30), mk(0.5, 40)].into_iter());
        assert_eq!(r.x, vec![30.0], "first stream at the minimal energy wins");
        assert_eq!(r.evals, 100);
        assert_eq!(r.allocs, 8);
    }
}
