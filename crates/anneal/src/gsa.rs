//! Generalized simulated annealing core: visiting distribution, temperature
//! schedule, and acceptance rule, following the formulation used by SciPy's
//! `dual_annealing` (Tsallis/Stariolo GSA).

use crate::special::ln_gamma;
use rand::Rng;

/// The distorted Cauchy-Lorentz visiting distribution of GSA.
///
/// Samples displacements whose tails widen with temperature, enabling both
/// broad exploration at high temperature and fine moves near convergence.
#[derive(Debug, Clone)]
pub struct VisitingDistribution {
    qv: f64,
    factor2: f64,
    factor4_base: f64,
    factor5: f64,
    d1: f64,
    factor6: f64,
}

/// Displacements are clipped to this magnitude (matching SciPy's tail
/// truncation) so one sample cannot jump arbitrarily far.
const TAIL_LIMIT: f64 = 1e8;

impl VisitingDistribution {
    /// Create the distribution for visiting parameter `qv` (SciPy default
    /// 2.62; must be in `(1, 3)`).
    pub fn new(qv: f64) -> Self {
        assert!(qv > 1.0 && qv < 3.0, "visiting parameter must be in (1, 3)");
        let factor2 = ((4.0 - qv) * (qv - 1.0).ln()).exp();
        let factor3 = ((2.0 - qv) * std::f64::consts::LN_2 / (qv - 1.0)).exp();
        let factor4_base = std::f64::consts::PI.sqrt() * factor2 / (factor3 * (3.0 - qv));
        let factor5 = 1.0 / (qv - 1.0) - 0.5;
        let d1 = 2.0 - factor5;
        let factor6 = std::f64::consts::PI * (1.0 - factor5)
            / (std::f64::consts::PI * (1.0 - factor5)).sin()
            / (ln_gamma(d1)).exp();
        Self { qv, factor2, factor4_base, factor5, d1, factor6 }
    }

    /// Sample one visiting displacement at `temperature`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, temperature: f64) -> f64 {
        let factor1 = (temperature.ln() / (self.qv - 1.0)).exp();
        let factor4 = self.factor4_base * factor1;
        let x_base = ((-(self.qv - 1.0)) * (self.factor6 / factor4).ln() / (3.0 - self.qv)).exp();
        let x = x_base * gaussian(rng);
        let y: f64 = gaussian(rng);
        let den = ((self.qv - 1.0) * y.abs().ln() / (3.0 - self.qv)).exp();
        let visit = x / den;
        visit.clamp(-TAIL_LIMIT, TAIL_LIMIT)
    }

    /// Visiting parameter.
    pub fn qv(&self) -> f64 {
        self.qv
    }

    /// Internal normalization constants (exposed for tests).
    pub fn constants(&self) -> (f64, f64, f64) {
        (self.factor2, self.factor5, self.d1)
    }
}

/// Standard normal sample via Box-Muller (keeps us independent of
/// `rand_distr`, which is outside the offline allowlist).
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// GSA temperature schedule:
/// `t(k) = t0 * (2^(qv-1) - 1) / ((1 + k)^(qv-1) - 1)`.
pub fn temperature(t0: f64, qv: f64, step: usize) -> f64 {
    let s = qv - 1.0;
    t0 * (2f64.powf(s) - 1.0) / ((1.0 + step as f64).powf(s) - 1.0)
}

/// GSA acceptance probability for an energy increase `delta > 0` at
/// acceptance temperature `t_accept` with acceptance parameter `qa < 1`
/// (SciPy default -5.0). Improvements are always accepted by the caller.
pub fn acceptance_probability(qa: f64, delta: f64, t_accept: f64) -> f64 {
    let base = 1.0 - (1.0 - qa) * delta / t_accept.max(f64::MIN_POSITIVE);
    if base <= 0.0 {
        0.0
    } else {
        (base.ln() / (1.0 - qa)).exp().min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn temperature_schedule_decreases() {
        let t0 = 5230.0;
        let qv = 2.62;
        assert!((temperature(t0, qv, 1) - t0).abs() < 1e-9); // k=1 gives t0
        let mut prev = f64::INFINITY;
        for k in 1..100 {
            let t = temperature(t0, qv, k);
            assert!(t <= prev);
            assert!(t > 0.0);
            prev = t;
        }
    }

    #[test]
    fn acceptance_always_for_zero_delta() {
        assert!((acceptance_probability(-5.0, 0.0, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn acceptance_decreases_with_delta() {
        let t = 10.0;
        let p1 = acceptance_probability(-5.0, 1.0, t);
        let p2 = acceptance_probability(-5.0, 5.0, t);
        let p3 = acceptance_probability(-5.0, 500.0, t);
        assert!(p1 > p2);
        assert!(p2 >= p3);
        assert!((0.0..=1.0).contains(&p1));
    }

    #[test]
    fn acceptance_increases_with_temperature() {
        let p_cold = acceptance_probability(-5.0, 1.0, 0.01);
        let p_hot = acceptance_probability(-5.0, 1.0, 100.0);
        assert!(p_hot > p_cold);
    }

    #[test]
    fn visiting_samples_widen_with_temperature() {
        let vd = VisitingDistribution::new(2.62);
        let mut rng = StdRng::seed_from_u64(7);
        let spread = |t: f64, rng: &mut StdRng| {
            let mut acc = 0.0;
            for _ in 0..2000 {
                acc += vd.sample(rng, t).abs().min(1e6);
            }
            acc / 2000.0
        };
        let cold = spread(1e-6, &mut rng);
        let hot = spread(5230.0, &mut rng);
        assert!(hot > cold, "hot {hot} <= cold {cold}");
    }

    #[test]
    fn visiting_samples_are_finite() {
        let vd = VisitingDistribution::new(2.62);
        let mut rng = StdRng::seed_from_u64(42);
        for k in 1..500 {
            let t = temperature(5230.0, 2.62, k);
            let s = vd.sample(&mut rng, t);
            assert!(s.is_finite());
            assert!(s.abs() <= TAIL_LIMIT);
        }
    }

    #[test]
    #[should_panic(expected = "visiting parameter")]
    fn invalid_qv_rejected() {
        let _ = VisitingDistribution::new(3.5);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(123);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
