//! Bounded derivative-free local search used for the "dual" (refinement)
//! phase of dual annealing.
//!
//! SciPy refines with L-BFGS-B; the placement objectives in this suite are
//! non-smooth (distance terms with clamps), so a compass/pattern search is
//! both simpler and more robust. The search contracts a per-dimension step
//! until it stalls or the evaluation budget is exhausted.

/// Result of a local search.
#[derive(Debug, Clone)]
pub struct LocalResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub energy: f64,
    /// Number of objective evaluations consumed.
    pub evals: usize,
}

/// Compass (coordinate pattern) search within `bounds`, starting from `x0`
/// with objective `f`, spending at most `max_evals` evaluations.
pub fn pattern_search<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    x0: &[f64],
    bounds: &[(f64, f64)],
    max_evals: usize,
) -> LocalResult {
    assert_eq!(x0.len(), bounds.len(), "dimension mismatch");
    let dim = x0.len();
    let mut x = x0.to_vec();
    let mut energy = f(&x);
    let mut evals = 1usize;
    // Initial step: 10% of each dimension's range.
    let mut steps: Vec<f64> = bounds.iter().map(|(lo, hi)| 0.1 * (hi - lo).max(1e-12)).collect();
    let min_step: Vec<f64> = bounds.iter().map(|(lo, hi)| 1e-6 * (hi - lo).max(1e-12)).collect();

    while evals < max_evals {
        let mut improved = false;
        for d in 0..dim {
            if evals + 2 > max_evals {
                break;
            }
            for dir in [1.0f64, -1.0] {
                let mut cand = x.clone();
                cand[d] = (cand[d] + dir * steps[d]).clamp(bounds[d].0, bounds[d].1);
                if cand[d] == x[d] {
                    continue;
                }
                let e = f(&cand);
                evals += 1;
                if e < energy {
                    x = cand;
                    energy = e;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            let mut all_min = true;
            for d in 0..dim {
                steps[d] *= 0.5;
                if steps[d] > min_step[d] {
                    all_min = false;
                } else {
                    steps[d] = min_step[d];
                }
            }
            if all_min {
                break;
            }
        }
    }
    LocalResult { x, energy, evals }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let f = |x: &[f64]| (x[0] - 0.3).powi(2) + (x[1] + 0.2).powi(2);
        let r = pattern_search(f, &[0.9, 0.9], &[(-1.0, 1.0), (-1.0, 1.0)], 5_000);
        assert!((r.x[0] - 0.3).abs() < 1e-3, "{:?}", r.x);
        assert!((r.x[1] + 0.2).abs() < 1e-3, "{:?}", r.x);
        assert!(r.energy < 1e-5);
    }

    #[test]
    fn respects_bounds() {
        // Unconstrained optimum at (2, 2), outside the box.
        let f = |x: &[f64]| (x[0] - 2.0).powi(2) + (x[1] - 2.0).powi(2);
        let r = pattern_search(f, &[0.0, 0.0], &[(0.0, 1.0), (0.0, 1.0)], 5_000);
        assert!(r.x.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!((r.x[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn honors_eval_budget() {
        let mut count = 0usize;
        {
            let f = |x: &[f64]| {
                count += 1;
                x[0] * x[0]
            };
            let _ = pattern_search(f, &[0.5], &[(-1.0, 1.0)], 37);
        }
        assert!(count <= 37);
    }

    #[test]
    fn handles_nonsmooth_objective() {
        let f = |x: &[f64]| (x[0] - 0.25).abs() + (x[1] - 0.75).abs();
        let r = pattern_search(f, &[0.0, 0.0], &[(0.0, 1.0), (0.0, 1.0)], 10_000);
        assert!(r.energy < 1e-3, "energy = {}", r.energy);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let _ = pattern_search(|_| 0.0, &[0.0], &[(0.0, 1.0), (0.0, 1.0)], 10);
    }
}
