//! Bounded derivative-free local search used for the "dual" (refinement)
//! phase of dual annealing.
//!
//! SciPy refines with L-BFGS-B; the placement objectives in this suite are
//! non-smooth (distance terms with clamps), so a compass/pattern search is
//! both simpler and more robust. The search contracts a per-dimension step
//! until it stalls or the evaluation budget is exhausted.
//!
//! The probe loop is **allocation-free**: a single candidate buffer mirrors
//! the incumbent and only the probed coordinate is toggled, so every
//! objective evaluation costs zero heap traffic (the annealer performs tens
//! of thousands of probes per placement). The four setup allocations per
//! call are counted in [`LocalResult::allocs`] so the `PARALLAX_PROFILE`
//! instrumentation can attest the inner loop stays allocation-free.

/// Result of a local search.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub energy: f64,
    /// Number of objective evaluations consumed.
    pub evals: usize,
    /// Heap allocations performed (setup only; the probe loop makes none).
    pub allocs: usize,
}

/// Compass (coordinate pattern) search within `bounds`, starting from `x0`
/// with objective `f`, spending at most `max_evals` evaluations.
pub fn pattern_search<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    x0: &[f64],
    bounds: &[(f64, f64)],
    max_evals: usize,
) -> LocalResult {
    assert_eq!(x0.len(), bounds.len(), "dimension mismatch");
    let dim = x0.len();
    let mut x = x0.to_vec();
    let mut energy = f(&x);
    let mut evals = 1usize;
    // Initial step: 10% of each dimension's range.
    let mut steps: Vec<f64> = bounds.iter().map(|(lo, hi)| 0.1 * (hi - lo).max(1e-12)).collect();
    let min_step: Vec<f64> = bounds.iter().map(|(lo, hi)| 1e-6 * (hi - lo).max(1e-12)).collect();
    // `cand` mirrors `x` between probes; a probe toggles one coordinate and
    // either commits it into `x` or restores it — no per-probe clone.
    let mut cand = x.clone();
    let allocs = 4; // x, steps, min_step, cand

    while evals < max_evals {
        let mut improved = false;
        for d in 0..dim {
            if evals + 2 > max_evals {
                break;
            }
            for dir in [1.0f64, -1.0] {
                let probe = (x[d] + dir * steps[d]).clamp(bounds[d].0, bounds[d].1);
                if probe == x[d] {
                    continue;
                }
                cand[d] = probe;
                let e = f(&cand);
                evals += 1;
                if e < energy {
                    // Commit: `cand` already equals the improved point.
                    x[d] = probe;
                    energy = e;
                    improved = true;
                    break;
                }
                cand[d] = x[d];
            }
        }
        if !improved {
            let mut all_min = true;
            for d in 0..dim {
                steps[d] *= 0.5;
                if steps[d] > min_step[d] {
                    all_min = false;
                } else {
                    steps[d] = min_step[d];
                }
            }
            if all_min {
                break;
            }
        }
    }
    LocalResult { x, energy, evals, allocs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let f = |x: &[f64]| (x[0] - 0.3).powi(2) + (x[1] + 0.2).powi(2);
        let r = pattern_search(f, &[0.9, 0.9], &[(-1.0, 1.0), (-1.0, 1.0)], 5_000);
        assert!((r.x[0] - 0.3).abs() < 1e-3, "{:?}", r.x);
        assert!((r.x[1] + 0.2).abs() < 1e-3, "{:?}", r.x);
        assert!(r.energy < 1e-5);
    }

    #[test]
    fn respects_bounds() {
        // Unconstrained optimum at (2, 2), outside the box.
        let f = |x: &[f64]| (x[0] - 2.0).powi(2) + (x[1] - 2.0).powi(2);
        let r = pattern_search(f, &[0.0, 0.0], &[(0.0, 1.0), (0.0, 1.0)], 5_000);
        assert!(r.x.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!((r.x[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn honors_eval_budget() {
        let mut count = 0usize;
        {
            let f = |x: &[f64]| {
                count += 1;
                x[0] * x[0]
            };
            let _ = pattern_search(f, &[0.5], &[(-1.0, 1.0)], 37);
        }
        assert!(count <= 37);
    }

    #[test]
    fn handles_nonsmooth_objective() {
        let f = |x: &[f64]| (x[0] - 0.25).abs() + (x[1] - 0.75).abs();
        let r = pattern_search(f, &[0.0, 0.0], &[(0.0, 1.0), (0.0, 1.0)], 10_000);
        assert!(r.energy < 1e-3, "energy = {}", r.energy);
    }

    #[test]
    fn allocation_count_is_constant() {
        // The probe loop must not allocate: the reported count is the fixed
        // setup cost regardless of how many evaluations run.
        let short = pattern_search(|x| x[0] * x[0], &[0.9], &[(-1.0, 1.0)], 8);
        let long = pattern_search(|x| x[0] * x[0], &[0.9], &[(-1.0, 1.0)], 8_000);
        assert_eq!(short.allocs, long.allocs);
        assert!(long.evals > short.evals);
    }

    #[test]
    fn probes_stay_local_to_the_incumbent() {
        // The incremental energy table is fast only when consecutive probe
        // vectors differ in few coordinates. Each probe differs from the
        // incumbent in exactly one, so consecutive evaluations differ in at
        // most two (the restored coordinate plus the newly probed one).
        let mut last: Option<Vec<f64>> = None;
        let f = |x: &[f64]| {
            if let Some(prev) = &last {
                let changed = prev.iter().zip(x).filter(|(a, b)| a != b).count();
                assert!(changed <= 2, "{changed} coordinates changed in one probe");
            }
            last = Some(x.to_vec());
            (x[0] - 0.2).powi(2) + (x[1] - 0.6).powi(2) + (x[2] + 0.1).powi(2)
        };
        let _ = pattern_search(f, &[0.9, -0.9, 0.5], &[(-1.0, 1.0); 3], 500);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let _ = pattern_search(|_| 0.0, &[0.0], &[(0.0, 1.0), (0.0, 1.0)], 10);
    }
}
