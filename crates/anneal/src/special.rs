//! Special functions needed by the generalized simulated annealing
//! visiting distribution.

/// Natural log of the gamma function via the Lanczos approximation
/// (g = 7, n = 9 coefficients). Accurate to ~1e-13 for positive arguments,
/// which is far more than the visiting distribution needs.
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    // The canonical published Lanczos coefficients, kept digit-for-digit.
    #[allow(clippy::excessive_precision)]
    const COEFFS: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula for small/negative arguments.
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b}");
    }

    #[test]
    fn integer_factorials() {
        // Gamma(n) = (n-1)!
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24.0_f64.ln(), 1e-12);
        close(ln_gamma(11.0), 3628800.0_f64.ln(), 1e-10);
    }

    #[test]
    fn half_integer_values() {
        // Gamma(1/2) = sqrt(pi)
        close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12);
        // Gamma(3/2) = sqrt(pi)/2
        close(ln_gamma(1.5), 0.5 * std::f64::consts::PI.ln() - 2.0_f64.ln(), 1e-12);
    }

    #[test]
    fn recurrence_holds() {
        // Gamma(x+1) = x * Gamma(x)
        for &x in &[0.3, 1.7, 3.2, 9.5] {
            close(ln_gamma(x + 1.0), x.ln() + ln_gamma(x), 1e-11);
        }
    }
}
