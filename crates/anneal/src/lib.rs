//! Dual annealing global optimization.
//!
//! GRAPHINE (and therefore step 1 of Parallax) places qubits on a 2D plane
//! with SciPy's `dual_annealing`. This crate is the Rust substitute: a
//! generalized simulated annealing (GSA) engine ([`gsa`]) with the
//! Tsallis/Stariolo visiting distribution and acceptance rule, periodic
//! bounded local refinement ([`local`]), and reheating restarts — the same
//! structure as the SciPy optimizer, fully seeded and deterministic.
//!
//! Two hot-path properties beyond the SciPy shape:
//!
//! * **Allocation-free inner loops.** The visiting/acceptance loop and
//!   every pattern-search probe reuse scratch buffers; [`AnnealResult::allocs`]
//!   counts the remaining (constant, setup-only) heap traffic so profiling
//!   can attest it stays flat as `evals` grows.
//! * **Deterministic parallel restarts.** [`dual_annealing_multi`] fans `K`
//!   independent seed streams over a scoped worker pool and reduces under a
//!   total order, so results are bit-identical for a given seed at *any*
//!   worker count, and `K = 1` reproduces [`dual_annealing`] exactly.
//!   (Measured on this machine: the end-to-end placement-heavy benches
//!   dropped 2.4–6.5x in the same change set — see `parallax-graphine`'s
//!   crate docs for the table.)
//!
//! # Example
//! ```
//! use parallax_anneal::{dual_annealing, AnnealParams};
//!
//! // Minimize a shifted sphere over [-2, 2]^2.
//! let f = |x: &[f64]| (x[0] - 1.0).powi(2) + (x[1] + 0.5).powi(2);
//! let bounds = vec![(-2.0, 2.0), (-2.0, 2.0)];
//! let result = dual_annealing(f, &bounds, &AnnealParams { seed: 1, ..Default::default() });
//! assert!(result.energy < 1e-4);
//! ```

pub mod gsa;
pub mod local;
pub mod parallel;
pub mod special;

pub use local::{pattern_search, LocalResult};
pub use parallel::{dual_annealing_multi, restart_seed, MultiRestartParams};

use gsa::{acceptance_probability, temperature, VisitingDistribution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning knobs for [`dual_annealing`]. Defaults mirror SciPy's.
#[derive(Debug, Clone)]
pub struct AnnealParams {
    /// Visiting distribution shape, in `(1, 3)`.
    pub qv: f64,
    /// Acceptance distribution shape, `< 1`.
    pub qa: f64,
    /// Initial temperature.
    pub initial_temp: f64,
    /// Reheat when temperature falls below `restart_temp_ratio * initial_temp`.
    pub restart_temp_ratio: f64,
    /// Number of annealing iterations (outer steps).
    pub max_iter: usize,
    /// Objective-evaluation budget for each local refinement (0 disables
    /// local search entirely).
    pub local_search_evals: usize,
    /// RNG seed; equal seeds give bit-identical results.
    pub seed: u64,
}

impl Default for AnnealParams {
    fn default() -> Self {
        Self {
            qv: 2.62,
            qa: -5.0,
            initial_temp: 5230.0,
            restart_temp_ratio: 2e-5,
            max_iter: 1000,
            local_search_evals: 2000,
            seed: 0,
        }
    }
}

/// Result of a [`dual_annealing`] run (or a [`dual_annealing_multi`]
/// reduction over several independent restart streams).
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at the best point.
    pub energy: f64,
    /// Total objective evaluations.
    pub evals: usize,
    /// Outer annealing iterations performed.
    pub iterations: usize,
    /// Number of reheating restarts taken.
    pub restarts: usize,
    /// Heap allocations performed. The visiting/acceptance inner loop and
    /// every local-search probe are allocation-free, so this stays a small
    /// constant plus four per local refinement — independent of `evals`.
    pub allocs: usize,
}

/// Global minimization of `f` over the box `bounds`.
///
/// Runs GSA with per-dimension visiting moves; every time a new global best
/// is found, a bounded pattern search polishes it (the "dual" phase).
pub fn dual_annealing<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    bounds: &[(f64, f64)],
    params: &AnnealParams,
) -> AnnealResult {
    let dim = bounds.len();
    assert!(dim > 0, "dual_annealing requires at least one dimension");
    for &(lo, hi) in bounds {
        assert!(hi > lo, "invalid bounds: ({lo}, {hi})");
    }
    let mut rng = StdRng::seed_from_u64(params.seed);
    let visiting = VisitingDistribution::new(params.qv);

    // Random start.
    let mut current: Vec<f64> =
        bounds.iter().map(|&(lo, hi)| lo + (hi - lo) * rng.random::<f64>()).collect();
    let mut current_e = f(&current);
    let mut evals = 1usize;
    let mut best = current.clone();
    let mut best_e = current_e;
    let mut restarts = 0usize;
    let mut allocs = 3usize; // current, best, candidate

    let restart_threshold = params.initial_temp * params.restart_temp_ratio;
    let mut step_within_cycle = 1usize;
    let mut iterations = 0usize;

    let mut candidate = vec![0.0f64; dim];
    for _ in 0..params.max_iter {
        iterations += 1;
        let t = temperature(params.initial_temp, params.qv, step_within_cycle);
        if t < restart_threshold {
            // Reheat: restart the schedule from the best known point.
            step_within_cycle = 1;
            restarts += 1;
            current.copy_from_slice(&best);
            current_e = best_e;
            continue;
        }
        step_within_cycle += 1;

        // Visit: perturb all dimensions, then (as in SciPy) also try
        // single-dimension moves on alternating steps for fine exploration.
        candidate.copy_from_slice(&current);
        if step_within_cycle.is_multiple_of(2) {
            for (d, c) in candidate.iter_mut().enumerate() {
                let delta = visiting.sample(&mut rng, t);
                *c = wrap_into_bounds(*c + delta, bounds[d]);
            }
        } else {
            let d = rng.random_range(0..dim);
            let delta = visiting.sample(&mut rng, t);
            candidate[d] = wrap_into_bounds(candidate[d] + delta, bounds[d]);
        }

        let cand_e = f(&candidate);
        evals += 1;
        let accept = if cand_e <= current_e {
            true
        } else {
            // Acceptance temperature decays with the step index, as in GSA.
            let t_accept = t / step_within_cycle as f64;
            let p = acceptance_probability(params.qa, cand_e - current_e, t_accept);
            rng.random::<f64>() <= p
        };
        if accept {
            current.copy_from_slice(&candidate);
            current_e = cand_e;
            if cand_e < best_e {
                best.copy_from_slice(&candidate);
                best_e = cand_e;
                if params.local_search_evals > 0 {
                    let refined = pattern_search(&mut f, &best, bounds, params.local_search_evals);
                    evals += refined.evals;
                    allocs += refined.allocs;
                    if refined.energy < best_e {
                        best.copy_from_slice(&refined.x);
                        best_e = refined.energy;
                        current.copy_from_slice(&refined.x);
                        current_e = refined.energy;
                    }
                }
            }
        }
    }

    // Final polish from the overall best.
    if params.local_search_evals > 0 {
        let refined = pattern_search(&mut f, &best, bounds, params.local_search_evals);
        evals += refined.evals;
        allocs += refined.allocs;
        if refined.energy < best_e {
            best = refined.x;
            best_e = refined.energy;
        }
    }

    AnnealResult { x: best, energy: best_e, evals, iterations, restarts, allocs }
}

/// Reflect/wrap a value into `(lo, hi)` the way SciPy folds visiting moves
/// back into the search box (modulo the box size, offset from the lower
/// bound).
fn wrap_into_bounds(v: f64, (lo, hi): (f64, f64)) -> f64 {
    let range = hi - lo;
    let wrapped = (v - lo).rem_euclid(range) + lo;
    wrapped.clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }

    /// Multimodal test function with the global minimum 0 at the origin.
    fn rastrigin(x: &[f64]) -> f64 {
        let a = 10.0;
        a * x.len() as f64
            + x.iter().map(|v| v * v - a * (2.0 * std::f64::consts::PI * v).cos()).sum::<f64>()
    }

    #[test]
    fn minimizes_sphere() {
        let bounds = vec![(-5.0, 5.0); 3];
        let r = dual_annealing(sphere, &bounds, &AnnealParams::default());
        assert!(r.energy < 1e-6, "energy {}", r.energy);
    }

    #[test]
    fn minimizes_rastrigin_2d() {
        let bounds = vec![(-5.12, 5.12); 2];
        let params = AnnealParams { max_iter: 2000, seed: 3, ..Default::default() };
        let r = dual_annealing(rastrigin, &bounds, &params);
        // Global optimum is 0; local minima sit at ~1, ~2, ... — require
        // we found the global basin.
        assert!(r.energy < 0.5, "energy {}", r.energy);
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let bounds = vec![(-1.0, 1.0); 4];
        let p = AnnealParams { max_iter: 200, seed: 99, ..Default::default() };
        let a = dual_annealing(sphere, &bounds, &p);
        let b = dual_annealing(sphere, &bounds, &p);
        assert_eq!(a.x, b.x);
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.evals, b.evals);
    }

    #[test]
    fn different_seeds_generally_differ() {
        let bounds = vec![(-1.0, 1.0); 2];
        let a = dual_annealing(
            rastrigin,
            &bounds,
            &AnnealParams { max_iter: 50, local_search_evals: 0, seed: 1, ..Default::default() },
        );
        let b = dual_annealing(
            rastrigin,
            &bounds,
            &AnnealParams { max_iter: 50, local_search_evals: 0, seed: 2, ..Default::default() },
        );
        assert_ne!(a.x, b.x);
    }

    #[test]
    fn result_stays_in_bounds() {
        let bounds = vec![(0.25, 0.75); 5];
        let r = dual_annealing(sphere, &bounds, &AnnealParams::default());
        for (v, (lo, hi)) in r.x.iter().zip(&bounds) {
            assert!(v >= lo && v <= hi);
        }
        // Sphere min within this box is at the lower corner.
        assert!((r.energy - 5.0 * 0.25 * 0.25).abs() < 1e-6);
    }

    #[test]
    fn disabled_local_search_still_optimizes() {
        let bounds = vec![(-2.0, 2.0); 2];
        let p = AnnealParams { local_search_evals: 0, max_iter: 3000, ..Default::default() };
        let r = dual_annealing(sphere, &bounds, &p);
        assert!(r.energy < 0.05, "energy {}", r.energy);
    }

    #[test]
    fn wrap_into_bounds_behaviour() {
        assert!((wrap_into_bounds(1.5, (0.0, 1.0)) - 0.5).abs() < 1e-12);
        assert!((wrap_into_bounds(-0.25, (0.0, 1.0)) - 0.75).abs() < 1e-12);
        let inside = wrap_into_bounds(0.3, (0.0, 1.0));
        assert!((inside - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid bounds")]
    fn rejects_inverted_bounds() {
        let _ = dual_annealing(sphere, &[(1.0, -1.0)], &AnnealParams::default());
    }

    #[test]
    fn reports_restarts_on_long_runs() {
        let bounds = vec![(-1.0, 1.0); 2];
        let p = AnnealParams {
            max_iter: 5000,
            local_search_evals: 0,
            restart_temp_ratio: 0.5, // force frequent reheats
            ..Default::default()
        };
        let r = dual_annealing(sphere, &bounds, &p);
        assert!(r.restarts > 0);
    }
}
