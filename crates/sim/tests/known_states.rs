//! Simulator tier tests: the statevector engine against analytically known
//! states, and optimizer unitary-equivalence on small circuits.

use parallax_circuit::{optimize, Circuit, CircuitBuilder, Gate};
use parallax_sim::{simulate, StateVector, EQUIV_TOL, MAX_SIM_QUBITS};

const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

fn assert_amp(sv: &StateVector, index: usize, re: f64, im: f64) {
    let a = sv.amplitudes()[index];
    assert!(
        (a.re - re).abs() < 1e-12 && (a.im - im).abs() < 1e-12,
        "amp[{index}] = {a:?}, expected {re}+{im}i"
    );
}

#[test]
fn hadamard_gives_plus_state() {
    let mut b = CircuitBuilder::new(1);
    b.h(0);
    let sv = simulate(&b.build());
    assert_amp(&sv, 0, FRAC_1_SQRT_2, 0.0);
    assert_amp(&sv, 1, FRAC_1_SQRT_2, 0.0);
}

#[test]
fn u3_pi_is_an_x_flip() {
    let mut c = Circuit::new(1);
    c.push(Gate::x(0));
    let sv = simulate(&c);
    assert!(sv.probability(0) < 1e-12);
    assert!((sv.probability(1) - 1.0).abs() < 1e-12);
}

#[test]
fn bell_pair_amplitudes_and_probabilities() {
    let mut b = CircuitBuilder::new(2);
    b.h(0).cx(0, 1);
    let sv = simulate(&b.build());
    let probs = sv.probabilities();
    assert!((probs[0b00] - 0.5).abs() < 1e-12);
    assert!(probs[0b01] < 1e-12);
    assert!(probs[0b10] < 1e-12);
    assert!((probs[0b11] - 0.5).abs() < 1e-12);
    // |Phi+> has equal-phase amplitudes (up to the global phase the CX
    // decomposition leaves): check relative phase is 0.
    let a00 = sv.amplitudes()[0b00];
    let a11 = sv.amplitudes()[0b11];
    assert!((a00.conj() * a11).im.abs() < 1e-12, "relative phase not real");
    assert!((a00.conj() * a11).re > 0.0, "relative phase flipped");
}

#[test]
fn ghz_three_qubits() {
    let mut b = CircuitBuilder::new(3);
    b.h(0).cx(0, 1).cx(1, 2);
    let sv = simulate(&b.build());
    assert!((sv.probability(0b000) - 0.5).abs() < 1e-12);
    assert!((sv.probability(0b111) - 0.5).abs() < 1e-12);
    for i in 1..7 {
        assert!(sv.probability(i) < 1e-12, "stray amplitude at {i:#05b}");
    }
}

#[test]
fn cz_flips_only_the_11_amplitude() {
    let mut b = CircuitBuilder::new(2);
    b.h(0).h(1).cz(0, 1);
    let sv = simulate(&b.build());
    assert_amp(&sv, 0b00, 0.5, 0.0);
    assert_amp(&sv, 0b01, 0.5, 0.0);
    assert_amp(&sv, 0b10, 0.5, 0.0);
    assert_amp(&sv, 0b11, -0.5, 0.0);
}

#[test]
fn fidelity_ignores_global_phase() {
    let mut plain = Circuit::new(1);
    plain.push(Gate::h(0));
    // rz contributes a global phase on top of the same physical state.
    let mut phased = Circuit::new(1);
    phased.push(Gate::h(0));
    phased.push(Gate::u3(0, 0.0, 0.7, -0.7));
    let (a, b) = (simulate(&plain), simulate(&phased));
    assert!((a.fidelity(&b) - 1.0).abs() < EQUIV_TOL);
}

#[test]
fn permute_relabels_basis_states() {
    // Prepare |q1 q0> = |01> (qubit 0 set), then swap labels -> |10>.
    let mut c = Circuit::new(2);
    c.push(Gate::x(0));
    let sv = simulate(&c);
    assert!((sv.probability(0b01) - 1.0).abs() < 1e-12);
    let swapped = sv.permute(&[1, 0]);
    assert!((swapped.probability(0b10) - 1.0).abs() < 1e-12);
    assert!((swapped.norm() - 1.0).abs() < 1e-12);
}

#[test]
fn zero_state_cap_and_basics() {
    let sv = StateVector::zero(3);
    assert_eq!(sv.num_qubits(), 3);
    assert_eq!(sv.amplitudes().len(), 8);
    assert!((sv.probability(0) - 1.0).abs() < 1e-15);
    const { assert!(MAX_SIM_QUBITS >= 20, "verification-sized benchmarks must fit") };
}

#[test]
fn optimize_preserves_unitary_on_small_circuits() {
    // The optimizer equivalence guarantee, checked against the simulator on
    // ≤6-qubit circuits with non-trivial U3/CZ structure.
    for (n, seed) in [(2usize, 0u64), (4, 1), (5, 2), (6, 3)] {
        let mut b = CircuitBuilder::new(n);
        let mut state = seed.wrapping_add(12345);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for q in 0..n as u32 {
            b.h(q);
        }
        for _ in 0..8 * n {
            let a = next() % n as u32;
            match next() % 4 {
                0 => {
                    b.rz((next() % 628) as f64 / 100.0, a);
                }
                1 => {
                    b.u3(
                        (next() % 314) as f64 / 100.0,
                        (next() % 628) as f64 / 100.0,
                        (next() % 628) as f64 / 100.0,
                        a,
                    );
                }
                _ => {
                    let c = (a + 1 + next() % (n as u32 - 1)) % n as u32;
                    b.cz(a.min(c), a.max(c));
                }
            }
        }
        let circuit = b.build();
        let optimized = optimize(&circuit);
        let f = simulate(&circuit).fidelity(&simulate(&optimized));
        assert!(
            (f - 1.0).abs() < EQUIV_TOL,
            "n={n} seed={seed}: optimizer changed semantics, fidelity {f}"
        );
        assert!(optimized.cz_count() <= circuit.cz_count());
    }
}
