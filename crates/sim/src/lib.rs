//! Execution simulator and metric models for the Parallax evaluation.
//!
//! Implements the paper's Section III simulator functions:
//!
//! * [`runtime`] — circuit runtime (Table IV) and total execution time for
//!   parallelized shots (Fig. 11) from layer structure, movement distances,
//!   and trap changes;
//! * [`fidelity`] — analytic probability of success (Fig. 10): gate-error
//!   product times T1/T2 decoherence decay;
//! * [`monte_carlo`] — sampled noisy shots including atom loss and readout;
//! * [`statevector`] / [`equivalence`] — a dense simulator used to verify
//!   that every compiler's output implements the input circuit's unitary
//!   (up to the SWAP-routing permutation for baselines).

pub mod equivalence;
pub mod fidelity;
pub mod monte_carlo;
pub mod runtime;
pub mod statevector;

pub use equivalence::{
    assert_equivalent, baseline_routed_fidelity, parallax_schedule_fidelity, EQUIV_TOL,
};
pub use fidelity::{
    decoherence_factor, gate_success, success_probability, success_probability_with_readout,
    FidelityInputs,
};
pub use monte_carlo::{run_monte_carlo, MonteCarloResult};
pub use runtime::{baseline_runtime_us, parallax_runtime_us, ShotModel};
pub use statevector::{simulate, StateVector, MAX_SIM_QUBITS};

use parallax_baselines::BaselineResult;
use parallax_core::CompilationResult;

/// Build [`FidelityInputs`] for a Parallax compilation.
pub fn parallax_fidelity_inputs(result: &CompilationResult) -> FidelityInputs {
    FidelityInputs {
        cz_count: result.cz_count(),
        u3_count: result.u3_count(),
        num_qubits: result.num_qubits,
        runtime_us: parallax_runtime_us(result),
    }
}

/// Build [`FidelityInputs`] for a baseline compilation.
pub fn baseline_fidelity_inputs(
    result: &BaselineResult,
    params: &parallax_hardware::HardwareParams,
) -> FidelityInputs {
    FidelityInputs {
        cz_count: result.cz_count(),
        u3_count: result.u3_count(),
        num_qubits: result.routed.num_qubits(),
        runtime_us: baseline_runtime_us(result, params),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_baselines::{compile_eldi, EldiConfig};
    use parallax_circuit::CircuitBuilder;
    use parallax_core::{CompilerConfig, ParallaxCompiler};
    use parallax_hardware::{HardwareParams, MachineSpec};

    #[test]
    fn end_to_end_metrics_pipeline() {
        let mut b = CircuitBuilder::new(5);
        b.h(0);
        for i in 0..4u32 {
            b.cx(i, i + 1);
        }
        let c = b.build();
        let machine = MachineSpec::quera_aquila_256();

        let px = ParallaxCompiler::new(machine, CompilerConfig::quick(1)).compile(&c);
        let el = compile_eldi(&c, &machine, &EldiConfig::default());

        let pi = parallax_fidelity_inputs(&px);
        let ei = baseline_fidelity_inputs(&el, &HardwareParams::table2());

        // Parallax never has more CZs than a SWAP-routing baseline, so its
        // gate-error product is never worse.
        assert!(pi.cz_count <= ei.cz_count);
        assert!(gate_success(&pi, &machine.params) >= gate_success(&ei, &machine.params) - 1e-12);
        // Decoherence can differ slightly (trap changes cost runtime — the
        // paper sees the same on TFIM), but not by much at µs scales.
        let ps = success_probability(&pi, &machine.params);
        let es = success_probability(&ei, &machine.params);
        assert!(ps >= es * 0.99, "ps {ps} vs es {es}");
        assert!(ps > 0.0 && ps <= 1.0);
    }
}
