//! Probability-of-success estimation (evaluation metric 2, Fig. 10).
//!
//! Following the paper (and VERITAS-style estimation it cites), the success
//! probability is the product of every circuit component's success rate,
//! times per-qubit decoherence decay over the circuit runtime:
//!
//! `P = (1-e_cz)^#CZ * (1-e_u3)^#U3 * prod_q exp(-t/T1) * exp(-t/T2)`
//!
//! Calibration check against Fig. 10: ADV under Parallax runs 32 CZ gates;
//! `0.9952^32 ≈ 0.857` matches the paper's `8.5e-01`. Readout error (5%
//! per qubit) is identical across compilers, so like the paper's relative
//! plots it is reported separately rather than folded in.

use parallax_hardware::HardwareParams;

/// Gate/runtime summary used for fidelity estimation.
#[derive(Debug, Clone, Copy)]
pub struct FidelityInputs {
    /// Executed CZ gates (including those from SWAPs for baselines).
    pub cz_count: usize,
    /// Executed U3 gates.
    pub u3_count: usize,
    /// Circuit qubits.
    pub num_qubits: usize,
    /// Single-shot runtime, µs.
    pub runtime_us: f64,
}

/// Estimated probability of success.
pub fn success_probability(inputs: &FidelityInputs, params: &HardwareParams) -> f64 {
    gate_success(inputs, params) * decoherence_factor(inputs, params)
}

/// Gate-error-only component.
pub fn gate_success(inputs: &FidelityInputs, params: &HardwareParams) -> f64 {
    (1.0 - params.cz_gate_error).powi(inputs.cz_count as i32)
        * (1.0 - params.u3_gate_error).powi(inputs.u3_count as i32)
}

/// Decoherence component: each qubit decays over the full runtime with both
/// T1 (relaxation, which also absorbs trap-escape atom loss per Section
/// III) and T2 (dephasing).
pub fn decoherence_factor(inputs: &FidelityInputs, params: &HardwareParams) -> f64 {
    let t_s = inputs.runtime_us * 1e-6;
    let per_qubit = (-t_s / params.t1_seconds).exp() * (-t_s / params.t2_seconds).exp();
    per_qubit.powi(inputs.num_qubits as i32)
}

/// Success probability including measurement readout (5% per qubit). The
/// readout term is compiler-independent; Fig. 10's relative comparison
/// cancels it.
pub fn success_probability_with_readout(inputs: &FidelityInputs, params: &HardwareParams) -> f64 {
    success_probability(inputs, params)
        * (1.0 - params.readout_error).powi(inputs.num_qubits as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> HardwareParams {
        HardwareParams::table2()
    }

    #[test]
    fn matches_paper_adv_calibration() {
        // ADV / Parallax: 32 CZ, paper reports 8.5e-01.
        let inputs = FidelityInputs { cz_count: 32, u3_count: 0, num_qubits: 9, runtime_us: 67.0 };
        let p = success_probability(&inputs, &params());
        assert!((p - 0.85).abs() < 0.02, "p = {p}");
    }

    #[test]
    fn matches_paper_gcm_calibration() {
        // GCM / Parallax: 528 CZ, paper reports 7.1e-02.
        let inputs =
            FidelityInputs { cz_count: 528, u3_count: 0, num_qubits: 13, runtime_us: 1530.0 };
        let p = success_probability(&inputs, &params());
        assert!(p > 0.05 && p < 0.11, "p = {p}");
    }

    #[test]
    fn fewer_cz_means_higher_success() {
        let a = FidelityInputs { cz_count: 100, u3_count: 50, num_qubits: 10, runtime_us: 100.0 };
        let b = FidelityInputs { cz_count: 130, ..a };
        assert!(success_probability(&a, &params()) > success_probability(&b, &params()));
    }

    #[test]
    fn u3_errors_are_minor_but_present() {
        let none = FidelityInputs { cz_count: 0, u3_count: 0, num_qubits: 2, runtime_us: 0.0 };
        let many = FidelityInputs { u3_count: 1000, ..none };
        let (pn, pm) =
            (success_probability(&none, &params()), success_probability(&many, &params()));
        assert!(pm < pn);
        assert!(pm > 0.8); // 0.999873^1000 ~ 0.88
    }

    #[test]
    fn decoherence_negligible_at_microseconds_scale() {
        let i = FidelityInputs { cz_count: 0, u3_count: 0, num_qubits: 10, runtime_us: 1000.0 };
        let d = decoherence_factor(&i, &params());
        assert!(d > 0.98, "d = {d}"); // paper: long coherence makes runtime differences benign
        assert!(d < 1.0);
    }

    #[test]
    fn decoherence_matters_at_milliseconds_scale() {
        let i = FidelityInputs { cz_count: 0, u3_count: 0, num_qubits: 100, runtime_us: 1e5 };
        let d = decoherence_factor(&i, &params());
        assert!(d < 0.5, "d = {d}");
    }

    #[test]
    fn readout_multiplies_per_qubit() {
        let i = FidelityInputs { cz_count: 0, u3_count: 0, num_qubits: 9, runtime_us: 0.0 };
        let with = success_probability_with_readout(&i, &params());
        assert!((with - 0.95f64.powi(9)).abs() < 1e-12);
    }

    #[test]
    fn empty_circuit_success_is_one() {
        let i = FidelityInputs { cz_count: 0, u3_count: 0, num_qubits: 1, runtime_us: 0.0 };
        assert_eq!(success_probability(&i, &params()), 1.0);
    }
}
