//! Circuit runtime estimation (evaluation metric 3, Table IV).
//!
//! Runtime of one logical shot = sum over executed layers of: the slowest
//! gate type in the layer (U3 and CZ pulses run concurrently on disjoint
//! atoms), plus AOD travel time at 55 µm/µs for the layer's move and
//! home-return batches, plus 100 µs per trap change. Baselines have no
//! movement but pay gate time for every SWAP-inserted CZ layer.

use parallax_baselines::BaselineResult;
use parallax_circuit::Gate;
use parallax_core::CompilationResult;
use parallax_hardware::HardwareParams;

/// Runtime of a Parallax compilation, µs.
pub fn parallax_runtime_us(result: &CompilationResult) -> f64 {
    let p = &result.machine.params;
    let speed = p.aod_move_speed_um_per_us;
    let mut total = 0.0;
    for layer in &result.schedule.layers {
        total += layer_gate_time_us(layer.has_u3, layer.has_cz, p);
        total += (layer.move_distance_um + layer.return_distance_um) / speed;
        total += layer.trap_changes as f64 * p.trap_switch_time_us;
    }
    total
}

/// Runtime of a baseline compilation, µs.
pub fn baseline_runtime_us(result: &BaselineResult, params: &HardwareParams) -> f64 {
    let gates = result.routed.gates();
    let mut total = 0.0;
    for layer in &result.layers {
        let has_u3 = layer.iter().any(|&g| matches!(gates[g], Gate::U3 { .. }));
        let has_cz = layer.iter().any(|&g| matches!(gates[g], Gate::Cz { .. }));
        total += layer_gate_time_us(has_u3, has_cz, params);
    }
    total
}

fn layer_gate_time_us(has_u3: bool, has_cz: bool, p: &HardwareParams) -> f64 {
    let u3 = if has_u3 { p.u3_gate_time_us } else { 0.0 };
    let cz = if has_cz { p.cz_gate_time_us } else { 0.0 };
    u3.max(cz)
}

/// Total execution time for `logical_shots` logical shots when
/// `parallel_factor` copies run per physical shot (Fig. 11's metric), µs.
///
/// Each physical shot costs the circuit runtime plus a fixed
/// readout/rearm overhead (fluorescence imaging + atom replenishment
/// between physical shots; Section III notes atoms are replenished between
/// physical shots).
#[derive(Debug, Clone, Copy)]
pub struct ShotModel {
    /// Logical shots needed to build the output distribution (paper: 8,000).
    pub logical_shots: usize,
    /// Per-physical-shot overhead, µs (readout + array reload).
    pub shot_overhead_us: f64,
}

impl Default for ShotModel {
    fn default() -> Self {
        Self { logical_shots: 8000, shot_overhead_us: 100.0 }
    }
}

impl ShotModel {
    /// Total execution time, µs.
    pub fn total_execution_time_us(&self, circuit_runtime_us: f64, parallel_factor: usize) -> f64 {
        let factor = parallel_factor.max(1);
        let physical_shots = self.logical_shots.div_ceil(factor);
        physical_shots as f64 * (circuit_runtime_us + self.shot_overhead_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_baselines::{compile_eldi, EldiConfig};
    use parallax_circuit::CircuitBuilder;
    use parallax_core::{CompilerConfig, ParallaxCompiler};
    use parallax_hardware::MachineSpec;

    fn ghz(n: usize) -> parallax_circuit::Circuit {
        let mut b = CircuitBuilder::new(n);
        b.h(0);
        for i in 0..(n as u32 - 1) {
            b.cx(i, i + 1);
        }
        b.build()
    }

    #[test]
    fn parallax_runtime_positive_and_layer_bounded() {
        let c = ghz(5);
        let r = ParallaxCompiler::new(MachineSpec::quera_aquila_256(), CompilerConfig::quick(1))
            .compile(&c);
        let t = parallax_runtime_us(&r);
        assert!(t > 0.0);
        // Lower bound: every layer takes at least the faster gate's time.
        assert!(t >= 0.8 * r.schedule.layers.len() as f64);
        // Upper bound sanity: gates + generous movement + trap changes.
        let p = &r.machine.params;
        let upper = r.schedule.layers.len() as f64 * (p.u3_gate_time_us + 10.0)
            + r.schedule.stats.trap_changes as f64 * p.trap_switch_time_us
            + 1000.0;
        assert!(t <= upper, "t = {t}, upper = {upper}");
    }

    #[test]
    fn trap_changes_dominate_when_present() {
        let c = ghz(4);
        let r = ParallaxCompiler::new(MachineSpec::quera_aquila_256(), CompilerConfig::quick(2))
            .compile(&c);
        let t = parallax_runtime_us(&r);
        if r.schedule.stats.trap_changes > 0 {
            assert!(t >= 100.0);
        }
    }

    #[test]
    fn baseline_runtime_counts_layers() {
        let c = ghz(5);
        let r = compile_eldi(&c, &MachineSpec::quera_aquila_256(), &EldiConfig::default());
        let t = baseline_runtime_us(&r, &HardwareParams::table2());
        assert!(t > 0.0);
        assert!(t >= 0.8 * r.layers.len() as f64);
        assert!(t <= 2.0 * r.layers.len() as f64);
    }

    #[test]
    fn shot_model_scales_inversely_with_factor() {
        let m = ShotModel::default();
        let t1 = m.total_execution_time_us(100.0, 1);
        let t4 = m.total_execution_time_us(100.0, 4);
        let t16 = m.total_execution_time_us(100.0, 16);
        assert!((t1 / t4 - 4.0).abs() < 0.01);
        assert!((t1 / t16 - 16.0).abs() < 0.01);
        assert_eq!(t1, 8000.0 * 200.0);
    }

    #[test]
    fn shot_model_rounds_physical_shots_up() {
        let m = ShotModel { logical_shots: 10, shot_overhead_us: 0.0 };
        // factor 3 -> 4 physical shots.
        assert_eq!(m.total_execution_time_us(1.0, 3), 4.0);
        // factor 0 treated as 1.
        assert_eq!(m.total_execution_time_us(1.0, 0), 10.0);
    }
}
