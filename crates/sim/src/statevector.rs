//! Dense statevector simulator over the {U3, CZ} basis.
//!
//! Used to *verify* the compilers rather than to evaluate them: a compiled
//! schedule must implement exactly the same unitary as the input circuit
//! (up to the qubit permutation SWAP routing induces). Handles up to ~20
//! qubits comfortably, which covers the verification-sized benchmarks.

use parallax_circuit::{Circuit, Gate, Mat2, C64};

/// Hard cap to keep accidental huge simulations from exhausting memory.
pub const MAX_SIM_QUBITS: usize = 24;

/// A dense `2^n` statevector. Qubit `q`'s bit is bit `q` of the basis-state
/// index (little-endian).
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// The all-zeros computational basis state on `n` qubits.
    pub fn zero(n: usize) -> Self {
        assert!(n <= MAX_SIM_QUBITS, "{n} qubits exceeds the {MAX_SIM_QUBITS}-qubit simulator cap");
        let mut amps = vec![C64::ZERO; 1usize << n];
        amps[0] = C64::ONE;
        Self { n, amps }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Amplitudes (little-endian basis ordering).
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Apply a single gate in place.
    pub fn apply(&mut self, gate: &Gate) {
        match *gate {
            Gate::U3 { q, theta, phi, lam } => {
                self.apply_1q(q as usize, &Mat2::u3(theta, phi, lam))
            }
            Gate::Cz { a, b } => self.apply_cz(a as usize, b as usize),
        }
    }

    /// Apply every gate of `circuit` in program order.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert_eq!(circuit.num_qubits(), self.n);
        for g in circuit.gates() {
            self.apply(g);
        }
    }

    fn apply_1q(&mut self, q: usize, m: &Mat2) {
        let stride = 1usize << q;
        let (m00, m01, m10, m11) = (m.m[0], m.m[1], m.m[2], m.m[3]);
        let mut base = 0usize;
        while base < self.amps.len() {
            for i in base..base + stride {
                let a0 = self.amps[i];
                let a1 = self.amps[i + stride];
                self.amps[i] = m00 * a0 + m01 * a1;
                self.amps[i + stride] = m10 * a0 + m11 * a1;
            }
            base += stride << 1;
        }
    }

    fn apply_cz(&mut self, a: usize, b: usize) {
        let mask = (1usize << a) | (1usize << b);
        for (i, amp) in self.amps.iter_mut().enumerate() {
            if i & mask == mask {
                *amp = -*amp;
            }
        }
    }

    /// Probability of measuring basis state `index`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sq()
    }

    /// Full output probability distribution.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sq()).collect()
    }

    /// `|<self|other>|^2` — 1.0 iff equal up to global phase.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.n, other.n);
        let mut acc = C64::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            acc = acc + a.conj() * *b;
        }
        acc.norm_sq()
    }

    /// Relabel qubits: output qubit `mapping[q]` carries input qubit `q`'s
    /// state (the permutation SWAP routing leaves behind).
    pub fn permute(&self, mapping: &[u32]) -> StateVector {
        assert_eq!(mapping.len(), self.n);
        let mut out = vec![C64::ZERO; self.amps.len()];
        for (i, &amp) in self.amps.iter().enumerate() {
            let mut j = 0usize;
            for (q, &m) in mapping.iter().enumerate() {
                if (i >> q) & 1 == 1 {
                    j |= 1 << m;
                }
            }
            out[j] = amp;
        }
        StateVector { n: self.n, amps: out }
    }

    /// L2 norm (should stay 1 under unitary evolution).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sq()).sum::<f64>().sqrt()
    }
}

/// Simulate `circuit` from |0...0> and return the final state.
pub fn simulate(circuit: &Circuit) -> StateVector {
    let mut sv = StateVector::zero(circuit.num_qubits());
    sv.apply_circuit(circuit);
    sv
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_circuit::CircuitBuilder;
    use std::f64::consts::FRAC_1_SQRT_2;

    #[test]
    fn hadamard_gives_uniform_superposition() {
        let mut b = CircuitBuilder::new(1);
        b.h(0);
        let sv = simulate(&b.build());
        assert!((sv.probability(0) - 0.5).abs() < 1e-12);
        assert!((sv.probability(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bell_state() {
        let mut b = CircuitBuilder::new(2);
        b.h(0).cx(0, 1);
        let sv = simulate(&b.build());
        assert!((sv.probability(0b00) - 0.5).abs() < 1e-12);
        assert!((sv.probability(0b11) - 0.5).abs() < 1e-12);
        assert!(sv.probability(0b01) < 1e-12);
        assert!(sv.probability(0b10) < 1e-12);
        assert!((sv.amplitudes()[0].re - FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn cz_phase_flip() {
        let mut b = CircuitBuilder::new(2);
        b.x(0).x(1).cz(0, 1);
        let sv = simulate(&b.build());
        assert!((sv.amplitudes()[0b11].re + 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_flips_correct_qubit() {
        let mut b = CircuitBuilder::new(3);
        b.x(1);
        let sv = simulate(&b.build());
        assert!((sv.probability(0b010) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ghz_state() {
        let mut b = CircuitBuilder::new(3);
        b.h(0).cx(0, 1).cx(1, 2);
        let sv = simulate(&b.build());
        assert!((sv.probability(0b000) - 0.5).abs() < 1e-12);
        assert!((sv.probability(0b111) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn toffoli_truth_table() {
        // |110> -> |111> ; |100> stays.
        let mut b = CircuitBuilder::new(3);
        b.x(0).x(1).ccx(0, 1, 2);
        let sv = simulate(&b.build());
        assert!((sv.probability(0b111) - 1.0).abs() < 1e-9, "{:?}", sv.probabilities());

        let mut b2 = CircuitBuilder::new(3);
        b2.x(0).ccx(0, 1, 2);
        let sv2 = simulate(&b2.build());
        assert!((sv2.probability(0b001) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn swap_gate_exchanges_states() {
        let mut b = CircuitBuilder::new(2);
        b.x(0).swap(0, 1);
        let sv = simulate(&b.build());
        assert!((sv.probability(0b10) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn norm_preserved() {
        let mut b = CircuitBuilder::new(4);
        b.h(0).cx(0, 1).ry(0.7, 2).ccx(0, 2, 3).rz(1.1, 1).cz(1, 3);
        let sv = simulate(&b.build());
        assert!((sv.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn fidelity_detects_equality_up_to_phase() {
        let mut b1 = CircuitBuilder::new(2);
        b1.h(0).cx(0, 1);
        let s1 = simulate(&b1.build());
        // Same circuit with an extra global phase via rz+x tricks: use
        // u3-based z on an already-|+> qubit... simplest: rz(anything) on
        // qubit in |0> adds no relative phase.
        let mut b2 = CircuitBuilder::new(2);
        b2.rz(0.7, 1).h(0).cx(0, 1);
        let s2 = simulate(&b2.build());
        assert!((s1.fidelity(&s2) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn permute_relabels_qubits() {
        let mut b = CircuitBuilder::new(2);
        b.x(0);
        let sv = simulate(&b.build());
        let permuted = sv.permute(&[1, 0]);
        assert!((permuted.probability(0b10) - 1.0).abs() < 1e-12);
        // Identity permutation is a no-op.
        let same = sv.permute(&[0, 1]);
        assert!((sv.fidelity(&same) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cap")]
    fn too_many_qubits_panics() {
        let _ = StateVector::zero(30);
    }
}
