//! Semantic equivalence checking of compiled outputs.
//!
//! * A Parallax schedule reorders the input circuit's own gates under
//!   dependency constraints, so replaying the schedule's gate order must
//!   produce the identical state.
//! * A baseline's routed circuit is equivalent up to the final
//!   logical-to-physical permutation left by SWAP routing.
//!
//! To catch relabeling bugs that the all-zeros input would mask, the
//! checks prepend a deterministic layer of pseudo-random U3 rotations.

use crate::statevector::{simulate, MAX_SIM_QUBITS};
use parallax_baselines::BaselineResult;
use parallax_circuit::{Circuit, Gate};
use parallax_core::CompilationResult;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fidelity threshold treated as "equal".
pub const EQUIV_TOL: f64 = 1e-9;

/// Prepend a deterministic random product-state preparation to `circuit`.
fn with_random_prefix(circuit: &Circuit, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Circuit::new(circuit.num_qubits());
    for q in 0..circuit.num_qubits() as u32 {
        let theta = rng.random::<f64>() * std::f64::consts::PI;
        let phi = rng.random::<f64>() * 2.0 * std::f64::consts::PI;
        let lam = rng.random::<f64>() * 2.0 * std::f64::consts::PI;
        out.push(Gate::u3(q, theta, phi, lam));
    }
    out.extend_from(circuit);
    out
}

/// Prefix-state for the baseline side: the same random rotations but
/// applied to the *initial* physical location of each logical qubit
/// (identity mapping at circuit start).
fn prefix_only(n: usize, seed: u64) -> Vec<Gate> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n as u32)
        .map(|q| {
            let theta = rng.random::<f64>() * std::f64::consts::PI;
            let phi = rng.random::<f64>() * 2.0 * std::f64::consts::PI;
            let lam = rng.random::<f64>() * 2.0 * std::f64::consts::PI;
            Gate::u3(q, theta, phi, lam)
        })
        .collect()
}

/// Verify a Parallax schedule implements the input circuit exactly.
///
/// Returns the fidelity between the reference state and the state obtained
/// by executing the schedule's gate order (1.0 = equivalent).
pub fn parallax_schedule_fidelity(circuit: &Circuit, result: &CompilationResult, seed: u64) -> f64 {
    assert!(circuit.num_qubits() <= MAX_SIM_QUBITS);
    let prefixed = with_random_prefix(circuit, seed);
    let reference = simulate(&prefixed);

    let mut scheduled = Circuit::new(circuit.num_qubits());
    for g in prefix_only(circuit.num_qubits(), seed) {
        scheduled.push(g);
    }
    for idx in result.schedule.gate_order() {
        scheduled.push(circuit.gates()[idx]);
    }
    let state = simulate(&scheduled);
    reference.fidelity(&state)
}

/// Verify a baseline's routed circuit implements the input up to its final
/// qubit permutation. Returns the fidelity (1.0 = equivalent).
pub fn baseline_routed_fidelity(circuit: &Circuit, result: &BaselineResult, seed: u64) -> f64 {
    assert!(circuit.num_qubits() <= MAX_SIM_QUBITS);
    let prefixed = with_random_prefix(circuit, seed);
    let reference = simulate(&prefixed);

    let mut routed_with_prefix = Circuit::new(circuit.num_qubits());
    for g in prefix_only(circuit.num_qubits(), seed) {
        routed_with_prefix.push(g);
    }
    routed_with_prefix.extend_from(&result.routed);
    let routed_state = simulate(&routed_with_prefix);

    // Undo the routing permutation: logical q ended at physical
    // final_mapping[q], so permuting the *reference* by the mapping should
    // match the routed state.
    let permuted_reference = reference.permute(&result.final_mapping);
    permuted_reference.fidelity(&routed_state)
}

/// Convenience assertion used by tests and examples.
pub fn assert_equivalent(fidelity: f64, what: &str) {
    assert!(
        (fidelity - 1.0).abs() < EQUIV_TOL,
        "{what} is not equivalent to the input circuit: fidelity {fidelity}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_baselines::{compile_eldi, compile_graphine, EldiConfig};
    use parallax_circuit::CircuitBuilder;
    use parallax_core::{CompilerConfig, ParallaxCompiler};
    use parallax_graphine::PlacementConfig;
    use parallax_hardware::MachineSpec;

    fn test_circuit(n: usize, seed: u64) -> Circuit {
        // Structured + random mix touching all qubits.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = CircuitBuilder::new(n);
        for q in 0..n as u32 {
            b.h(q);
        }
        for _ in 0..3 * n {
            let a = rng.random_range(0..n as u32);
            let mut c = rng.random_range(0..n as u32);
            while c == a {
                c = rng.random_range(0..n as u32);
            }
            match rng.random_range(0..3) {
                0 => {
                    b.cx(a, c);
                }
                1 => {
                    b.rz(rng.random::<f64>(), a);
                }
                _ => {
                    b.cz(a, c);
                }
            }
        }
        b.build()
    }

    #[test]
    fn parallax_schedule_is_exact() {
        for seed in 0..3u64 {
            let c = test_circuit(5, seed);
            let r =
                ParallaxCompiler::new(MachineSpec::quera_aquila_256(), CompilerConfig::quick(seed))
                    .compile(&c);
            let f = parallax_schedule_fidelity(&c, &r, 42 + seed);
            assert_equivalent(f, "parallax schedule");
        }
    }

    #[test]
    fn eldi_routing_is_exact_up_to_permutation() {
        for seed in 0..3u64 {
            let c = test_circuit(5, 10 + seed);
            let r = compile_eldi(&c, &MachineSpec::quera_aquila_256(), &EldiConfig::default());
            let f = baseline_routed_fidelity(&c, &r, 99 + seed);
            assert_equivalent(f, "eldi routed circuit");
        }
    }

    #[test]
    fn graphine_routing_is_exact_up_to_permutation() {
        let c = test_circuit(6, 77);
        let r = compile_graphine(&c, &MachineSpec::quera_aquila_256(), &PlacementConfig::quick(7));
        let f = baseline_routed_fidelity(&c, &r, 1234);
        assert_equivalent(f, "graphine routed circuit");
    }

    #[test]
    fn detects_a_broken_schedule() {
        // Tamper with a baseline result's mapping: fidelity must drop.
        let c = test_circuit(4, 5);
        let mut r = compile_eldi(&c, &MachineSpec::quera_aquila_256(), &EldiConfig::default());
        if r.swap_count > 0 {
            r.final_mapping = (0..4).collect(); // pretend no permutation
            let f = baseline_routed_fidelity(&c, &r, 8);
            assert!(f < 1.0 - 1e-6, "tampered mapping not detected: f = {f}");
        }
    }
}
