//! Monte Carlo shot simulation.
//!
//! Complements the analytic fidelity model with sampled noise: every gate
//! fails independently with its Table II error rate, every qubit may
//! decohere over the shot duration or be lost from its trap, and readout
//! flips each measured bit with 5% probability. Lost atoms are replenished
//! between physical shots (Section III), so loss affects only error rates.

use crate::fidelity::FidelityInputs;
use parallax_hardware::HardwareParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a Monte Carlo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloResult {
    /// Shots with no gate/decoherence/loss error (readout excluded) over
    /// total shots.
    pub success_rate: f64,
    /// Shots that are fully clean including readout.
    pub success_rate_with_readout: f64,
    /// Shots that lost at least one atom.
    pub atom_loss_rate: f64,
    /// Total shots sampled.
    pub shots: usize,
}

/// Sample `shots` noisy executions of a circuit summarized by `inputs`.
pub fn run_monte_carlo(
    inputs: &FidelityInputs,
    params: &HardwareParams,
    shots: usize,
    seed: u64,
) -> MonteCarloResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let t_s = inputs.runtime_us * 1e-6;
    let p_decohere = 1.0 - ((-t_s / params.t1_seconds).exp() * (-t_s / params.t2_seconds).exp());
    let mut ok = 0usize;
    let mut ok_read = 0usize;
    let mut lost_shots = 0usize;

    for _ in 0..shots {
        let mut clean = true;
        // Gate errors.
        for _ in 0..inputs.cz_count {
            if rng.random::<f64>() < params.cz_gate_error {
                clean = false;
                break;
            }
        }
        if clean {
            for _ in 0..inputs.u3_count {
                if rng.random::<f64>() < params.u3_gate_error {
                    clean = false;
                    break;
                }
            }
        }
        // Decoherence and atom loss per qubit.
        let mut lost = false;
        for _ in 0..inputs.num_qubits {
            if rng.random::<f64>() < p_decohere {
                clean = false;
            }
            if rng.random::<f64>() < params.atom_loss_rate {
                lost = true;
                clean = false;
            }
        }
        if lost {
            lost_shots += 1;
        }
        if clean {
            ok += 1;
            // Readout flips.
            let mut read_ok = true;
            for _ in 0..inputs.num_qubits {
                if rng.random::<f64>() < params.readout_error {
                    read_ok = false;
                    break;
                }
            }
            if read_ok {
                ok_read += 1;
            }
        }
    }
    MonteCarloResult {
        success_rate: ok as f64 / shots as f64,
        success_rate_with_readout: ok_read as f64 / shots as f64,
        atom_loss_rate: lost_shots as f64 / shots as f64,
        shots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fidelity::success_probability;

    fn params() -> HardwareParams {
        HardwareParams::table2()
    }

    #[test]
    fn sampled_rate_matches_analytic_model() {
        let inputs = FidelityInputs { cz_count: 32, u3_count: 40, num_qubits: 9, runtime_us: 67.0 };
        let analytic = success_probability(&inputs, &params());
        // Monte Carlo includes atom loss, which the analytic model folds
        // into T1 — compare against analytic times the no-loss factor.
        let no_loss = (1.0 - params().atom_loss_rate).powi(9);
        let mc = run_monte_carlo(&inputs, &params(), 40_000, 1);
        let expected = analytic * no_loss;
        assert!(
            (mc.success_rate - expected).abs() < 0.02,
            "mc {} vs analytic {}",
            mc.success_rate,
            expected
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let inputs = FidelityInputs { cz_count: 10, u3_count: 10, num_qubits: 4, runtime_us: 50.0 };
        let a = run_monte_carlo(&inputs, &params(), 1000, 7);
        let b = run_monte_carlo(&inputs, &params(), 1000, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn readout_lowers_success() {
        let inputs = FidelityInputs { cz_count: 5, u3_count: 5, num_qubits: 6, runtime_us: 10.0 };
        let mc = run_monte_carlo(&inputs, &params(), 20_000, 3);
        assert!(mc.success_rate_with_readout < mc.success_rate);
        // (1-0.05)^6 ~ 0.735 ratio.
        let ratio = mc.success_rate_with_readout / mc.success_rate;
        assert!((ratio - 0.95f64.powi(6)).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn atom_loss_rate_observed() {
        let inputs = FidelityInputs { cz_count: 0, u3_count: 0, num_qubits: 10, runtime_us: 0.0 };
        let mc = run_monte_carlo(&inputs, &params(), 20_000, 9);
        let expected = 1.0 - (1.0 - params().atom_loss_rate).powi(10);
        assert!((mc.atom_loss_rate - expected).abs() < 0.01);
    }

    #[test]
    fn noiseless_circuit_always_succeeds_sans_readout() {
        let mut p = params();
        p.atom_loss_rate = 0.0;
        let inputs = FidelityInputs { cz_count: 0, u3_count: 0, num_qubits: 3, runtime_us: 0.0 };
        let mc = run_monte_carlo(&inputs, &p, 5000, 2);
        assert_eq!(mc.success_rate, 1.0);
    }
}
