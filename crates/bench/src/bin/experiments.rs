//! Regenerate the Parallax paper's tables and figures.
//!
//! Usage:
//! ```text
//! experiments [table2|table3|fig9|fig10|table4|fig11|fig12|fig13|summary|all]
//!             [--quick] [--seed N] [--trace FILE] [--metrics]
//! experiments multi-mover [--quick] [--seed N]
//! experiments sweep-restarts [--quick] [--seed N]
//! experiments variational-sweep [--quick] [--seed N]
//! experiments scale [--samples N] [--seed N]
//! ```
//!
//! `--quick` restricts to six small benchmarks (useful in debug builds);
//! the full suite is intended for `cargo run --release -p parallax-bench
//! --bin experiments -- all`. `sweep-restarts` is a tuning mode (not part
//! of `all`): it sweeps `PlacementConfig::restarts` over {1, 2, 4, 8} and
//! reports placement wall time vs schedule quality, the measurement
//! behind the preset default. `variational-sweep` (also outside `all`)
//! measures the parameterized-template fast path: per benchmark, one
//! structure compile followed by a 100-point rebind sweep, reporting the
//! per-point rebind time against a warm full compile. `scale` (also
//! outside `all`) measures the post-placement cold pipeline at
//! 1,000–4,000 qubits on Atom-1225 and the synthetic 2,048/4,096-site
//! grids, `--samples` cold compiles per arm (default 3).
//!
//! `--trace FILE` enables span tracing for the run and exports every
//! recorded span as Chrome trace-event JSON (open in `chrome://tracing`
//! or Perfetto). The export summary goes to stderr, so stdout stays
//! byte-identical to an untraced run — tracing must never change results.
//! `--metrics` appends the unified metrics registry (Prometheus text) to
//! stdout after the tables.

use parallax_bench::*;
use parallax_hardware::MachineSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let metrics = args.iter().any(|a| a == "--metrics");
    let flag_value =
        |flag: &str| args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned();
    let seed = flag_value("--seed").and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
    let samples = flag_value("--samples").and_then(|v| v.parse::<usize>().ok()).unwrap_or(3);
    let trace_path = flag_value("--trace");
    // The subcommand is the first argument that is neither a flag nor the
    // value consumed by a value-taking flag (`--seed N`, `--trace FILE`).
    let mut which: Option<String> = None;
    let mut skip_value = false;
    for a in &args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if a == "--seed" || a == "--trace" || a == "--samples" {
            skip_value = true;
            continue;
        }
        if a.starts_with("--") {
            continue;
        }
        which = Some(a.clone());
        break;
    }
    let which = which.unwrap_or_else(|| "all".to_string());

    if trace_path.is_some() {
        parallax_trace::set_enabled(true);
    }
    parallax_core::register_observability();

    let run = |name: &str| which == name || which == "all";

    if run("table2") {
        let (h, d) = table2_rows();
        println!("== Table II: hardware parameters ==\n{}", render_table(&h, &d));
    }
    if run("table3") {
        let (h, d) = table3_rows(seed);
        println!("== Table III: benchmarks ==\n{}", render_table(&h, &d));
    }

    if run("fig9") || run("fig10") || run("summary") {
        let benches = selected_benchmarks(quick);
        eprintln!("[experiments] compiling {} benchmarks x 3 compilers...", benches.len());
        let rows = run_comparison(&benches, MachineSpec::quera_aquila_256(), seed);
        if run("fig9") {
            let (h, d) = fig9_rows(&rows);
            println!("== Fig. 9: CZ gate counts (QuEra-256) ==\n{}", render_table(&h, &d));
        }
        if run("fig10") {
            let (h, d) = fig10_rows(&rows);
            println!("== Fig. 10: probability of success (QuEra-256) ==\n{}", render_table(&h, &d));
        }
        if run("summary") {
            let s = summarize(&rows);
            println!("== Headline summary (paper: -39%/-25% CZ, +46%/+28% success, 1.3% trap changes) ==");
            println!(
                "CZ reduction vs Graphine: {:.1}%   (paper: 39%)",
                100.0 * s.cz_reduction_vs_graphine
            );
            println!(
                "CZ reduction vs Eldi:     {:.1}%   (paper: 25%)",
                100.0 * s.cz_reduction_vs_eldi
            );
            println!(
                "Success gain vs Graphine: {:.1}%   (paper: 46%)",
                100.0 * s.success_gain_vs_graphine
            );
            println!(
                "Success gain vs Eldi:     {:.1}%   (paper: 28%)",
                100.0 * s.success_gain_vs_eldi
            );
            println!(
                "Trap changes per CZ:      {:.2}%   (paper: ~1.3%)\n",
                100.0 * s.trap_change_rate
            );
        }
    }

    if run("table4") {
        let benches = selected_benchmarks(quick);
        eprintln!("[experiments] Table IV: compiling on both machines...");
        let (h, d) = table4_rows(&benches, seed);
        println!("== Table IV: circuit runtime (µs) ==\n{}", render_table(&h, &d));
    }

    if run("fig11") {
        let (h, d) = fig11_rows(seed, quick);
        println!(
            "== Fig. 11: total execution time vs parallelization (Atom-1225, 8000 shots) ==\n{}",
            render_table(&h, &d)
        );
    }

    if run("fig12") {
        let benches = selected_benchmarks(quick);
        let (h, d) = fig12_rows(&benches, seed);
        println!("== Fig. 12: home-return ablation (Atom-1225) ==\n{}", render_table(&h, &d));
    }

    if run("fig13") {
        let benches = selected_benchmarks(quick);
        let (h, d) = fig13_rows(&benches, seed);
        println!("== Fig. 13: AOD count ablation (Atom-1225) ==\n{}", render_table(&h, &d));
    }

    // The ROADMAP item 3 scheduling ablation (outside `all`, so the
    // paper-preset outputs stay byte-identical): default vs multi-mover
    // layers on the Table III workloads, statevector-verified where the
    // simulator can hold the circuit.
    if which == "multi-mover" {
        let benches = selected_benchmarks(quick);
        eprintln!("[experiments] multi-mover ablation: {} benchmarks x 2 arms...", benches.len());
        let rows = multi_mover_ablation(&benches, MachineSpec::quera_aquila_256(), seed);
        let (h, d) = multi_mover_rows(&rows);
        println!(
            "== Multi-mover scheduling ablation (QuEra-256, seed {seed}) ==\n{}",
            render_table(&h, &d)
        );
    }

    // Tuning mode, deliberately excluded from `all`: every arm re-anneals.
    if which == "sweep-restarts" {
        let benches = selected_benchmarks(quick);
        eprintln!("[experiments] restart sweep: {} benchmarks x 4 arms...", benches.len());
        let rows = sweep_restarts(&benches, MachineSpec::quera_aquila_256(), seed, &[1, 2, 4, 8]);
        let (h, d) = sweep_restarts_rows(&rows);
        println!(
            "== Restart sweep: placement cost vs schedule quality (QuEra-256) ==\n{}",
            render_table(&h, &d)
        );
    }

    // The variational-sweep scenario (outside `all`, like sweep-restarts):
    // the QAOA/VQE serving shape — one structure, many angle bindings.
    if which == "variational-sweep" {
        let benches = selected_benchmarks(quick);
        eprintln!("[experiments] variational sweep: {} benchmarks x 100 points...", benches.len());
        let (h, d) = variational_sweep_rows(&benches, seed, 100);
        println!(
            "== Variational sweep: template rebind vs warm full compile (QuEra-256) ==\n{}",
            render_table(&h, &d)
        );
        let tc = parallax_core::template_cache_stats();
        println!(
            "template cache: len {} weight {}/{} hits {} misses {} evictions {}",
            tc.len, tc.weight, tc.capacity, tc.hits, tc.misses, tc.evictions
        );
    }

    // Fleet-scale cold-compile mode (outside `all`, like sweep-restarts:
    // the table prints wall-clock times, so it can never join the
    // byte-identity set). Post-placement pipeline, fresh jittered layout
    // per sample — every cache key cold.
    if which == "scale" {
        eprintln!("[experiments] scale: 3 machine arms x {samples} cold compiles...");
        let (h, d) = scale::scale_rows(samples.max(1), seed);
        println!(
            "== Scale: post-placement cold compile at 1k-4k qubits ==\n{}",
            render_table(&h, &d)
        );
    }

    if parallax_core::profile::enabled() {
        println!(
            "== PARALLAX_PROFILE: cumulative pipeline stage costs ==\n{}",
            parallax_core::profile::render()
        );
        let lc = parallax_core::layout_cache_stats();
        let pc = parallax_core::plan_cache_stats();
        println!(
            "layout cache: len {} weight {}/{} hits {} misses {} evictions {}",
            lc.len, lc.weight, lc.capacity, lc.hits, lc.misses, lc.evictions
        );
        println!(
            "plan cache:   len {} weight {}/{} hits {} misses {} evictions {}",
            pc.len, pc.weight, pc.capacity, pc.hits, pc.misses, pc.evictions
        );
    }

    // Opt-in registry dump: everything the run recorded (stage timers,
    // compile stats, cache gauges) in Prometheus text exposition.
    if metrics {
        println!("== Metrics registry (Prometheus text exposition) ==");
        print!("{}", parallax_trace::render_prometheus());
    }

    // The Chrome trace export goes last so it captures every span of the
    // run; its summary goes to stderr so a traced run's *stdout* stays
    // byte-identical to an untraced one (the determinism contract).
    if let Some(path) = trace_path {
        let events = parallax_trace::snapshot_events();
        let json = parallax_trace::export_chrome(&events);
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("[experiments] cannot write trace file {path}: {e}");
            std::process::exit(1);
        }
        let dropped = parallax_trace::dropped_events();
        eprintln!(
            "[experiments] wrote {} spans to {path} (open in chrome://tracing or Perfetto){}",
            events.len(),
            if dropped > 0 {
                format!("; {dropped} dropped by the ring buffer")
            } else {
                String::new()
            }
        );
    }
}
