//! Command-line compiler: QASM 2.0 in, compilation report out.
//!
//! ```text
//! parallax-compile <file.qasm|-> [--machine quera|atom] [--seed N]
//!                  [--compiler parallax|eldi|graphine] [--schedule]
//!                  [--no-return-home] [--aod-dim N]
//! ```
//!
//! Mirrors the paper's open-source tool: reads an OpenQASM 2.0 circuit,
//! transpiles it to the {U3, CZ} basis, compiles it with Parallax (or a
//! baseline for comparison), and prints the evaluation metrics. `--schedule`
//! additionally dumps the per-layer gate/movement plan.

use parallax_baselines::{compile_eldi, compile_graphine, EldiConfig};
use parallax_circuit::{from_qasm, optimize};
use parallax_core::{CompilerConfig, ParallaxCompiler};
use parallax_graphine::PlacementConfig;
use parallax_hardware::MachineSpec;
use parallax_sim::{
    baseline_fidelity_inputs, parallax_fidelity_inputs, success_probability,
    success_probability_with_readout,
};
use std::io::Read;

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: parallax-compile <file.qasm|-> [--machine quera|atom] [--seed N] \
         [--compiler parallax|eldi|graphine] [--schedule] [--no-return-home] [--aod-dim N]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut machine = MachineSpec::quera_aquila_256();
    let mut seed = 0u64;
    let mut which = "parallax".to_string();
    let mut show_schedule = false;
    let mut return_home = true;
    let mut aod_dim: Option<usize> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--machine" => match it.next().map(String::as_str) {
                Some("quera") => machine = MachineSpec::quera_aquila_256(),
                Some("atom") => machine = MachineSpec::atom_1225(),
                _ => die("--machine expects 'quera' or 'atom'"),
            },
            "--seed" => {
                seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| die("bad --seed"))
            }
            "--compiler" => {
                which = it.next().cloned().unwrap_or_else(|| die("bad --compiler"));
            }
            "--schedule" => show_schedule = true,
            "--no-return-home" => return_home = false,
            "--aod-dim" => {
                aod_dim = Some(
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| die("bad --aod-dim")),
                )
            }
            other if !other.starts_with("--") && path.is_none() => path = Some(other.to_string()),
            other => die(&format!("unknown argument '{other}'")),
        }
    }
    let path = path.unwrap_or_else(|| die("missing input file (use '-' for stdin)"));
    if let Some(dim) = aod_dim {
        machine = machine.with_aod_dim(dim);
    }

    let source = if path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf).unwrap_or_else(|e| die(&e.to_string()));
        buf
    } else {
        std::fs::read_to_string(&path).unwrap_or_else(|e| die(&format!("{path}: {e}")))
    };

    let program = parallax_qasm::parse(&source).unwrap_or_else(|e| die(&e.to_string()));
    let raw = from_qasm(&program).unwrap_or_else(|e| die(&e.to_string()));
    let circuit = optimize(&raw);
    println!("input:     {raw}");
    println!("transpiled: {circuit}");
    if circuit.num_qubits() > machine.num_sites() {
        die(&format!(
            "circuit needs {} qubits but {} has {} sites",
            circuit.num_qubits(),
            machine.name,
            machine.num_sites()
        ));
    }

    match which.as_str() {
        "parallax" => {
            let config = CompilerConfig {
                seed,
                placement: PlacementConfig { seed, ..Default::default() },
                return_home,
                ..Default::default()
            };
            let result = ParallaxCompiler::new(machine, config).compile(&circuit);
            let stats = &result.schedule.stats;
            let inputs = parallax_fidelity_inputs(&result);
            println!("\n== parallax on {} ==", machine.name);
            println!("layers:                {}", stats.layer_count);
            println!("CZ / U3 / SWAP:        {} / {} / 0", stats.cz_count, stats.u3_count);
            println!("AOD atoms:             {:?}", result.aod_selection.selected);
            println!("moves / trap changes:  {} / {}", stats.moves_planned, stats.trap_changes);
            println!("interaction radius:    {:.1} µm", result.interaction_radius_um);
            println!("runtime:               {:.1} µs", inputs.runtime_us);
            println!(
                "success probability:   {:.4e} ({:.4e} incl. readout)",
                success_probability(&inputs, &machine.params),
                success_probability_with_readout(&inputs, &machine.params),
            );
            if show_schedule {
                println!("\nlayer  gates  moves  trap  move_um  return_um");
                for (i, l) in result.schedule.layers.iter().enumerate() {
                    println!(
                        "{i:>5}  {:>5}  {:>5}  {:>4}  {:>7.1}  {:>9.1}",
                        l.gate_indices.len(),
                        l.moves.len(),
                        l.trap_changes,
                        l.move_distance_um,
                        l.return_distance_um
                    );
                }
            }
        }
        "eldi" | "graphine" => {
            let result = if which == "eldi" {
                compile_eldi(&circuit, &machine, &EldiConfig::default())
            } else {
                compile_graphine(
                    &circuit,
                    &machine,
                    &PlacementConfig { seed, ..Default::default() },
                )
            };
            let inputs = baseline_fidelity_inputs(&result, &machine.params);
            println!("\n== {which} on {} ==", machine.name);
            println!("layers:              {}", result.layer_count());
            println!(
                "CZ / U3 / SWAP:      {} / {} / {}",
                result.cz_count(),
                result.u3_count(),
                result.swap_count
            );
            println!("interaction radius:  {:.1} µm", result.interaction_radius_um);
            println!("runtime:             {:.1} µs", inputs.runtime_us);
            println!("success probability: {:.4e}", success_probability(&inputs, &machine.params));
        }
        other => die(&format!("unknown compiler '{other}'")),
    }
}
