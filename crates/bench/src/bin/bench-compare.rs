//! Diff two directories of `BENCH_*.json` dumps and fail on regressions.
//!
//! ```text
//! bench-compare <baseline-dir> <candidate-dir> [--tolerance FRACTION]
//!               [--min-mean-ms MS]
//! ```
//!
//! Compares mean times benchmark-by-benchmark and exits nonzero when any
//! shared benchmark's mean regressed by more than the tolerance (default
//! 0.15 = 15%). `--min-mean-ms` exempts benches whose *baseline* mean is
//! below the floor from the gate (reported as `noisy` instead of
//! `REGRESSED`): few-µs micro-benches swing far past any sane tolerance
//! between runs on shared hardware. Benchmarks missing from the candidate
//! are warned about but do not fail the run; new benchmarks are noted.
//! Typical loop:
//!
//! ```text
//! PARALLAX_BENCH_JSON_DIR=/tmp/before cargo bench -p parallax-bench
//! # ...make changes...
//! PARALLAX_BENCH_JSON_DIR=/tmp/after  cargo bench -p parallax-bench
//! cargo run --release -p parallax-bench --bin bench-compare -- /tmp/before /tmp/after
//! ```
//!
//! CI runs this twice per build: an always-on **absolute backstop**
//! against the committed `benches/baseline/` snapshot (`--tolerance 3.0`
//! — different hardware, order-of-magnitude protection, but a *fixed*
//! baseline that bounds cumulative drift), and a **relative gate**
//! against the previous successful run's `bench-json` artifact at the
//! default 15% — same runner class on both sides, so the default
//! tolerance is meaningful. Both pass `--min-mean-ms 1`.

use parallax_bench::compare::{compare, load_dir, render_report};
use std::path::Path;

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: bench-compare <baseline-dir> <candidate-dir> [--tolerance FRACTION] \
         [--min-mean-ms MS]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dirs: Vec<String> = Vec::new();
    let mut tolerance = 0.15f64;
    let mut min_mean_ns = 0.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| die("--tolerance expects a non-negative fraction"))
            }
            "--min-mean-ms" => {
                min_mean_ns = it
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .map(|ms| ms * 1e6)
                    .unwrap_or_else(|| die("--min-mean-ms expects a non-negative number"))
            }
            other if !other.starts_with("--") => dirs.push(other.to_string()),
            other => die(&format!("unknown argument '{other}'")),
        }
    }
    let [base_dir, new_dir] = dirs.as_slice() else {
        die("expected exactly two directories");
    };

    let base = load_dir(Path::new(base_dir)).unwrap_or_else(|e| die(&e));
    let new = load_dir(Path::new(new_dir)).unwrap_or_else(|e| die(&e));
    if base.is_empty() {
        die(&format!("no BENCH_*.json files in baseline dir {base_dir}"));
    }

    let report = compare(&base, &new);
    print!("{}", render_report(&report, tolerance, min_mean_ns));
    let regressions = report.regressions_with_floor(tolerance, min_mean_ns);
    if regressions.is_empty() {
        println!(
            "ok: {} benchmark(s) within {:.0}% of baseline",
            report.deltas.len(),
            100.0 * tolerance
        );
    } else {
        eprintln!(
            "FAIL: {} benchmark(s) regressed beyond {:.0}%",
            regressions.len(),
            100.0 * tolerance
        );
        std::process::exit(1);
    }
}
