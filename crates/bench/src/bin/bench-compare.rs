//! Diff two directories of `BENCH_*.json` dumps and fail on regressions.
//!
//! ```text
//! bench-compare <baseline-dir> <candidate-dir> [--tolerance FRACTION]
//! ```
//!
//! Compares mean times benchmark-by-benchmark and exits nonzero when any
//! shared benchmark's mean regressed by more than the tolerance (default
//! 0.15 = 15%). Benchmarks missing from the candidate are warned about but
//! do not fail the run; new benchmarks are noted. Typical loop:
//!
//! ```text
//! PARALLAX_BENCH_JSON_DIR=/tmp/before cargo bench -p parallax-bench
//! # ...make changes...
//! PARALLAX_BENCH_JSON_DIR=/tmp/after  cargo bench -p parallax-bench
//! cargo run --release -p parallax-bench --bin bench-compare -- /tmp/before /tmp/after
//! ```
//!
//! CI runs it with a loose `--tolerance` against the committed
//! `benches/baseline/` snapshot (single-sample runs on shared runners are
//! noisy; the gate is for order-of-magnitude regressions, while the
//! committed snapshot documents the expected trajectory).

use parallax_bench::compare::{compare, load_dir, render_report};
use std::path::Path;

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: bench-compare <baseline-dir> <candidate-dir> [--tolerance FRACTION]");
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dirs: Vec<String> = Vec::new();
    let mut tolerance = 0.15f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| die("--tolerance expects a non-negative fraction"))
            }
            other if !other.starts_with("--") => dirs.push(other.to_string()),
            other => die(&format!("unknown argument '{other}'")),
        }
    }
    let [base_dir, new_dir] = dirs.as_slice() else {
        die("expected exactly two directories");
    };

    let base = load_dir(Path::new(base_dir)).unwrap_or_else(|e| die(&e));
    let new = load_dir(Path::new(new_dir)).unwrap_or_else(|e| die(&e));
    if base.is_empty() {
        die(&format!("no BENCH_*.json files in baseline dir {base_dir}"));
    }

    let report = compare(&base, &new);
    print!("{}", render_report(&report, tolerance));
    let regressions = report.regressions(tolerance);
    if regressions.is_empty() {
        println!(
            "ok: {} benchmark(s) within {:.0}% of baseline",
            report.deltas.len(),
            100.0 * tolerance
        );
    } else {
        eprintln!(
            "FAIL: {} benchmark(s) regressed beyond {:.0}%",
            regressions.len(),
            100.0 * tolerance
        );
        std::process::exit(1);
    }
}
