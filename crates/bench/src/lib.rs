//! Experiment harness regenerating every table and figure of the Parallax
//! paper's evaluation (Section IV).
//!
//! The library half computes results; the `experiments` binary and the
//! Criterion benches print/measure them. Every experiment is deterministic
//! per seed and fans out over worker threads.
//!
//! | Paper artifact | Function |
//! |----------------|----------|
//! | Table II (hardware parameters) | [`table2_rows`] |
//! | Table III (benchmarks)         | [`table3_rows`] |
//! | Fig. 9 (CZ gate counts)        | [`run_comparison`] -> [`fig9_rows`] |
//! | Fig. 10 (probability of success) | [`run_comparison`] -> [`fig10_rows`] |
//! | Table IV (circuit runtimes, 256 & 1,225) | [`table4_rows`] |
//! | Fig. 11 (parallel shots vs execution time) | [`fig11_rows`] |
//! | Fig. 12 (home-return ablation) | [`fig12_rows`] |
//! | Fig. 13 (AOD count ablation)   | [`fig13_rows`] |

use parallax_baselines::{compile_eldi, compile_graphine_with_layout, EldiConfig};
use parallax_circuit::Circuit;
use parallax_core::{cached_layout, replication_plan, CompilerConfig, ParallaxCompiler};
use parallax_graphine::{GraphineLayout, PlacementConfig};

pub mod compare;
pub mod scale;
use parallax_hardware::{HardwareParams, MachineSpec};
use parallax_sim::equivalence::parallax_schedule_fidelity;
use parallax_sim::statevector::MAX_SIM_QUBITS;
use parallax_sim::{
    baseline_fidelity_inputs, parallax_fidelity_inputs, success_probability, ShotModel,
};
use parallax_workloads::{all_benchmarks, Benchmark};

/// Metrics of one compiler on one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct CompiledMetrics {
    /// Executed CZ gates.
    pub cz: usize,
    /// Executed U3 gates.
    pub u3: usize,
    /// SWAPs inserted (0 for Parallax).
    pub swaps: usize,
    /// Single-shot circuit runtime, µs.
    pub runtime_us: f64,
    /// Probability of success (gate errors x decoherence).
    pub success: f64,
    /// Executed layers.
    pub layers: usize,
    /// Trap changes (Parallax only; 0 for baselines).
    pub trap_changes: usize,
}

/// Three-way comparison on one benchmark.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Benchmark acronym.
    pub name: String,
    /// Qubit count.
    pub qubits: usize,
    /// GRAPHINE baseline metrics.
    pub graphine: CompiledMetrics,
    /// ELDI baseline metrics.
    pub eldi: CompiledMetrics,
    /// Parallax metrics.
    pub parallax: CompiledMetrics,
}

/// Which benchmarks to evaluate.
pub fn selected_benchmarks(quick: bool) -> Vec<Benchmark> {
    let all = all_benchmarks();
    if quick {
        all.into_iter()
            .filter(|b| ["ADD", "ADV", "HLF", "QAOA", "QEC", "SECA"].contains(&b.name))
            .collect()
    } else {
        all
    }
}

/// Placement settings: the full anneal is expensive for 128-qubit TFIM, so
/// the iteration budget shrinks with qubit count.
///
/// `restarts` is pinned to 1 — the deliberate outcome of the
/// `experiments sweep-restarts` measurement (quick suite, seed 0): extra
/// restart streams sometimes land in lower-energy placement basins (e.g.
/// ADD 7.73 → 6.45 at K=4), but the compiled schedules' success
/// probability moves only within noise (−0.55%…+1.11% across all six
/// benchmarks and K ∈ {2,4,8}) while placement wall time scales linearly
/// with K whenever restart streams outnumber idle cores. One stream keeps
/// the presets at full quality-per-joule and keeps every seed-pinned
/// output stable; pass `.with_restarts(k)` explicitly to explore basins.
pub fn placement_for(qubits: usize, seed: u64) -> PlacementConfig {
    let max_iter = if qubits > 64 {
        120
    } else if qubits > 24 {
        250
    } else {
        400
    };
    PlacementConfig { seed, max_iter, local_search_evals: 800, restarts: 1, ..Default::default() }
}

fn parallax_metrics(
    circuit: &Circuit,
    layout: &GraphineLayout,
    machine: MachineSpec,
    config: &CompilerConfig,
) -> CompiledMetrics {
    let result =
        ParallaxCompiler::new(machine, config.clone()).compile_with_layout(circuit, layout);
    let inputs = parallax_fidelity_inputs(&result);
    CompiledMetrics {
        cz: result.cz_count(),
        u3: result.u3_count(),
        swaps: 0,
        runtime_us: inputs.runtime_us,
        success: success_probability(&inputs, &machine.params),
        layers: result.schedule.layers.len(),
        trap_changes: result.schedule.stats.trap_changes,
    }
}

fn eldi_metrics(circuit: &Circuit, machine: &MachineSpec) -> CompiledMetrics {
    let result = compile_eldi(circuit, machine, &EldiConfig::default());
    let inputs = baseline_fidelity_inputs(&result, &machine.params);
    CompiledMetrics {
        cz: result.cz_count(),
        u3: result.u3_count(),
        swaps: result.swap_count,
        runtime_us: inputs.runtime_us,
        success: success_probability(&inputs, &machine.params),
        layers: result.layer_count(),
        trap_changes: 0,
    }
}

fn graphine_metrics(
    circuit: &Circuit,
    layout: &GraphineLayout,
    machine: &MachineSpec,
) -> CompiledMetrics {
    let result = compile_graphine_with_layout(circuit, machine, layout);
    let inputs = baseline_fidelity_inputs(&result, &machine.params);
    CompiledMetrics {
        cz: result.cz_count(),
        u3: result.u3_count(),
        swaps: result.swap_count,
        runtime_us: inputs.runtime_us,
        success: success_probability(&inputs, &machine.params),
        layers: result.layer_count(),
        trap_changes: 0,
    }
}

/// Run the three compilers on one benchmark. Parallax and the GRAPHINE
/// baseline share the identical annealed layout, as in the paper; the
/// layout comes through the process-wide layout cache, so repeated
/// measurements of the same (benchmark, machine, seed) skip the anneal.
/// (The cache key deliberately includes the machine fingerprint, so the
/// second machine of a Table IV sweep re-anneals — a conservative key can
/// never serve a wrong layout.)
pub fn compare_benchmark(bench: &Benchmark, machine: MachineSpec, seed: u64) -> ComparisonRow {
    let circuit = bench.circuit(seed);
    let placement = placement_for(bench.qubits, seed);
    let layout = cached_layout(&circuit, &machine, &placement);
    let config = CompilerConfig { seed, placement: placement.clone(), ..Default::default() };
    ComparisonRow {
        name: bench.name.to_string(),
        qubits: bench.qubits,
        graphine: graphine_metrics(&circuit, &layout, &machine),
        eldi: eldi_metrics(&circuit, &machine),
        parallax: parallax_metrics(&circuit, &layout, machine, &config),
    }
}

/// Run the full three-way comparison across `benches`, fanned out over
/// worker threads.
pub fn run_comparison(
    benches: &[Benchmark],
    machine: MachineSpec,
    seed: u64,
) -> Vec<ComparisonRow> {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let next_task = std::sync::atomic::AtomicUsize::new(0);
    let (result_tx, result_rx) = std::sync::mpsc::channel::<(usize, ComparisonRow)>();
    let mut slots: Vec<Option<ComparisonRow>> = vec![None; benches.len()];
    std::thread::scope(|scope| {
        for _ in 0..threads.min(benches.len().max(1)) {
            let result_tx = result_tx.clone();
            let next_task = &next_task;
            scope.spawn(move || loop {
                let i = next_task.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= benches.len() {
                    return;
                }
                let row = compare_benchmark(&benches[i], machine, seed);
                if result_tx.send((i, row)).is_err() {
                    return;
                }
            });
        }
        drop(result_tx);
        while let Ok((i, row)) = result_rx.recv() {
            slots[i] = Some(row);
        }
    });
    slots.into_iter().map(|s| s.expect("all rows computed")).collect()
}

// ---------------------------------------------------------------------------
// Table rendering
// ---------------------------------------------------------------------------

/// Render an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Fig. 9: CZ gate counts per benchmark per compiler.
pub fn fig9_rows(rows: &[ComparisonRow]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers =
        vec!["Bench", "Qubits", "Graphine CZ", "Eldi CZ", "Parallax CZ", "vs Graphine", "vs Eldi"];
    let data = rows
        .iter()
        .map(|r| {
            let vs_g = 100.0 * (1.0 - r.parallax.cz as f64 / r.graphine.cz.max(1) as f64);
            let vs_e = 100.0 * (1.0 - r.parallax.cz as f64 / r.eldi.cz.max(1) as f64);
            vec![
                r.name.clone(),
                r.qubits.to_string(),
                r.graphine.cz.to_string(),
                r.eldi.cz.to_string(),
                r.parallax.cz.to_string(),
                format!("{vs_g:+.1}%"),
                format!("{vs_e:+.1}%"),
            ]
        })
        .collect();
    (headers, data)
}

/// Fig. 10: probability of success per benchmark per compiler.
pub fn fig10_rows(rows: &[ComparisonRow]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec!["Bench", "Graphine", "Eldi", "Parallax"];
    let data = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.2e}", r.graphine.success),
                format!("{:.2e}", r.eldi.success),
                format!("{:.2e}", r.parallax.success),
            ]
        })
        .collect();
    (headers, data)
}

/// Table IV: circuit runtimes on both machines.
pub fn table4_rows(benches: &[Benchmark], seed: u64) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let quera = run_comparison(benches, MachineSpec::quera_aquila_256(), seed);
    let atom = run_comparison(benches, MachineSpec::atom_1225(), seed);
    let headers = vec![
        "Bench",
        "Eldi-256",
        "Graphine-256",
        "Parallax-256",
        "Eldi-1225",
        "Graphine-1225",
        "Parallax-1225",
    ];
    let data = quera
        .iter()
        .zip(&atom)
        .map(|(q, a)| {
            vec![
                q.name.clone(),
                format!("{:.0}", q.eldi.runtime_us),
                format!("{:.0}", q.graphine.runtime_us),
                format!("{:.0}", q.parallax.runtime_us),
                format!("{:.0}", a.eldi.runtime_us),
                format!("{:.0}", a.graphine.runtime_us),
                format!("{:.0}", a.parallax.runtime_us),
            ]
        })
        .collect();
    (headers, data)
}

/// Fig. 11: total execution time of 8,000 shots vs parallelization factor
/// on the 1,225-qubit machine, for the paper's six showcased benchmarks.
pub fn fig11_rows(seed: u64, quick: bool) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let names: &[&str] =
        if quick { &["ADV", "SECA"] } else { &["ADV", "KNN", "QV", "SECA", "SQRT", "WST"] };
    let machine = MachineSpec::atom_1225();
    let shot_model = ShotModel::default();
    let headers = vec!["Bench", "Factor", "PhysShots", "TotalExec (s)"];
    let mut data = Vec::new();
    for name in names {
        let bench = parallax_workloads::benchmark(name).expect("known benchmark");
        let circuit = bench.circuit(seed);
        let placement = placement_for(bench.qubits, seed);
        let config = CompilerConfig { seed, placement: placement.clone(), ..Default::default() };
        let result = ParallaxCompiler::new(machine, config).compile(&circuit);
        let runtime = parallax_sim::parallax_runtime_us(&result);
        let max_plan = replication_plan(&result, &machine);
        let mut factors: Vec<usize> = Vec::new();
        for k in 1..=max_plan.copies_x.min(max_plan.copies_y) {
            factors.push(k * k);
        }
        let full = max_plan.factor();
        if factors.last() != Some(&full) {
            factors.push(full);
        }
        for f in factors {
            let total = shot_model.total_execution_time_us(runtime, f);
            data.push(vec![
                bench.name.to_string(),
                f.to_string(),
                shot_model.logical_shots.div_ceil(f).to_string(),
                format!("{:.4}", total * 1e-6),
            ]);
        }
    }
    (headers, data)
}

/// Fig. 12: circuit runtime with vs without AOD home-return.
pub fn fig12_rows(benches: &[Benchmark], seed: u64) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let machine = MachineSpec::atom_1225();
    let headers = vec!["Bench", "NoReturn (µs)", "Return (µs)", "Return saves"];
    let mut data = Vec::new();
    for bench in benches {
        let circuit = bench.circuit(seed);
        let placement = placement_for(bench.qubits, seed);
        let layout = cached_layout(&circuit, &machine, &placement);
        let cfg_home = CompilerConfig { seed, placement: placement.clone(), ..Default::default() };
        let cfg_stay = cfg_home.clone().without_home_return();
        let home = parallax_metrics(&circuit, &layout, machine, &cfg_home);
        let stay = parallax_metrics(&circuit, &layout, machine, &cfg_stay);
        let saving = 100.0 * (1.0 - home.runtime_us / stay.runtime_us.max(1e-9));
        data.push(vec![
            bench.name.to_string(),
            format!("{:.0}", stay.runtime_us),
            format!("{:.0}", home.runtime_us),
            format!("{saving:+.1}%"),
        ]);
    }
    (headers, data)
}

/// One benchmark's arm of the multi-mover scheduling ablation
/// (`experiments multi-mover`): the same circuit and cached layout
/// compiled with the default single-mover Algorithm 1 and with
/// `SchedulingMode::MultiMover`, side by side.
#[derive(Debug, Clone)]
pub struct MultiMoverRow {
    /// Benchmark acronym.
    pub name: String,
    /// Qubit count.
    pub qubits: usize,
    /// Executed layers, default single-mover path.
    pub layers_single: usize,
    /// Executed layers, multi-mover path.
    pub layers_multi: usize,
    /// Multi-mover layers that batched two or more move plans.
    pub batched_layers: usize,
    /// Layers saved by batching (movers beyond the first per layer).
    pub layers_saved: usize,
    /// Largest number of move plans any layer committed.
    pub max_movers: usize,
    /// Candidates deferred by the interference rule.
    pub conflicts: usize,
    /// Single-shot circuit runtime, µs, default path.
    pub runtime_single_us: f64,
    /// Single-shot circuit runtime, µs, multi-mover path.
    pub runtime_multi_us: f64,
    /// Probability of success, default path.
    pub success_single: f64,
    /// Probability of success, multi-mover path.
    pub success_multi: f64,
    /// Statevector fidelity of the multi-mover schedule's gate order
    /// against the input circuit (`None` beyond the simulator's
    /// [`MAX_SIM_QUBITS`] cap). Anything but ~1.0 is a compiler bug.
    pub fidelity: Option<f64>,
}

/// Compile each benchmark twice — default and multi-mover — on one shared
/// cached layout, and statevector-verify every multi-mover schedule the
/// simulator can hold. The compile-side invariants for the larger circuits
/// (dependency order, per-layer plan disjointness, batch replay) are
/// enforced by the scheduler's debug assertions and the umbrella
/// `multi_mover` suite.
pub fn multi_mover_ablation(
    benches: &[Benchmark],
    machine: MachineSpec,
    seed: u64,
) -> Vec<MultiMoverRow> {
    benches
        .iter()
        .map(|bench| {
            let circuit = bench.circuit(seed);
            let placement = placement_for(bench.qubits, seed);
            let layout = cached_layout(&circuit, &machine, &placement);
            let cfg_single =
                CompilerConfig { seed, placement: placement.clone(), ..Default::default() };
            let cfg_multi = cfg_single.clone().with_multi_mover();
            let single =
                ParallaxCompiler::new(machine, cfg_single).compile_with_layout(&circuit, &layout);
            let multi =
                ParallaxCompiler::new(machine, cfg_multi).compile_with_layout(&circuit, &layout);
            let fidelity = (circuit.num_qubits() <= MAX_SIM_QUBITS)
                .then(|| parallax_schedule_fidelity(&circuit, &multi, seed));
            let inputs_single = parallax_fidelity_inputs(&single);
            let inputs_multi = parallax_fidelity_inputs(&multi);
            let mm = &multi.schedule.stats.multi_mover;
            MultiMoverRow {
                name: bench.name.to_string(),
                qubits: bench.qubits,
                layers_single: single.schedule.stats.layer_count,
                layers_multi: multi.schedule.stats.layer_count,
                batched_layers: mm.movers_per_layer[1..].iter().sum(),
                layers_saved: mm.layers_saved,
                max_movers: mm.movers_per_layer.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1),
                conflicts: mm.conflict_rejections,
                runtime_single_us: inputs_single.runtime_us,
                runtime_multi_us: inputs_multi.runtime_us,
                success_single: success_probability(&inputs_single, &machine.params),
                success_multi: success_probability(&inputs_multi, &machine.params),
                fidelity,
            }
        })
        .collect()
}

/// Render [`multi_mover_ablation`] results: layer counts and their delta,
/// batching evidence, runtime/success movement, and the statevector
/// verdict per benchmark.
pub fn multi_mover_rows(rows: &[MultiMoverRow]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec![
        "Bench",
        "Qubits",
        "Single",
        "Multi",
        "Layers",
        "Batched",
        "MaxMovers",
        "Runtime",
        "Success",
        "Statevector",
    ];
    let data = rows
        .iter()
        .map(|r| {
            let layers_delta =
                100.0 * (r.layers_multi as f64 / r.layers_single.max(1) as f64 - 1.0);
            let runtime_delta = 100.0 * (r.runtime_multi_us / r.runtime_single_us.max(1e-9) - 1.0);
            let success_delta = 100.0 * (r.success_multi - r.success_single);
            vec![
                r.name.clone(),
                r.qubits.to_string(),
                r.layers_single.to_string(),
                r.layers_multi.to_string(),
                format!("{layers_delta:+.1}%"),
                r.batched_layers.to_string(),
                r.max_movers.to_string(),
                format!("{runtime_delta:+.1}%"),
                format!("{success_delta:+.2}pp"),
                match r.fidelity {
                    Some(f) => format!("{f:.6}"),
                    None => format!("n/a (>{MAX_SIM_QUBITS}q)"),
                },
            ]
        })
        .collect();
    (headers, data)
}

/// Fig. 13: circuit runtime across AOD row/column counts {1, 5, 10, 20, 40}.
pub fn fig13_rows(benches: &[Benchmark], seed: u64) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let counts = [1usize, 5, 10, 20, 40];
    let headers = vec!["Bench", "AOD=1", "AOD=5", "AOD=10", "AOD=20", "AOD=40"];
    let mut data = Vec::new();
    for bench in benches {
        let circuit = bench.circuit(seed);
        let placement = placement_for(bench.qubits, seed);
        // The AOD sweep deliberately reuses ONE layout across all five
        // machine variants (as the paper does), so it is keyed by the base
        // machine; `GraphineLayout::from_graph` takes no machine input, so
        // the shared layout is exact, not an approximation.
        let layout = cached_layout(&circuit, &MachineSpec::atom_1225(), &placement);
        let mut row = vec![bench.name.to_string()];
        for &count in &counts {
            let machine = MachineSpec::atom_1225().with_aod_dim(count);
            let cfg = CompilerConfig { seed, placement: placement.clone(), ..Default::default() };
            let m = parallax_metrics(&circuit, &layout, machine, &cfg);
            row.push(format!("{:.0}", m.runtime_us));
        }
        data.push(row);
    }
    (headers, data)
}

/// One arm of the restart sweep: placement quality and cost at `restarts`
/// parallel annealing streams.
#[derive(Debug, Clone)]
pub struct RestartSweepRow {
    /// Benchmark acronym.
    pub name: String,
    /// Qubit count.
    pub qubits: usize,
    /// Restart streams.
    pub restarts: usize,
    /// Placement wall time, ms (fresh anneal, layout cache bypassed).
    pub placement_ms: f64,
    /// Annealed placement energy (lower is better).
    pub energy: f64,
    /// Executed CZ gates (constant across arms — Parallax adds zero SWAPs;
    /// kept as the sanity column the ROADMAP item asks for).
    pub cz: usize,
    /// Probability of success of the compiled schedule.
    pub success: f64,
}

/// Sweep `PlacementConfig::restarts` over `counts` for each benchmark:
/// anneal fresh (the layout cache is deliberately bypassed so every arm
/// pays its real placement cost), compile with the resulting layout, and
/// report quality-vs-wall-time. This is the measurement behind the
/// default restart count in [`placement_for`].
pub fn sweep_restarts(
    benches: &[Benchmark],
    machine: MachineSpec,
    seed: u64,
    counts: &[usize],
) -> Vec<RestartSweepRow> {
    let mut rows = Vec::new();
    for bench in benches {
        let circuit = bench.circuit(seed);
        for &restarts in counts {
            let placement = placement_for(bench.qubits, seed).with_restarts(restarts);
            let t0 = std::time::Instant::now();
            let layout = GraphineLayout::generate(&circuit, &placement);
            let placement_ms = t0.elapsed().as_secs_f64() * 1e3;
            let config = CompilerConfig { seed, placement, ..Default::default() };
            let m = parallax_metrics(&circuit, &layout, machine, &config);
            rows.push(RestartSweepRow {
                name: bench.name.to_string(),
                qubits: bench.qubits,
                restarts,
                placement_ms,
                energy: layout.energy,
                cz: m.cz,
                success: m.success,
            });
        }
    }
    rows
}

/// Render the restart sweep as a table, with the relative success change
/// vs the 1-restart arm of the same benchmark.
pub fn sweep_restarts_rows(rows: &[RestartSweepRow]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers =
        vec!["Bench", "Qubits", "Restarts", "Place (ms)", "Energy", "CZ", "Success", "vs K=1"];
    let data = rows
        .iter()
        .map(|r| {
            let base = rows
                .iter()
                .find(|b| b.name == r.name && b.restarts == 1)
                .map(|b| b.success)
                .unwrap_or(r.success);
            let delta = if base > 0.0 { 100.0 * (r.success / base - 1.0) } else { 0.0 };
            vec![
                r.name.clone(),
                r.qubits.to_string(),
                r.restarts.to_string(),
                format!("{:.1}", r.placement_ms),
                format!("{:.4}", r.energy),
                r.cz.to_string(),
                format!("{:.3e}", r.success),
                format!("{delta:+.2}%"),
            ]
        })
        .collect();
    (headers, data)
}

/// Measure the variational-sweep serving shape per benchmark: one
/// structure compile into a [`parallax_core::CompiledTemplate`] (through
/// the process-wide template cache), then `points` rebinds on a
/// deterministic angle grid, against a warm full compile of the same
/// circuit (layout + plan caches hot — the best the per-point pipeline
/// can do). Columns report per-point rebind time and the resulting
/// speedup; benchmarks without U3 slots are skipped.
pub fn variational_sweep_rows(
    benches: &[Benchmark],
    seed: u64,
    points: usize,
) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec![
        "Bench",
        "Qubits",
        "Slots",
        "Points",
        "Compile (ms)",
        "Warm (µs)",
        "Rebind (µs)",
        "Speedup",
    ];
    let mut data = Vec::new();
    for bench in benches {
        let circuit = bench.circuit(seed);
        let placement = placement_for(bench.qubits, seed);
        let config = CompilerConfig { seed, placement, ..Default::default() };
        let compiler =
            parallax_core::ParallaxCompiler::new(MachineSpec::quera_aquila_256(), config);

        let t0 = std::time::Instant::now();
        let (template, _) = parallax_core::compiled_template(&compiler, &circuit);
        let compile_ms = t0.elapsed().as_secs_f64() * 1e3;
        let slots = template.num_params();
        if slots == 0 {
            continue;
        }

        compiler.compile(&circuit); // ensure layout + plan caches are hot
        let t0 = std::time::Instant::now();
        let warm = compiler.compile(&circuit);
        let warm_us = t0.elapsed().as_secs_f64() * 1e6;
        assert_eq!(warm.schedule.layers, template.result().schedule.layers);

        let grid: Vec<Vec<f64>> = (0..points)
            .map(|p| (0..slots).map(|s| ((p * slots + s) % 571) as f64 * 0.011 - 3.1).collect())
            .collect();
        let t0 = std::time::Instant::now();
        let mut bound_gates = 0usize;
        for point in &grid {
            bound_gates += template.rebind(point).expect("grid angles bind").len();
        }
        let rebind_us = t0.elapsed().as_secs_f64() * 1e6 / points.max(1) as f64;
        assert_eq!(bound_gates, circuit.len() * points);

        data.push(vec![
            bench.name.to_string(),
            bench.qubits.to_string(),
            slots.to_string(),
            points.to_string(),
            format!("{compile_ms:.1}"),
            format!("{warm_us:.0}"),
            format!("{rebind_us:.2}"),
            format!("{:.0}x", warm_us / rebind_us.max(1e-9)),
        ]);
    }
    (headers, data)
}

/// Table II as printable rows.
pub fn table2_rows() -> (Vec<&'static str>, Vec<Vec<String>>) {
    let p = HardwareParams::table2();
    let headers = vec!["Parameter", "Value"];
    let data = vec![
        vec!["Number of Qubits".into(), "256 & 1,225".into()],
        vec!["Time to Switch Traps (µs)".into(), format!("{}", p.trap_switch_time_us)],
        vec!["AOD Movement Speed (µm/µs)".into(), format!("{}", p.aod_move_speed_um_per_us)],
        vec!["T1 Coherence Time (s)".into(), format!("{}", p.t1_seconds)],
        vec!["T2 Coherence Time (s)".into(), format!("{}", p.t2_seconds)],
        vec!["SWAP Gate Error".into(), format!("{}", p.swap_gate_error)],
        vec!["Atom Loss Rate".into(), format!("{}", p.atom_loss_rate)],
        vec!["U3 Gate Error".into(), format!("{}", p.u3_gate_error)],
        vec!["U3 Gate Time (µs)".into(), format!("{}", p.u3_gate_time_us)],
        vec!["CZ Gate Error".into(), format!("{}", p.cz_gate_error)],
        vec!["CZ Gate Time (µs)".into(), format!("{}", p.cz_gate_time_us)],
        vec!["Readout Error".into(), format!("{}", p.readout_error)],
    ];
    (headers, data)
}

/// Table III as printable rows.
pub fn table3_rows(seed: u64) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec!["Acronym", "Qubits", "CZ (transpiled)", "Description"];
    let data = all_benchmarks()
        .iter()
        .map(|b| {
            vec![
                b.name.to_string(),
                b.qubits.to_string(),
                b.circuit(seed).cz_count().to_string(),
                b.description.to_string(),
            ]
        })
        .collect();
    (headers, data)
}

/// Headline aggregate numbers (abstract / Section IV claims).
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Mean CZ reduction vs GRAPHINE (paper: 39%).
    pub cz_reduction_vs_graphine: f64,
    /// Mean CZ reduction vs ELDI (paper: 25%).
    pub cz_reduction_vs_eldi: f64,
    /// Mean relative success improvement vs GRAPHINE (paper: 46%).
    pub success_gain_vs_graphine: f64,
    /// Mean relative success improvement vs ELDI (paper: 28%).
    pub success_gain_vs_eldi: f64,
    /// Mean trap changes per CZ gate (paper: ~1.3%).
    pub trap_change_rate: f64,
}

/// Compute the headline aggregates from comparison rows.
pub fn summarize(rows: &[ComparisonRow]) -> Summary {
    let n = rows.len() as f64;
    let mean = |f: &dyn Fn(&ComparisonRow) -> f64| rows.iter().map(f).sum::<f64>() / n;
    Summary {
        cz_reduction_vs_graphine: mean(&|r| {
            1.0 - r.parallax.cz as f64 / r.graphine.cz.max(1) as f64
        }),
        cz_reduction_vs_eldi: mean(&|r| 1.0 - r.parallax.cz as f64 / r.eldi.cz.max(1) as f64),
        success_gain_vs_graphine: mean(&|r| relative_gain(r.parallax.success, r.graphine.success)),
        success_gain_vs_eldi: mean(&|r| relative_gain(r.parallax.success, r.eldi.success)),
        trap_change_rate: mean(&|r| r.parallax.trap_changes as f64 / r.parallax.cz.max(1) as f64),
    }
}

/// Bounded relative improvement: how much closer to ideal success Parallax
/// lands, capped so near-zero baselines don't produce absurd ratios.
fn relative_gain(ours: f64, theirs: f64) -> f64 {
    if theirs <= 1e-30 {
        return 1.0;
    }
    ((ours - theirs) / theirs).clamp(-1.0, 10.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_comparison_shapes_hold() {
        let benches = selected_benchmarks(true);
        assert_eq!(benches.len(), 6);
        let rows = run_comparison(&benches, MachineSpec::quera_aquila_256(), 1);
        for r in &rows {
            // Zero SWAPs: Parallax CZ never exceeds either baseline's.
            assert!(r.parallax.cz <= r.eldi.cz, "{}: {} > {}", r.name, r.parallax.cz, r.eldi.cz);
            assert!(r.parallax.cz <= r.graphine.cz, "{}", r.name);
            assert_eq!(r.parallax.swaps, 0);
            // Success ordering follows gate counts.
            assert!(r.parallax.success > 0.0);
        }
    }

    #[test]
    fn render_table_aligns() {
        let t = render_table(&["A", "Long"], &[vec!["1".into(), "2".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains('A'));
        assert!(lines[2].ends_with('2'));
    }

    #[test]
    fn table2_and_3_render() {
        let (h2, d2) = table2_rows();
        assert_eq!(h2.len(), 2);
        assert_eq!(d2.len(), 12);
        let (h3, d3) = table3_rows(0);
        assert_eq!(h3.len(), 4);
        assert_eq!(d3.len(), 18);
    }

    #[test]
    fn summary_of_synthetic_rows() {
        let m = |cz: usize, success: f64| CompiledMetrics {
            cz,
            u3: 0,
            swaps: 0,
            runtime_us: 1.0,
            success,
            layers: 1,
            trap_changes: 0,
        };
        let rows = vec![ComparisonRow {
            name: "X".into(),
            qubits: 2,
            graphine: m(200, 0.2),
            eldi: m(100, 0.5),
            parallax: m(80, 0.6),
        }];
        let s = summarize(&rows);
        assert!((s.cz_reduction_vs_graphine - 0.6).abs() < 1e-12);
        assert!((s.cz_reduction_vs_eldi - 0.2).abs() < 1e-12);
        assert!((s.success_gain_vs_eldi - 0.2).abs() < 1e-12);
    }
}
