//! Fleet-scale cold-compile measurement (`experiments scale` and the
//! `scale/*` benches).
//!
//! The annealed placement objective is O(q²) per full evaluation, so a
//! paper-fidelity anneal at 4,096 qubits would dwarf every other stage and
//! measure nothing the data-layout work touches. Scale mode therefore hands
//! the compiler a deterministic jittered-grid layout and measures the
//! **post-placement cold pipeline** — interaction-graph build,
//! discretization, AOD selection, and Algorithm 1 scheduling — which is
//! exactly where the SoA/CSR layouts live. Every sample re-jitters the
//! layout with a fresh seed, so the discretized array differs, every
//! layout/plan-cache key misses, and each sample pays the full cold path.

use parallax_circuit::{Circuit, CircuitBuilder};
use parallax_core::{CompilationResult, CompilerConfig, ParallaxCompiler};
use parallax_graphine::{GraphineLayout, PlacementConfig};
use parallax_hardware::MachineSpec;

/// The machine arms scale mode exercises: the paper's largest machine plus
/// the two synthetic fleet-scale grids, each near capacity.
pub fn scale_arms() -> Vec<(MachineSpec, usize)> {
    vec![
        (MachineSpec::atom_1225(), 1000),
        (MachineSpec::synthetic_grid(46), 2000),
        (MachineSpec::synthetic_grid(64), 4000),
    ]
}

/// Deterministic ring-plus-chords circuit on `qubits`: an H layer, the
/// TFIM-style nearest-neighbour CZ ring, periodic vertical chords one grid
/// stride away, a few cross-machine chords that force long AOD moves, and
/// a closing H layer. The structure is fixed per qubit count so arms stay
/// comparable; cold-path cache misses come from the layout jitter instead.
pub fn scale_circuit(qubits: usize) -> Circuit {
    assert!(qubits >= 4, "scale circuits start at 4 qubits");
    let n = qubits as u32;
    let stride = (qubits as f64).sqrt().ceil() as u32;
    let mut b = CircuitBuilder::new(qubits);
    for q in 0..n {
        b.h(q);
    }
    for q in (0..n - 1).step_by(2) {
        b.cz(q, q + 1);
    }
    for q in (1..n - 1).step_by(2) {
        b.cz(q, q + 1);
    }
    for q in (0..n.saturating_sub(stride)).step_by(7) {
        b.cz(q, q + stride);
    }
    for q in (0..n / 2).step_by(97) {
        b.cz(q, q + n / 2);
    }
    for q in 0..n {
        b.h(q);
    }
    b.build()
}

/// Deterministic jittered-grid layout in `[0,1]²`: qubit `i` sits near
/// grid cell `(i % side, i / side)` with a ±0.45-cell xorshift jitter
/// keyed by `seed`. The jitter never flips a cell on its own, but
/// discretization renormalizes the bounding box, so per-seed rounding
/// flips make each seed's snapped array (and therefore every
/// layout/plan-cache fingerprint) distinct.
pub fn scale_layout(qubits: usize, seed: u64) -> GraphineLayout {
    let side = (qubits as f64).sqrt().ceil().max(2.0) as usize;
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0x2545_f491_4f6c_dd1d);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let scale = 1.0 / (side - 1).max(1) as f64;
    let positions = (0..qubits)
        .map(|i| {
            let (gx, gy) = ((i % side) as f64, (i / side) as f64);
            let jx = (next() - 0.5) * 0.9;
            let jy = (next() - 0.5) * 0.9;
            ((gx + jx) * scale, (gy + jy) * scale)
        })
        .collect();
    GraphineLayout {
        positions,
        interaction_radius: 1.3 * scale,
        energy: 0.0,
        anneal_evals: 0,
        anneal_allocs: 0,
    }
}

/// One cold compile of the scale circuit on `machine`: wall milliseconds
/// plus the result (for shape sanity and byte-level comparisons).
pub fn scale_cold_compile(
    machine: MachineSpec,
    qubits: usize,
    seed: u64,
) -> (f64, CompilationResult) {
    let circuit = scale_circuit(qubits);
    let layout = scale_layout(qubits, seed);
    let config =
        CompilerConfig { seed, placement: PlacementConfig::quick(seed), ..Default::default() };
    let compiler = ParallaxCompiler::new(machine, config);
    let t0 = std::time::Instant::now();
    let result = compiler.compile_with_layout(&circuit, &layout);
    (t0.elapsed().as_secs_f64() * 1e3, result)
}

/// `experiments scale` rows: per machine arm, `samples` cold compiles at
/// distinct seeds. Wall-clock columns, so this mode stays outside `all`
/// (like `sweep-restarts`); the shape columns are seed-stable.
pub fn scale_rows(samples: usize, seed: u64) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers =
        vec!["Machine", "Sites", "Qubits", "Samples", "Mean (ms)", "Min (ms)", "Layers", "Moves"];
    let mut data = Vec::new();
    for (machine, qubits) in scale_arms() {
        let mut times = Vec::with_capacity(samples);
        let (mut layers, mut moves) = (0usize, 0usize);
        for s in 0..samples as u64 {
            let (ms, result) =
                scale_cold_compile(machine, qubits, seed ^ s.wrapping_mul(0x9e37_79b9));
            times.push(ms);
            layers = result.schedule.layers.len();
            moves = result.schedule.stats.moves_planned;
        }
        let mean = times.iter().sum::<f64>() / times.len().max(1) as f64;
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        data.push(vec![
            machine.name.to_string(),
            machine.num_sites().to_string(),
            qubits.to_string(),
            samples.to_string(),
            format!("{mean:.1}"),
            format!("{min:.1}"),
            layers.to_string(),
            moves.to_string(),
        ]);
    }
    (headers, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_circuit_is_deterministic_and_shaped() {
        let a = scale_circuit(100);
        let b = scale_circuit(100);
        assert_eq!(a, b);
        assert_eq!(a.num_qubits(), 100);
        // Two H layers plus the CZ ring at minimum.
        assert!(a.len() > 250, "len {}", a.len());
        assert!(a.cz_count() >= 99);
    }

    #[test]
    fn scale_layout_jitters_by_seed_but_stays_in_unit_square() {
        let a = scale_layout(200, 1);
        let b = scale_layout(200, 1);
        let c = scale_layout(200, 2);
        assert_eq!(a, b, "same seed, same layout");
        assert_ne!(a.positions, c.positions, "seed must move positions");
        for &(x, y) in &a.positions {
            assert!((-0.1..=1.1).contains(&x) && (-0.1..=1.1).contains(&y), "({x},{y})");
        }
    }

    #[test]
    fn small_scale_compile_works_cold() {
        // A miniature arm (the real arms are release-bench material): the
        // cold pipeline must produce a valid schedule on a synthetic grid.
        let (ms, result) = scale_cold_compile(MachineSpec::synthetic_grid(8), 36, 3);
        assert!(ms >= 0.0);
        assert!(!result.schedule.layers.is_empty());
        assert_eq!(result.cz_count(), scale_circuit(36).cz_count());
    }

    #[test]
    fn distinct_seeds_discretize_to_distinct_arrays() {
        // The cold-path premise: per-seed jitter must change the snapped
        // array, otherwise later samples would warm-start from the plan
        // cache and the "cold mean" would be a lie.
        let a = scale_cold_compile(MachineSpec::synthetic_grid(8), 36, 10).1;
        let b = scale_cold_compile(MachineSpec::synthetic_grid(8), 36, 11).1;
        assert_ne!(a.home_positions, b.home_positions, "jitter failed to move any atom");
    }
}
