//! Bench-trajectory comparison: diff two directories of `BENCH_*.json`
//! dumps (written by the vendored criterion harness under
//! `PARALLAX_BENCH_JSON_DIR`) and flag mean-time regressions.
//!
//! This is what tracks bench trajectories across commits: CI dumps a
//! fresh snapshot on every run, uploads it as an artifact, and
//! `bench-compare` gates it against the previous successful run's
//! artifact at the default 15% tolerance (falling back to the committed
//! `benches/baseline/` snapshot, loosely, when no artifact exists);
//! locally, `bench-compare old/ new/` gives a quick before/after verdict
//! for a perf change. A noise floor exempts micro-benches from gating —
//! see [`CompareReport::regressions_with_floor`].

use std::path::Path;

/// One benchmark's summary statistics, as dumped by the harness.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark id (e.g. `table4/compile_runtime/QEC/QuEra-256`).
    pub id: String,
    /// Timed samples behind the statistics.
    pub samples: u64,
    /// Fastest sample, ns.
    pub min_ns: f64,
    /// Mean sample, ns — the compared quantity.
    pub mean_ns: f64,
    /// Sample standard deviation, ns.
    pub stddev_ns: f64,
    /// Slowest sample, ns.
    pub max_ns: f64,
}

/// Parse one `BENCH_*.json` body (a single flat object with one string
/// field and five numeric fields; `null` means the stat was not finite).
pub fn parse_record(text: &str) -> Result<BenchRecord, String> {
    let mut id = None;
    let (mut samples, mut min_ns, mut mean_ns, mut stddev_ns, mut max_ns) =
        (None, None, None, None, None);
    let mut chars = text.trim().char_indices().peekable();
    let err = |m: &str| format!("malformed bench json ({m}): {text}");
    match chars.next() {
        Some((_, '{')) => {}
        _ => return Err(err("missing '{'")),
    }
    loop {
        // Skip whitespace and separators up to the next key, '}' ends.
        let c = loop {
            match chars.next() {
                None => return Err(err("unterminated object")),
                Some((_, c)) if c.is_whitespace() || c == ',' => continue,
                Some((_, c)) => break c,
            }
        };
        if c == '}' {
            break;
        }
        if c != '"' {
            return Err(err("expected a key"));
        }
        let mut key = String::new();
        loop {
            match chars.next() {
                None => return Err(err("unterminated key")),
                Some((_, '"')) => break,
                Some((_, '\\')) => match chars.next() {
                    Some((_, c)) => key.push(c),
                    None => return Err(err("truncated escape")),
                },
                Some((_, c)) => key.push(c),
            }
        }
        match chars.next() {
            Some((_, ':')) => {}
            _ => return Err(err("expected ':'")),
        }
        // Value: string (id only), number, or null.
        match chars.peek() {
            Some(&(_, '"')) => {
                chars.next();
                let mut value = String::new();
                loop {
                    match chars.next() {
                        None => return Err(err("unterminated string")),
                        Some((_, '"')) => break,
                        Some((_, '\\')) => match chars.next() {
                            Some((_, 'n')) => value.push('\n'),
                            Some((_, 'u')) => {
                                let hex: String =
                                    (0..4).filter_map(|_| chars.next().map(|(_, c)| c)).collect();
                                let cp = u32::from_str_radix(&hex, 16)
                                    .ok()
                                    .and_then(char::from_u32)
                                    .ok_or_else(|| err("bad \\u escape"))?;
                                value.push(cp);
                            }
                            Some((_, c)) => value.push(c),
                            None => return Err(err("truncated escape")),
                        },
                        Some((_, c)) => value.push(c),
                    }
                }
                if key == "id" {
                    id = Some(value);
                }
            }
            Some(_) => {
                let mut raw = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if c == ',' || c == '}' || c.is_whitespace() {
                        break;
                    }
                    raw.push(c);
                    chars.next();
                }
                let number = if raw == "null" {
                    f64::NAN
                } else {
                    raw.parse::<f64>().map_err(|_| err("bad number"))?
                };
                match key.as_str() {
                    "samples" => samples = Some(number as u64),
                    "min_ns" => min_ns = Some(number),
                    "mean_ns" => mean_ns = Some(number),
                    "stddev_ns" => stddev_ns = Some(number),
                    "max_ns" => max_ns = Some(number),
                    _ => {} // forward-compatible: ignore unknown fields
                }
            }
            None => return Err(err("missing value")),
        }
    }
    Ok(BenchRecord {
        id: id.ok_or_else(|| err("missing id"))?,
        samples: samples.ok_or_else(|| err("missing samples"))?,
        min_ns: min_ns.ok_or_else(|| err("missing min_ns"))?,
        mean_ns: mean_ns.ok_or_else(|| err("missing mean_ns"))?,
        stddev_ns: stddev_ns.ok_or_else(|| err("missing stddev_ns"))?,
        max_ns: max_ns.ok_or_else(|| err("missing max_ns"))?,
    })
}

/// Load every `BENCH_*.json` in `dir`, sorted by id.
pub fn load_dir(dir: &Path) -> Result<Vec<BenchRecord>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut records = Vec::new();
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let body = std::fs::read_to_string(&path).map_err(|e| format!("{name}: {e}"))?;
        records.push(parse_record(&body).map_err(|e| format!("{name}: {e}"))?);
    }
    records.sort_by(|a, b| a.id.cmp(&b.id));
    Ok(records)
}

/// Mean-time change of one benchmark present in both snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct MeanDelta {
    /// Benchmark id.
    pub id: String,
    /// Baseline mean, ns.
    pub base_mean_ns: f64,
    /// Candidate mean, ns.
    pub new_mean_ns: f64,
    /// Relative change: `new/base - 1` (+0.20 = 20% slower).
    pub ratio: f64,
}

/// Outcome of diffing two snapshots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompareReport {
    /// Benchmarks present in both snapshots, sorted by id.
    pub deltas: Vec<MeanDelta>,
    /// Ids only in the baseline (bench disappeared — warn, don't fail).
    pub missing: Vec<String>,
    /// Ids present in both snapshots whose means cannot be compared (a
    /// non-finite candidate mean — the harness dumps `null` for those —
    /// or a nonpositive baseline mean). Warned distinctly from `missing`.
    pub incomparable: Vec<String>,
    /// Ids only in the candidate (new coverage).
    pub added: Vec<String>,
}

impl CompareReport {
    /// Deltas whose mean regressed beyond `tolerance` (e.g. `0.15`).
    pub fn regressions(&self, tolerance: f64) -> Vec<&MeanDelta> {
        self.regressions_with_floor(tolerance, 0.0)
    }

    /// Like [`Self::regressions`], but benches whose *baseline* mean is
    /// under `min_mean_ns` are exempt from the gate. Micro-benches in the
    /// few-µs range have run-to-run noise far beyond any sane tolerance
    /// on shared CI runners (the committed snapshots show stddev up to
    /// ~100% of the mean there), so gating them turns the gate into a
    /// coin flip; they stay in the report with a distinct verdict.
    pub fn regressions_with_floor(&self, tolerance: f64, min_mean_ns: f64) -> Vec<&MeanDelta> {
        self.deltas
            .iter()
            .filter(|d| d.base_mean_ns >= min_mean_ns && d.ratio > tolerance)
            .collect()
    }
}

/// Diff `base` against `new` by benchmark id.
pub fn compare(base: &[BenchRecord], new: &[BenchRecord]) -> CompareReport {
    let mut report = CompareReport::default();
    for b in base {
        match new.iter().find(|n| n.id == b.id) {
            Some(n) if b.mean_ns > 0.0 && n.mean_ns.is_finite() => {
                report.deltas.push(MeanDelta {
                    id: b.id.clone(),
                    base_mean_ns: b.mean_ns,
                    new_mean_ns: n.mean_ns,
                    ratio: n.mean_ns / b.mean_ns - 1.0,
                });
            }
            Some(_) => report.incomparable.push(b.id.clone()),
            None => report.missing.push(b.id.clone()),
        }
    }
    for n in new {
        if !base.iter().any(|b| b.id == n.id) {
            report.added.push(n.id.clone());
        }
    }
    report.deltas.sort_by(|a, b| a.id.cmp(&b.id));
    report
}

/// Render the report as an aligned table with a per-row verdict: `ok`,
/// `REGRESSED` (over `tolerance` and gated), or `noisy` (over tolerance
/// but with a baseline mean under `min_mean_ns`, exempt from the gate).
pub fn render_report(report: &CompareReport, tolerance: f64, min_mean_ns: f64) -> String {
    let fmt_ms = |ns: f64| format!("{:.3}", ns / 1e6);
    let rows: Vec<Vec<String>> = report
        .deltas
        .iter()
        .map(|d| {
            let verdict = if d.ratio <= tolerance {
                "ok"
            } else if d.base_mean_ns < min_mean_ns {
                "noisy"
            } else {
                "REGRESSED"
            };
            vec![
                d.id.clone(),
                fmt_ms(d.base_mean_ns),
                fmt_ms(d.new_mean_ns),
                format!("{:+.1}%", 100.0 * d.ratio),
                verdict.to_string(),
            ]
        })
        .collect();
    let mut out =
        crate::render_table(&["Bench", "Base (ms)", "New (ms)", "Δ mean", "Verdict"], &rows);
    for id in &report.missing {
        out.push_str(&format!("warning: '{id}' missing from the candidate snapshot\n"));
    }
    for id in &report.incomparable {
        out.push_str(&format!(
            "warning: '{id}' present but not comparable (non-finite candidate mean \
             or nonpositive baseline mean) — excluded from the gate\n"
        ));
    }
    for id in &report.added {
        out.push_str(&format!("note: '{id}' is new (no baseline)\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: &str, mean: f64) -> BenchRecord {
        BenchRecord {
            id: id.into(),
            samples: 3,
            min_ns: mean * 0.9,
            mean_ns: mean,
            stddev_ns: 1.0,
            max_ns: mean * 1.1,
        }
    }

    #[test]
    fn parses_a_real_dump_line() {
        let body = "{\"id\":\"table4/compile_runtime/QEC/QuEra-256\",\"samples\":10,\
                    \"min_ns\":3852761.0,\"mean_ns\":4063555.8,\"stddev_ns\":172582.1,\
                    \"max_ns\":4394037.0}";
        let r = parse_record(body).unwrap();
        assert_eq!(r.id, "table4/compile_runtime/QEC/QuEra-256");
        assert_eq!(r.samples, 10);
        assert_eq!(r.mean_ns, 4063555.8);
        assert_eq!(r.max_ns, 4394037.0);
    }

    #[test]
    fn parses_escapes_and_null_stats() {
        let body = "{\"id\":\"fig9/TFIM \\\"q128\\\"\",\"samples\":1,\"min_ns\":1.0,\
                    \"mean_ns\":1.0,\"stddev_ns\":null,\"max_ns\":1.0}";
        let r = parse_record(body).unwrap();
        assert_eq!(r.id, "fig9/TFIM \"q128\"");
        assert!(r.stddev_ns.is_nan());
    }

    #[test]
    fn rejects_malformed_bodies() {
        for bad in ["", "{", "{\"samples\":1}", "{\"id\":\"x\",\"samples\":zz}", "[1,2]"] {
            assert!(parse_record(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn compare_flags_only_regressions_beyond_tolerance() {
        let base = vec![record("a", 100.0), record("b", 100.0), record("c", 100.0)];
        let new = vec![record("a", 110.0), record("b", 130.0), record("c", 50.0)];
        let report = compare(&base, &new);
        assert_eq!(report.deltas.len(), 3);
        let regressed = report.regressions(0.15);
        assert_eq!(regressed.len(), 1);
        assert_eq!(regressed[0].id, "b");
        assert!((regressed[0].ratio - 0.3).abs() < 1e-12);
        // Tighter tolerance also catches "a".
        assert_eq!(report.regressions(0.05).len(), 2);
    }

    #[test]
    fn noise_floor_exempts_micro_benches_from_the_gate() {
        // "fast" is a 5µs micro-bench that doubled (noise); "slow" is a
        // 100ms bench that genuinely regressed. With a 1ms floor only
        // "slow" gates; the report still shows "fast" as noisy.
        let base = vec![record("fast", 5_000.0), record("slow", 100_000_000.0)];
        let new = vec![record("fast", 10_000.0), record("slow", 130_000_000.0)];
        let report = compare(&base, &new);
        assert_eq!(report.regressions(0.15).len(), 2);
        let gated = report.regressions_with_floor(0.15, 1_000_000.0);
        assert_eq!(gated.len(), 1);
        assert_eq!(gated[0].id, "slow");
        let text = render_report(&report, 0.15, 1_000_000.0);
        assert!(text.contains("noisy"), "{text}");
        assert!(text.contains("REGRESSED"), "{text}");
    }

    #[test]
    fn compare_reports_missing_incomparable_and_added() {
        let mut broken = record("broken", 10.0);
        let base = vec![record("gone", 10.0), record("stays", 10.0), broken.clone()];
        broken.mean_ns = f64::NAN; // what a "mean_ns":null dump parses to
        let new = vec![record("stays", 10.0), record("fresh", 10.0), broken];
        let report = compare(&base, &new);
        assert_eq!(report.missing, vec!["gone".to_string()]);
        assert_eq!(report.incomparable, vec!["broken".to_string()]);
        assert_eq!(report.added, vec!["fresh".to_string()]);
        assert_eq!(report.deltas.len(), 1);
        let text = render_report(&report, 0.15, 0.0);
        assert!(text.contains("'gone' missing"), "{text}");
        assert!(text.contains("'broken' present but not comparable"), "{text}");
    }

    #[test]
    fn render_marks_verdicts() {
        let report = compare(&[record("x", 100.0)], &[record("x", 200.0)]);
        let table = render_report(&report, 0.15, 0.0);
        assert!(table.contains("REGRESSED"), "{table}");
        assert!(table.contains("+100.0%"), "{table}");
    }

    #[test]
    fn load_dir_round_trips_dump_files() {
        let dir = std::env::temp_dir().join(format!("parallax-cmp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("BENCH_one.json"),
            "{\"id\":\"one\",\"samples\":2,\"min_ns\":1.0,\"mean_ns\":2.0,\
             \"stddev_ns\":0.5,\"max_ns\":3.0}",
        )
        .unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let records = load_dir(&dir).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].id, "one");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
