//! Fig. 13 bench: AOD row/column count ablation {1, 5, 10, 20, 40}.
//! Prints the ablation rows once and measures compilation per AOD count.

use criterion::{criterion_group, criterion_main, Criterion};
use parallax_bench::{fig13_rows, render_table, selected_benchmarks};
use parallax_core::{CompilerConfig, ParallaxCompiler};
use parallax_graphine::{GraphineLayout, PlacementConfig};
use parallax_hardware::MachineSpec;

fn bench_fig13(c: &mut Criterion) {
    let (h, d) = fig13_rows(&selected_benchmarks(true), 0);
    eprintln!("\n== Fig. 13 (quick subset): AOD count ablation ==\n{}", render_table(&h, &d));

    let bench = parallax_workloads::benchmark("SECA").unwrap();
    let circuit = bench.circuit(0);
    let placement = PlacementConfig::quick(0);
    let layout = GraphineLayout::generate(&circuit, &placement);

    let mut group = c.benchmark_group("fig13");
    group.sample_size(10);
    for aod in [1usize, 5, 10, 20, 40] {
        let machine = MachineSpec::atom_1225().with_aod_dim(aod);
        let cfg = CompilerConfig { seed: 0, placement: placement.clone(), ..Default::default() };
        group.bench_function(format!("schedule/SECA/aod{aod}"), |b| {
            b.iter(|| {
                ParallaxCompiler::new(machine, cfg.clone()).compile_with_layout(&circuit, &layout)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
