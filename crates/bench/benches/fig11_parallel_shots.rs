//! Fig. 11 bench: total execution time vs logical-shot parallelization on
//! the 1,225-qubit machine. Prints the series once and measures the
//! replication-planning step.

use criterion::{criterion_group, criterion_main, Criterion};
use parallax_bench::{fig11_rows, render_table};
use parallax_core::{replication_plan, CompilerConfig, ParallaxCompiler};
use parallax_hardware::MachineSpec;

fn bench_fig11(c: &mut Criterion) {
    let (h, d) = fig11_rows(0, true);
    eprintln!(
        "\n== Fig. 11 (quick subset): total execution time vs parallelization ==\n{}",
        render_table(&h, &d)
    );

    let machine = MachineSpec::atom_1225();
    let bench = parallax_workloads::benchmark("ADV").unwrap();
    let circuit = bench.circuit(0);
    let result = ParallaxCompiler::new(machine, CompilerConfig::quick(0)).compile(&circuit);

    let mut group = c.benchmark_group("fig11");
    group.bench_function("replication_plan/ADV", |b| {
        b.iter(|| replication_plan(&result, &machine));
    });
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
