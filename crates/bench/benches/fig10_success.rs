//! Fig. 10 bench: probability of success across compilers. Measures the
//! fidelity-model evaluation and prints the figure's rows once.

use criterion::{criterion_group, criterion_main, Criterion};
use parallax_bench::{fig10_rows, render_table, run_comparison, selected_benchmarks};
use parallax_core::{CompilerConfig, ParallaxCompiler};
use parallax_hardware::MachineSpec;
use parallax_sim::{parallax_fidelity_inputs, success_probability};

fn bench_fig10(c: &mut Criterion) {
    let machine = MachineSpec::quera_aquila_256();
    let rows = run_comparison(&selected_benchmarks(true), machine, 0);
    let (h, d) = fig10_rows(&rows);
    eprintln!("\n== Fig. 10 (quick subset): probability of success ==\n{}", render_table(&h, &d));

    let bench = parallax_workloads::benchmark("GCM").unwrap();
    let circuit = bench.circuit(0);
    let result = ParallaxCompiler::new(machine, CompilerConfig::quick(0)).compile(&circuit);

    let mut group = c.benchmark_group("fig10");
    group.bench_function("fidelity_model/GCM", |b| {
        b.iter(|| {
            let inputs = parallax_fidelity_inputs(&result);
            success_probability(&inputs, &machine.params)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
