//! Fig. 9 bench: CZ gate counts of Parallax vs ELDI vs GRAPHINE on the
//! 256-qubit machine. The Criterion measurement times one full three-way
//! comparison; the rows of the figure are printed once at startup.

use criterion::{criterion_group, criterion_main, Criterion};
use parallax_bench::{
    compare_benchmark, fig9_rows, render_table, run_comparison, selected_benchmarks,
};
use parallax_hardware::MachineSpec;

fn bench_fig9(c: &mut Criterion) {
    let machine = MachineSpec::quera_aquila_256();

    // Regenerate and print the figure's data once.
    let rows = run_comparison(&selected_benchmarks(true), machine, 0);
    let (h, d) = fig9_rows(&rows);
    eprintln!("\n== Fig. 9 (quick subset): CZ gate counts ==\n{}", render_table(&h, &d));

    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    for name in ["ADD", "QAOA", "QFT"] {
        let bench = parallax_workloads::benchmark(name).unwrap();
        group.bench_function(format!("compare/{name}"), |b| {
            b.iter(|| compare_benchmark(&bench, machine, 0));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
