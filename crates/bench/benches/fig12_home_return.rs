//! Fig. 12 bench: home-return ablation. Prints the ablation rows once and
//! measures scheduling with and without the home-return pass.

use criterion::{criterion_group, criterion_main, Criterion};
use parallax_bench::{fig12_rows, render_table, selected_benchmarks};
use parallax_core::{CompilerConfig, ParallaxCompiler};
use parallax_graphine::{GraphineLayout, PlacementConfig};
use parallax_hardware::MachineSpec;

fn bench_fig12(c: &mut Criterion) {
    let (h, d) = fig12_rows(&selected_benchmarks(true), 0);
    eprintln!("\n== Fig. 12 (quick subset): home-return ablation ==\n{}", render_table(&h, &d));

    let machine = MachineSpec::atom_1225();
    let bench = parallax_workloads::benchmark("QAOA").unwrap();
    let circuit = bench.circuit(0);
    let placement = PlacementConfig::quick(0);
    let layout = GraphineLayout::generate(&circuit, &placement);

    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    for (label, cfg) in [
        (
            "return_home",
            CompilerConfig { seed: 0, placement: placement.clone(), ..Default::default() },
        ),
        (
            "stay_out",
            CompilerConfig { seed: 0, placement: placement.clone(), ..Default::default() }
                .without_home_return(),
        ),
    ] {
        group.bench_function(format!("schedule/QAOA/{label}"), |b| {
            b.iter(|| {
                ParallaxCompiler::new(machine, cfg.clone()).compile_with_layout(&circuit, &layout)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
