//! Fabric throughput: jobs/sec through `parallax-route` at one shard
//! versus two, on a mixed cold/warm Table III workload.
//!
//! The machine this runs on has a single worker per shard, so the win
//! being measured is **not** compute parallelism — it is the mechanism
//! the fabric exists for: consistent hashing splits the keyspace, so N
//! shards hold N result-cache budgets. The working set here (12 Table
//! III jobs) is sized well past one shard's byte budget: a single
//! shard's LRU thrashes (scan passes keep recompiling), while two shards
//! each hold their half of the keyspace hot and serve repeats from
//! memory. Each iteration also submits one genuinely cold job (fresh
//! seed) so both configurations keep paying real compile costs.
//!
//! Eight closed-loop clients hammer the router concurrently — the same
//! concurrency level the fabric e2e test pins for correctness.

use criterion::{criterion_group, criterion_main, Criterion};
use parallax_service::{
    compile_payload, start, start_router, RouterConfig, ServerConfig, ServerHandle, ServiceClient,
    SubmitRequest, SubmitSource,
};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};

/// Table III workloads in the working set (seeds 0..3 of each).
const WORKLOADS: [&str; 4] = ["ADD", "MLT", "QAOA", "HLF"];
const CLIENTS: usize = 8;
const PASSES_PER_ITER: usize = 2;

fn submit_for(workload: &str, seed: u64) -> SubmitRequest {
    SubmitRequest {
        source: SubmitSource::Workload(workload.to_string()),
        seed,
        quick: true,
        ..Default::default()
    }
}

fn working_set() -> Vec<SubmitRequest> {
    WORKLOADS.iter().flat_map(|w| (0..3u64).map(move |s| submit_for(w, s))).collect()
}

/// Sum of the working set's payload bytes — what a cache must hold to
/// serve every repeat from memory.
fn working_set_bytes(jobs: &[SubmitRequest]) -> usize {
    jobs.iter()
        .map(|req| {
            let compiler = req.build_compiler().expect("valid machine");
            let circuit = req.resolve_circuit().expect("valid workload");
            compile_payload(&compiler.compile(&circuit)).encode().len()
        })
        .sum()
}

/// An in-process fabric: `shards` servers behind one router, every cache
/// capped at the same per-shard byte budget.
struct Fabric {
    _shards: Vec<ServerHandle>,
    router: Option<parallax_service::RouterHandle>,
    addr: SocketAddr,
}

impl Fabric {
    fn start(shards: usize, cache_budget: usize) -> Fabric {
        let shards: Vec<ServerHandle> = (0..shards)
            .map(|_| {
                start(ServerConfig {
                    workers: 1,
                    queue_capacity: 64,
                    cache_capacity: cache_budget,
                    ..ServerConfig::default()
                })
                .expect("start shard")
            })
            .collect();
        let router = start_router(RouterConfig {
            shards: shards.iter().map(|s| s.addr().to_string()).collect(),
            ..RouterConfig::default()
        })
        .expect("start router");
        let addr = router.addr();
        Fabric { _shards: shards, router: Some(router), addr }
    }
}

impl Drop for Fabric {
    fn drop(&mut self) {
        // Router first (it holds connections into the shards), then the
        // shards via their own Drop.
        self.router.take();
    }
}

/// One closed-loop iteration: 8 clients, each submitting one cold job
/// (fresh seed) plus `PASSES_PER_ITER` scans over the shared working
/// set, phase-offset per client. Returns nothing; panics on any
/// incorrect response so the bench cannot silently measure errors.
fn drive(addr: SocketAddr, jobs: &[SubmitRequest], cold_seed: &AtomicU64) {
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let jobs = &*jobs;
            scope.spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connect");
                if c == 0 {
                    // One genuinely cold job per iteration keeps the mix
                    // honest without letting cold compiles (which cost
                    // the same at any shard count) swamp the signal.
                    let seed = cold_seed.fetch_add(1, Ordering::Relaxed);
                    client.submit(submit_for("ADD", 1_000_000 + seed)).expect("cold submit");
                }
                for pass in 0..PASSES_PER_ITER {
                    for i in 0..jobs.len() {
                        let req = jobs[(i + c + pass) % jobs.len()].clone();
                        client.submit(req).expect("scan submit");
                    }
                }
            });
        }
    });
}

fn bench_fabric(c: &mut Criterion) {
    let jobs = working_set();
    // The set is ~180% of one shard's budget: a lone shard thrashes,
    // while two shards (double the aggregate budget) hold the whole set
    // hot with enough headroom that an uneven ring split still fits.
    let budget = working_set_bytes(&jobs) * 5 / 9;
    let cold_seed = AtomicU64::new(0);

    let mut group = c.benchmark_group("fabric");
    group.sample_size(10);
    for shards in [1usize, 2] {
        let fabric = Fabric::start(shards, budget);
        group.bench_function(format!("throughput/shards{shards}"), |b| {
            b.iter(|| drive(fabric.addr, &jobs, &cold_seed))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fabric);
criterion_main!(benches);
