//! Microbenchmarks of the individual compiler stages (not a paper figure;
//! supports the paper's compile-time complexity discussion in Section III).

use criterion::{criterion_group, criterion_main, Criterion};
use parallax_bench::placement_for;
use parallax_circuit::optimize;
use parallax_core::{
    discretize, schedule_gates, select_aod_qubits, CompiledTemplate, CompilerConfig,
    ParallaxCompiler,
};
use parallax_graphine::{GraphineLayout, InteractionGraph, PlacementConfig};
use parallax_hardware::MachineSpec;

fn bench_stages(c: &mut Criterion) {
    let bench = parallax_workloads::benchmark("SQRT").unwrap();
    let raw = bench.raw_circuit(0);
    let circuit = bench.circuit(0);
    let placement = PlacementConfig::quick(0);
    let layout = GraphineLayout::generate(&circuit, &placement);
    let machine = MachineSpec::quera_aquila_256();

    let mut group = c.benchmark_group("stages");
    group.sample_size(10);
    group.bench_function("transpile/SQRT", |b| b.iter(|| optimize(&raw)));
    group.bench_function("interaction_graph/SQRT", |b| {
        b.iter(|| InteractionGraph::from_circuit(&circuit))
    });
    group.bench_function("placement_anneal/SQRT", |b| {
        b.iter(|| GraphineLayout::generate(&circuit, &placement))
    });
    group.bench_function("discretize/SQRT", |b| b.iter(|| discretize(&circuit, &layout, machine)));
    group.bench_function("aod_select/SQRT", |b| {
        b.iter(|| {
            let mut d = discretize(&circuit, &layout, machine);
            select_aod_qubits(&circuit, &mut d, &CompilerConfig::quick(0))
        })
    });

    // The scheduling stage alone (Algorithm 1), at the paper-fidelity
    // placement settings the tables use. The prepared (post-AOD-selection)
    // layout is cloned per iteration because scheduling mutates it; the
    // clone is O(atoms) and noise next to the scheduling loop itself.
    // TFIM-128 is the large-circuit extreme where the scheduler dominates
    // the warm-cache compile; SQRT tracks the mid-size behaviour.
    for (name, machine) in
        [("SQRT", MachineSpec::quera_aquila_256()), ("TFIM", MachineSpec::atom_1225())]
    {
        let bench = parallax_workloads::benchmark(name).unwrap();
        let circuit = bench.circuit(0);
        let placement = placement_for(bench.qubits, 0);
        let config = CompilerConfig { placement, ..CompilerConfig::default() };
        let layout = GraphineLayout::generate(&circuit, &config.placement);
        let mut prepared = discretize(&circuit, &layout, machine);
        let selection = select_aod_qubits(&circuit, &mut prepared, &config);
        group.bench_function(format!("schedule/{name}"), |b| {
            b.iter(|| {
                let mut d = prepared.clone();
                schedule_gates(&circuit, &mut d, &selection, &config)
            })
        });
    }

    // The multi-mover ablation arm, on the workloads where it batches
    // (`experiments multi-mover` posts −14.3% layers on GCM and −21.5% on
    // QV at seed 0). Same prepared-layout clone pattern as above; the
    // entries bound the cost of the corridor index + ALAP ordering against
    // the layers the batching saves (GCM's runtime lands *below* the
    // single-mover compile because 76 fewer layers also mean fewer
    // home-return rounds).
    for name in ["GCM", "QV"] {
        let bench = parallax_workloads::benchmark(name).unwrap();
        let circuit = bench.circuit(0);
        let placement = placement_for(bench.qubits, 0);
        let config = CompilerConfig { placement, ..CompilerConfig::default() }.with_multi_mover();
        let machine = MachineSpec::quera_aquila_256();
        let layout = GraphineLayout::generate(&circuit, &config.placement);
        let mut prepared = discretize(&circuit, &layout, machine);
        let selection = select_aod_qubits(&circuit, &mut prepared, &config);
        group.bench_function(format!("schedule/multi_mover/{name}"), |b| {
            b.iter(|| {
                let mut d = prepared.clone();
                schedule_gates(&circuit, &mut d, &selection, &config)
            })
        });
    }
    group.finish();
}

/// The variational fast path against the path it replaces: rebinding a
/// 100-point QAOA sweep from one [`CompiledTemplate`] versus 100 warm
/// full compiles (layout + plan caches hot — the best the per-point
/// pipeline can do). The per-point speedup recorded in
/// `benches/baseline/README.md` is `warm_compile` divided by a hundredth
/// of `rebind_100`.
fn bench_sweep(c: &mut Criterion) {
    let bench = parallax_workloads::benchmark("QAOA").unwrap();
    let circuit = bench.circuit(0);
    let compiler = ParallaxCompiler::new(MachineSpec::quera_aquila_256(), CompilerConfig::quick(0));
    let template = CompiledTemplate::compile(&compiler, &circuit);
    let slots = template.num_params();
    let points: Vec<Vec<f64>> = (0..100)
        .map(|p| (0..slots).map(|s| ((p * slots + s) % 571) as f64 * 0.011 - 3.1).collect())
        .collect();
    compiler.compile(&circuit); // warm the layout + plan caches

    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.bench_function("rebind_100/QAOA", |b| {
        b.iter(|| {
            points
                .iter()
                .map(|p| template.rebind(p).expect("grid angles bind").len())
                .sum::<usize>()
        })
    });
    group.bench_function("warm_compile/QAOA", |b| b.iter(|| compiler.compile(&circuit)));
    group.finish();
}

criterion_group!(benches, bench_stages, bench_sweep);
criterion_main!(benches);
