//! Microbenchmarks of the individual compiler stages (not a paper figure;
//! supports the paper's compile-time complexity discussion in Section III).

use criterion::{criterion_group, criterion_main, Criterion};
use parallax_circuit::optimize;
use parallax_core::{discretize, select_aod_qubits, CompilerConfig};
use parallax_graphine::{GraphineLayout, InteractionGraph, PlacementConfig};
use parallax_hardware::MachineSpec;

fn bench_stages(c: &mut Criterion) {
    let bench = parallax_workloads::benchmark("SQRT").unwrap();
    let raw = bench.raw_circuit(0);
    let circuit = bench.circuit(0);
    let placement = PlacementConfig::quick(0);
    let layout = GraphineLayout::generate(&circuit, &placement);
    let machine = MachineSpec::quera_aquila_256();

    let mut group = c.benchmark_group("stages");
    group.sample_size(10);
    group.bench_function("transpile/SQRT", |b| b.iter(|| optimize(&raw)));
    group.bench_function("interaction_graph/SQRT", |b| {
        b.iter(|| InteractionGraph::from_circuit(&circuit))
    });
    group.bench_function("placement_anneal/SQRT", |b| {
        b.iter(|| GraphineLayout::generate(&circuit, &placement))
    });
    group.bench_function("discretize/SQRT", |b| b.iter(|| discretize(&circuit, &layout, machine)));
    group.bench_function("aod_select/SQRT", |b| {
        b.iter(|| {
            let mut d = discretize(&circuit, &layout, machine);
            select_aod_qubits(&circuit, &mut d, &CompilerConfig::quick(0))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
