//! Table IV bench: single-shot circuit runtime on the 256- and 1,225-qubit
//! machines. Prints the (quick-subset) table once and measures the
//! compile+runtime-model pipeline per machine.

use criterion::{criterion_group, criterion_main, Criterion};
use parallax_bench::{render_table, selected_benchmarks, table4_rows};
use parallax_core::{CompilerConfig, ParallaxCompiler};
use parallax_hardware::MachineSpec;
use parallax_sim::parallax_runtime_us;

fn bench_table4(c: &mut Criterion) {
    let (h, d) = table4_rows(&selected_benchmarks(true), 0);
    eprintln!("\n== Table IV (quick subset): circuit runtime (µs) ==\n{}", render_table(&h, &d));

    let bench = parallax_workloads::benchmark("QEC").unwrap();
    let circuit = bench.circuit(0);
    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    for machine in [MachineSpec::quera_aquila_256(), MachineSpec::atom_1225()] {
        group.bench_function(format!("compile_runtime/QEC/{}", machine.name), |b| {
            b.iter(|| {
                let r = ParallaxCompiler::new(machine, CompilerConfig::quick(0)).compile(&circuit);
                parallax_runtime_us(&r)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
