//! Table IV bench: single-shot circuit runtime on the 256- and 1,225-qubit
//! machines. Prints the (quick-subset) table once and measures the
//! compile+runtime-model pipeline per machine at the same paper-fidelity
//! placement settings the table itself uses (`placement_for`).
//!
//! This measures the **serving path** — the process-wide layout cache
//! included, so after the cold first iteration the samples track the
//! post-placement pipeline (for repeat/near-miss traffic that *is* the
//! hot path). The anneal itself is tracked separately by the
//! cache-bypassing `compiler_stages` bench (`stages/placement_anneal`),
//! which CI also gates, so a placement regression cannot hide behind a
//! cache hit here.

use criterion::{criterion_group, criterion_main, Criterion};
use parallax_bench::{placement_for, render_table, selected_benchmarks, table4_rows};
use parallax_core::{CompilerConfig, ParallaxCompiler};
use parallax_hardware::MachineSpec;
use parallax_sim::parallax_runtime_us;

fn bench_table4(c: &mut Criterion) {
    let (h, d) = table4_rows(&selected_benchmarks(true), 0);
    eprintln!("\n== Table IV (quick subset): circuit runtime (µs) ==\n{}", render_table(&h, &d));

    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    let bench = parallax_workloads::benchmark("QEC").unwrap();
    let circuit = bench.circuit(0);
    let config =
        CompilerConfig { placement: placement_for(bench.qubits, 0), ..CompilerConfig::default() };
    for machine in [MachineSpec::quera_aquila_256(), MachineSpec::atom_1225()] {
        group.bench_function(format!("compile_runtime/QEC/{}", machine.name), |b| {
            b.iter(|| {
                let r = ParallaxCompiler::new(machine, config.clone()).compile(&circuit);
                parallax_runtime_us(&r)
            });
        });
    }
    // The 128-qubit TFIM is the placement-dominated extreme of Table IV:
    // the anneal is the bulk of its compile, so this entry tracks the
    // GRAPHINE/annealing hot path at scale.
    let tfim = parallax_workloads::benchmark("TFIM").unwrap();
    let tfim_circuit = tfim.circuit(0);
    let tfim_config =
        CompilerConfig { placement: placement_for(tfim.qubits, 0), ..CompilerConfig::default() };
    group.bench_function("compile_runtime/TFIM/Atom-1225", |b| {
        b.iter(|| {
            let machine = MachineSpec::atom_1225();
            let r = ParallaxCompiler::new(machine, tfim_config.clone()).compile(&tfim_circuit);
            parallax_runtime_us(&r)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
