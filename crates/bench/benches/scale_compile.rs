//! `scale/*` benches: the post-placement cold pipeline at fleet scale.
//!
//! Each iteration re-jitters the layout with a fresh seed, so the
//! discretized array (and every layout/plan-cache fingerprint) differs and
//! the compiler pays the genuinely cold path — this is the data-layout
//! trajectory bench for the SoA/CSR core. CI's smoke step runs it at
//! `PARALLAX_BENCH_SAMPLES=1` (one Synthetic-2048 cold compile) under the
//! absolute baseline backstop; the committed baseline is recorded at 10
//! samples.

use criterion::{criterion_group, criterion_main, Criterion};
use parallax_bench::scale::scale_cold_compile;
use parallax_hardware::MachineSpec;

fn bench_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale");
    group.sample_size(10);
    for (machine, qubits) in
        [(MachineSpec::atom_1225(), 1000usize), (MachineSpec::synthetic_grid(46), 2000)]
    {
        let mut seed = 0u64;
        group.bench_function(format!("cold_compile/{}", machine.name), |b| {
            b.iter(|| {
                seed = seed.wrapping_add(1);
                scale_cold_compile(machine, qubits, seed)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
