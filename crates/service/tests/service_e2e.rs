//! End-to-end tests: a real `parallax-serve` instance on an ephemeral
//! port, hammered by concurrent TCP clients, checked for byte-identical
//! results against direct in-process compilation, cache behaviour,
//! backpressure, and lossless drain on shutdown.

use parallax_service::{
    compile_payload, start, ClientError, Json, ServerConfig, ServiceClient, SubmitRequest,
    SubmitSource, SweepRequest,
};
use std::time::Duration;

/// Small Table III workloads that compile in milliseconds with the quick
/// placement preset.
const WORKLOADS: [&str; 4] = ["ADD", "MLT", "QAOA", "HLF"];

fn submit_for(workload: &str, seed: u64) -> SubmitRequest {
    SubmitRequest {
        source: SubmitSource::Workload(workload.to_string()),
        seed,
        quick: true,
        ..Default::default()
    }
}

/// The payload a direct in-process compilation produces for `req` —
/// computed through the same protocol helpers the server uses, so the
/// comparison is exact (byte-identical canonical encodings).
fn direct_payload(req: &SubmitRequest) -> String {
    let compiler = req.build_compiler().expect("valid machine");
    let circuit = req.resolve_circuit().expect("valid workload");
    compile_payload(&compiler.compile(&circuit)).encode()
}

fn test_config() -> ServerConfig {
    ServerConfig { queue_capacity: 64, cache_capacity: 1 << 20, ..Default::default() }
}

#[test]
fn eight_concurrent_clients_get_byte_identical_index_stable_results() {
    let server = start(test_config()).expect("bind");
    let addr = server.addr();

    // Expected payloads, computed in-process before any serving happens.
    let expected: Vec<(SubmitRequest, String)> = WORKLOADS
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let req = submit_for(w, i as u64);
            let payload = direct_payload(&req);
            (req, payload)
        })
        .collect();

    let clients: Vec<_> = (0..8)
        .map(|c| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connect");
                // Two passes so every client also exercises repeat
                // submissions; interleave order per client.
                for pass in 0..2 {
                    for (i, (req, want)) in expected.iter().enumerate() {
                        let idx = (i + c) % expected.len();
                        let (req, want) = if pass == 0 {
                            (req.clone(), want)
                        } else {
                            (expected[idx].0.clone(), &expected[idx].1)
                        };
                        let id = (c * 1000 + pass * 100 + i) as u64;
                        let reply = client
                            .submit(SubmitRequest { id: Some(id), ..req })
                            .expect("submit succeeds");
                        assert_eq!(reply.id, Some(id), "responses must be index-stable");
                        assert_eq!(
                            reply.result.encode(),
                            *want,
                            "served result must be byte-identical to direct compilation"
                        );
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    // 8 clients × 2 passes × 4 workloads = 64 submissions of 4 distinct
    // jobs: the cache must have served the overwhelming majority.
    let mut client = ServiceClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    let hits = stats.get("cache_hits").and_then(Json::as_u64).unwrap();
    let misses = stats.get("cache_misses").and_then(Json::as_u64).unwrap();
    assert_eq!(hits + misses, 64, "every submission is a hit or a miss");
    assert!(hits >= 32, "expected many cache hits, got {hits}");
    let completed = stats.get("completed").and_then(Json::as_u64).unwrap();
    let submitted = stats.get("submitted").and_then(Json::as_u64).unwrap();
    assert_eq!(completed, submitted, "no accepted job may be lost");
    assert!(
        stats.get("latency").and_then(|l| l.get("count")).and_then(Json::as_u64).unwrap() >= 64
    );
}

#[test]
fn repeat_submission_is_a_cache_hit_and_byte_pressure_evicts_lru() {
    // The cache budget is payload *bytes*: size it so the first two
    // payloads fit together but adding the third forces out exactly the
    // least-recently-used entry.
    let a = submit_for("ADD", 1);
    let b = submit_for("ADD", 2);
    let m = submit_for("MLT", 1);
    let (pa, pb, pm) =
        (direct_payload(&a).len(), direct_payload(&b).len(), direct_payload(&m).len());
    let budget = pa + pb + pm - 1;
    let mut server = start(ServerConfig { cache_capacity: budget, ..test_config() }).expect("bind");
    let mut client = ServiceClient::connect(server.addr()).expect("connect");

    let first = client.submit(a.clone()).expect("first ADD");
    assert!(!first.cached);
    let second = client.submit(a.clone()).expect("second ADD");
    assert!(second.cached, "identical resubmission must hit the cache");
    assert_eq!(first.result.encode(), second.result.encode());

    // Same circuit, different seed → different fingerprint → miss.
    let reseeded = client.submit(b).expect("reseeded ADD");
    assert!(!reseeded.cached, "a different seed must not hit");

    // Weight pa+pb; inserting pm overshoots the budget by exactly one
    // byte, so the LRU entry (ADD#1) — and only it — is evicted.
    client.submit(m).expect("MLT");
    let evicted = client.submit(a).expect("ADD after eviction");
    assert!(!evicted.cached, "LRU entry must have been evicted by byte pressure");
    assert_eq!(evicted.result.encode(), first.result.encode(), "recompute matches");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("cache_hits").and_then(Json::as_u64), Some(1));
    let cache = stats.get("cache").expect("cache sub-object");
    let g = |k: &str| cache.get(k).and_then(Json::as_u64).unwrap();
    // MLT's insert evicted ADD#1; re-inserting ADD#1 evicted ADD#2.
    assert_eq!(g("evictions"), 2, "one eviction per over-budget insert");
    assert_eq!(g("capacity"), budget as u64);
    assert!(g("weight") <= g("capacity"), "weight must respect the byte budget");
    server.shutdown();
}

#[test]
fn near_miss_hits_the_layout_cache_and_returns_faster_than_cold() {
    let server = start(test_config()).expect("bind");
    let mut client = ServiceClient::connect(server.addr()).expect("connect");

    // Unique seed → unique placement fingerprint, so this test's layout
    // keys cannot collide with other tests sharing the process-global
    // cache; every cache assertion is delta-based for the same reason.
    // The circuit is many-qubit but gate-sparse (96 qubits, one short CX
    // chain) at full placement fidelity: the anneal's cost grows with
    // qubit count (O(q²) pair terms per probe) while scheduling only
    // sees 100 cheap gates, so the cold compile is >100x the shared
    // post-placement work and the cold-vs-warm timing comparison below
    // holds even when sibling tests saturate the machine's cores.
    let seed = 990_017;
    let mut qasm = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[96];\n");
    for i in 0..96 {
        qasm.push_str(&format!("h q[{i}];\n"));
    }
    for i in 0..4 {
        qasm.push_str(&format!("cx q[{i}],q[{}];\n", i + 1));
    }
    let cold_req = SubmitRequest {
        source: SubmitSource::Qasm(qasm),
        seed,
        quick: false,
        ..Default::default()
    };
    // A near miss: same circuit, same machine, same placement knobs —
    // only the *scheduling* config differs.
    let warm_req = SubmitRequest { return_home: false, ..cold_req.clone() };

    let lc = |s: &Json, k: &str| {
        s.get("layout_cache").and_then(|c| c.get(k)).and_then(Json::as_u64).unwrap()
    };
    let before = client.stats().expect("stats");

    let cold = client.submit(cold_req.clone()).expect("cold compile");
    assert!(!cold.cached);
    let mid = client.stats().expect("stats");
    assert!(lc(&mid, "misses") > lc(&before, "misses"), "cold compile must miss the layout cache");

    let warm = client.submit(warm_req.clone()).expect("near-miss compile");
    assert!(!warm.cached, "a different scheduling config must miss the result cache");
    let after = client.stats().expect("stats");
    assert!(
        lc(&after, "hits") > lc(&mid, "hits"),
        "near miss must hit the layout cache: {} -> {}",
        lc(&mid, "hits"),
        lc(&after, "hits")
    );

    // The scheduling knob really changed the compilation…
    assert_ne!(cold.result.encode(), warm.result.encode());
    // …while skipping the placement anneal, so the near miss answers
    // faster than the cold compile it shares a layout with.
    assert!(
        warm.total_us < cold.total_us,
        "near miss took {} µs, cold compile {} µs",
        warm.total_us,
        cold.total_us
    );

    // Layout-cache hits are bit-identical to fresh anneals: a direct
    // in-process compile (which now takes the hit path) reproduces both
    // served payloads byte for byte.
    assert_eq!(cold.result.encode(), direct_payload(&cold_req));
    assert_eq!(warm.result.encode(), direct_payload(&warm_req));
}

#[test]
fn repeat_traffic_across_server_instances_hits_the_plan_cache() {
    // The layout and move-plan caches are process-wide, the result cache
    // per-server: a fresh server instance receiving traffic another
    // instance already compiled misses its result cache but re-schedules
    // with cached layouts *and* cached move plans. TFIM is movement-heavy
    // (every Trotter step re-plans the same long-range moves), so both
    // per-compile and cross-compile plan reuse must show up. All cache
    // assertions are delta-based: sibling tests share the process-global
    // caches, and the unique seed keeps this test's keys collision-free.
    let req = submit_for("TFIM", 990_041);
    let plan = |s: &Json, k: &str| {
        s.get("plan_cache").and_then(|c| c.get(k)).and_then(Json::as_u64).unwrap()
    };

    let first_instance = start(test_config()).expect("bind");
    let mut client = ServiceClient::connect(first_instance.addr()).expect("connect");
    let before = client.stats().expect("stats");
    let cold = client.submit(req.clone()).expect("cold compile");
    assert!(!cold.cached);
    let after_cold = client.stats().expect("stats");
    // `misses` rather than the `len` gauge: len is non-monotonic on the
    // shared evicting cache, so concurrent sibling tests could offset this
    // test's inserts; the miss counter only ever grows.
    assert!(
        plan(&after_cold, "misses") > plan(&before, "misses"),
        "a movement-heavy cold compile must consult the plan cache: {} -> {}",
        plan(&before, "misses"),
        plan(&after_cold, "misses")
    );
    drop(client);
    drop(first_instance);

    let second_instance = start(test_config()).expect("bind");
    let mut client = ServiceClient::connect(second_instance.addr()).expect("connect");
    let warm = client.submit(req).expect("repeat on a fresh instance");
    assert!(!warm.cached, "a fresh server has a fresh result cache");
    assert_eq!(
        warm.result.encode(),
        cold.result.encode(),
        "plan-cache-assisted recompile must stay byte-identical"
    );
    let after_warm = client.stats().expect("stats");
    assert!(
        plan(&after_warm, "hits") > plan(&after_cold, "hits"),
        "repeat traffic must hit the cross-compile plan cache: {} -> {}",
        plan(&after_cold, "hits"),
        plan(&after_warm, "hits")
    );
}

#[test]
fn hundred_point_qaoa_sweep_rebinds_from_one_template() {
    let server = start(test_config()).expect("bind");
    let mut client = ServiceClient::connect(server.addr()).expect("connect");

    // Unique seed → this test's (structural hash, fingerprint) key cannot
    // collide with sibling tests in the process-global template cache, so
    // the hit-count assertions are exact rather than delta-based.
    let req = submit_for("QAOA", 990_077);
    let circuit = req.resolve_circuit().expect("workload resolves");
    let template = parallax_circuit::CircuitTemplate::from_circuit(&circuit);
    let slots = template.num_params();
    assert!(slots > 0, "QAOA must carry U3 angle slots");

    // A deterministic 100-point angle grid, every point distinct.
    let params: Vec<Vec<f64>> = (0..100)
        .map(|p| (0..slots).map(|s| ((p * slots + s) % 571) as f64 * 0.011 - 3.1).collect())
        .collect();

    let before = client.stats().expect("stats");
    let reply = client
        .submit_sweep(SweepRequest { submit: req.clone(), params: params.clone() })
        .expect("sweep succeeds");

    // One template: the first point compiles, all 99 others rebind.
    assert_eq!(reply.points.len(), 100);
    assert_eq!(reply.params_per_point, slots as u64);
    assert_eq!(reply.template_cache_hits, 99, "one miss, then 99 structural hits");
    assert!(!reply.points[0].cached && reply.points[1..].iter().all(|p| p.cached));

    // Every point shares the structure's payload byte-for-byte — the same
    // payload a direct in-process compile of the submission produces —
    // while the per-point bound_hash attests the angle materialization.
    let want = direct_payload(&req);
    let mut seen = std::collections::HashSet::new();
    for (i, point) in reply.points.iter().enumerate() {
        assert_eq!(point.point, i as u64, "points stream in order");
        assert_eq!(point.result.encode(), want, "point {i} must share the template payload");
        let bound = template.bind(&params[i]).expect("grid angles bind");
        assert_eq!(
            point.bound_hash,
            format!("{:016x}", parallax_circuit::circuit_bits_hash(&bound)),
            "point {i} must attest its bound circuit"
        );
        assert!(seen.insert(point.bound_hash.clone()), "distinct angles, distinct hashes");
        if point.cached {
            assert!(point.rebind_ns > 0, "hits report their rebind time");
        }
    }

    // A repeat sweep is all hits; STATS carries the running counters.
    let again =
        client.submit_sweep(SweepRequest { submit: req, params }).expect("repeat sweep succeeds");
    assert_eq!(again.template_cache_hits, 100, "repeat sweep rebinds every point");
    let stats = client.stats().expect("stats");
    let delta = |k: &str| {
        stats.get(k).and_then(Json::as_u64).unwrap() - before.get(k).and_then(Json::as_u64).unwrap()
    };
    assert_eq!(delta("sweep_points"), 200);
    assert_eq!(delta("template_cache_hits"), 199);
    assert!(delta("rebind_ns") > 0);
}

#[test]
fn full_queue_pushes_back_instead_of_accepting_silently() {
    // One worker, one queue slot, immediate rejection: occupy the worker
    // with the heaviest workload (TFIM, 128 qubits — its movement-heavy
    // schedule takes ~hundreds of ms even with the quick placement
    // preset and warm caches), fill the single slot, then watch further
    // submissions bounce with a `queue full` error.
    let server = start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        enqueue_timeout_ms: 0,
        ..test_config()
    })
    .expect("bind");
    let addr = server.addr();

    let slow = std::thread::spawn(move || {
        let mut c = ServiceClient::connect(addr).expect("connect");
        c.submit(submit_for("TFIM", 1)).expect("slow job completes")
    });
    // Wait until the worker has actually claimed the slow job.
    let mut c = ServiceClient::connect(addr).expect("connect");
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let stats = c.stats().expect("stats");
        let submitted = stats.get("submitted").and_then(Json::as_u64).unwrap();
        let depth = stats.get("queue_depth").and_then(Json::as_u64).unwrap();
        if submitted == 1 && depth == 0 {
            break; // worker busy, queue empty
        }
        assert!(std::time::Instant::now() < deadline, "slow job never started");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Fill the single queue slot…
    let queued = std::thread::spawn(move || {
        let mut c = ServiceClient::connect(addr).expect("connect");
        c.submit(submit_for("MLT", 7)).expect("queued job completes")
    });
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let stats = c.stats().expect("stats");
        if stats.get("queue_depth").and_then(Json::as_u64).unwrap() == 1 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "second job never queued");
        std::thread::sleep(Duration::from_millis(2));
    }

    // …then the next distinct submission must be refused with backpressure.
    match c.submit(submit_for("QAOA", 3)) {
        Err(ClientError::Server(msg)) => {
            assert!(msg.contains("queue full"), "unexpected error: {msg}")
        }
        other => panic!("expected a queue-full rejection, got {other:?}"),
    }
    let stats = c.stats().expect("stats");
    assert_eq!(stats.get("rejected_full").and_then(Json::as_u64), Some(1));

    // Backpressure is not loss: both accepted jobs still complete.
    slow.join().expect("slow client");
    queued.join().expect("queued client");
}

#[test]
fn shutdown_drains_accepted_jobs_without_dropping_any() {
    let server = start(ServerConfig { workers: 2, ..test_config() }).expect("bind");
    let addr = server.addr();

    // Six clients submit continuously until the server starts refusing.
    let clients: Vec<_> = (0..6)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connect");
                let mut completed = 0u64;
                for round in 0..100u64 {
                    let w = WORKLOADS[(c + round as usize) % WORKLOADS.len()];
                    // Distinct seeds defeat the cache so jobs really queue.
                    let req = submit_for(w, 1000 + c as u64 * 100 + round);
                    match client.submit(req) {
                        Ok(reply) => {
                            assert!(reply.result.get("digest").is_some());
                            completed += 1;
                        }
                        Err(ClientError::Server(msg)) => {
                            assert!(
                                msg.contains("shutting down"),
                                "only shutdown refusals expected, got: {msg}"
                            );
                            break;
                        }
                        Err(other) => panic!("unexpected failure: {other}"),
                    }
                }
                completed
            })
        })
        .collect();

    // Let work pile up, then drain from a separate control connection.
    std::thread::sleep(Duration::from_millis(150));
    let mut control = ServiceClient::connect(addr).expect("connect");
    let drained = control.shutdown().expect("shutdown acks after drain");
    assert_eq!(drained.get("drained").and_then(Json::as_bool), Some(true));

    let client_completed: u64 = clients.into_iter().map(|c| c.join().expect("client")).sum();

    // After the drain ack, every accepted job must have completed and been
    // answered; the books must balance exactly.
    let stats = control.stats().expect("stats still served while drained");
    let submitted = stats.get("submitted").and_then(Json::as_u64).unwrap();
    let completed = stats.get("completed").and_then(Json::as_u64).unwrap();
    let hits = stats.get("cache_hits").and_then(Json::as_u64).unwrap();
    assert_eq!(submitted, completed, "drain must not drop accepted jobs");
    assert_eq!(stats.get("queue_depth").and_then(Json::as_u64), Some(0));
    assert_eq!(stats.get("failed").and_then(Json::as_u64), Some(0));
    assert_eq!(
        client_completed,
        completed + hits,
        "every ok response maps to a completed job or a cache hit"
    );
    assert!(client_completed > 0, "some jobs must have completed before the drain");
}

#[test]
fn metrics_and_trace_ops_work_over_the_wire() {
    let server = start(test_config()).expect("bind");
    let mut client = ServiceClient::connect(server.addr()).expect("connect");

    // Tag the submission with a client-side correlation id and check the
    // echo, live over TCP.
    let reply = client
        .submit(SubmitRequest { trace: Some("e2e-tag-1".into()), ..submit_for("ADD", 41) })
        .expect("submit");
    assert_eq!(reply.trace_id, "e2e-tag-1");
    // Untagged: the server mints a 16-hex id.
    let minted = client.submit(submit_for("MLT", 41)).expect("submit").trace_id;
    assert_eq!(minted.len(), 16, "minted trace id must be 16 hex chars: {minted}");
    assert!(minted.chars().all(|c| c.is_ascii_hexdigit()));

    // The Prometheus exposition reflects the live server's registry. This
    // server's own counters carry a fresh `instance` label, so its series
    // start from exactly the two submissions above.
    let text = client.metrics().expect("metrics op");
    assert!(
        text.contains("# TYPE parallax_service_events_total counter"),
        "missing service counter family:\n{text}"
    );
    assert!(text.contains("# TYPE parallax_service_latency_us histogram"), "{text}");
    assert!(text.contains("parallax_compile_stat_total"), "{text}");
    assert!(text.contains("parallax_cache_entries"), "{text}");
    let events: Vec<&str> =
        text.lines().filter(|l| l.starts_with("parallax_service_events_total")).collect();
    assert!(!events.is_empty(), "no event series rendered:\n{text}");

    // The TRACE op always answers; span trees appear only when tracing is
    // enabled, and the `enabled` flag tells the client which case holds.
    let trace = client.trace(8).expect("trace op");
    assert_eq!(trace.get("ok").and_then(Json::as_bool), Some(true));
    assert!(trace.get("enabled").and_then(Json::as_bool).is_some());
    assert!(matches!(trace.get("traces"), Some(Json::Arr(_))));

    // Stats responses carry a wrapper-level trace id; the pinned `stats`
    // object stays untouched.
    let wrapper = client.stats_response().expect("stats");
    assert!(wrapper.get("trace_id").and_then(Json::as_str).is_some());
    assert!(wrapper.get("stats").and_then(|s| s.get("trace_id")).is_none());

    // Sweep headers carry the id too (echoed when client-supplied). QAOA
    // has U3 slots; one zero vector of the right arity is enough.
    let submit = SubmitRequest { trace: Some("e2e-sweep-7".into()), ..submit_for("QAOA", 41) };
    let slots = parallax_circuit::CircuitTemplate::from_circuit(
        &submit.resolve_circuit().expect("workload"),
    )
    .num_params();
    let sweep = client
        .submit_sweep(SweepRequest { submit, params: vec![vec![0.0; slots]] })
        .expect("one-point sweep");
    assert_eq!(sweep.trace_id, "e2e-sweep-7");
}
