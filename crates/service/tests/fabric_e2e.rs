//! Fabric end-to-end tests with **real processes**: `parallax-serve`
//! shards and the `parallax-route` front end launched as child processes
//! and exercised over TCP.
//!
//! Three contracts are pinned here:
//! 1. **Equivalence** — a router fronting two shards serves byte-identical
//!    payloads to direct in-process compilation, under 8 concurrent
//!    clients.
//! 2. **Restart survival** — a shard killed and restarted against the
//!    same `--disk-cache` directory answers a previously-seen key from
//!    the disk tier (disk-hit counter > 0) without recompiling, byte
//!    identically.
//! 3. **Corruption tolerance** — truncated or garbage cache files degrade
//!    to structured misses (the shard recompiles and still answers
//!    correctly), never a panic.

use parallax_service::{compile_payload, Json, ServiceClient, SubmitRequest, SubmitSource};
use std::io::{BufRead, BufReader, Read};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A child daemon plus the address it printed on startup. Holds the
/// stdout pipe open for the child's lifetime so its shutdown banner
/// doesn't die on a broken pipe.
struct Daemon {
    child: Child,
    addr: SocketAddr,
    stdout: Option<BufReader<std::process::ChildStdout>>,
}

impl Daemon {
    /// Launch `bin` with `args`, parse the `... listening on HOST:PORT ...`
    /// line it prints once bound.
    fn launch(bin: &str, args: &[&str]) -> Daemon {
        let mut child = Command::new(bin)
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn daemon");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut reader = BufReader::new(stdout);
        let mut first_line = String::new();
        reader.read_line(&mut first_line).expect("read startup line");
        let addr = first_line
            .split_whitespace()
            .skip_while(|w| *w != "on")
            .nth(1)
            .and_then(|w| w.parse().ok())
            .unwrap_or_else(|| panic!("no address in startup line: {first_line:?}"));
        Daemon { child, addr, stdout: Some(reader) }
    }

    fn serve(extra: &[&str]) -> Daemon {
        let mut args = vec!["--addr", "127.0.0.1:0", "--workers", "2", "--queue", "16"];
        args.extend_from_slice(extra);
        Self::launch(env!("CARGO_BIN_EXE_parallax-serve"), &args)
    }

    fn route(shards: &[SocketAddr]) -> Daemon {
        let shard_args: Vec<String> = shards.iter().map(|a| a.to_string()).collect();
        let mut args = vec!["--addr".to_string(), "127.0.0.1:0".to_string()];
        for s in &shard_args {
            args.push("--shard".to_string());
            args.push(s.clone());
        }
        let args: Vec<&str> = args.iter().map(String::as_str).collect();
        Self::launch(env!("CARGO_BIN_EXE_parallax-route"), &args)
    }

    /// Wait (bounded) for the process to exit after a client-driven
    /// shutdown.
    fn wait(mut self) {
        // Drain the rest of the child's stdout on the side so it can
        // never block on a full pipe while exiting.
        if let Some(mut reader) = self.stdout.take() {
            std::thread::spawn(move || {
                let mut rest = String::new();
                let _ = reader.read_to_string(&mut rest);
            });
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(status.success(), "daemon exited with {status}");
                    return;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("daemon did not exit within the deadline");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // Belt and braces: if a test panicked before the clean shutdown,
        // don't leak the child process.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn submit_for(workload: &str, seed: u64) -> SubmitRequest {
    SubmitRequest {
        source: SubmitSource::Workload(workload.to_string()),
        seed,
        quick: true,
        ..Default::default()
    }
}

fn direct_payload(req: &SubmitRequest) -> String {
    let compiler = req.build_compiler().expect("valid machine");
    let circuit = req.resolve_circuit().expect("valid workload");
    compile_payload(&compiler.compile(&circuit)).encode()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("parallax-fabric-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn router_with_two_shard_processes_matches_direct_compilation() {
    let shard_a = Daemon::serve(&[]);
    let shard_b = Daemon::serve(&[]);
    let router = Daemon::route(&[shard_a.addr, shard_b.addr]);

    // 8 distinct jobs, compiled directly first for the expected bytes.
    let jobs: Vec<(SubmitRequest, String)> = ["ADD", "MLT", "QAOA", "HLF"]
        .iter()
        .flat_map(|w| (0..2u64).map(move |s| submit_for(w, s)))
        .map(|req| {
            let want = direct_payload(&req);
            (req, want)
        })
        .collect();

    // 8 concurrent clients, each two passes over every job (offset start
    // per client so shards see interleaved repeat traffic).
    let addr = router.addr;
    let clients: Vec<_> = (0..8)
        .map(|c| {
            let jobs = jobs.clone();
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connect to router");
                for pass in 0..2 {
                    for i in 0..jobs.len() {
                        let (req, want) = &jobs[(i + c) % jobs.len()];
                        let id = (c * 1000 + pass * 100 + i) as u64;
                        let reply = client
                            .submit(SubmitRequest { id: Some(id), ..req.clone() })
                            .expect("routed submit succeeds");
                        assert_eq!(reply.id, Some(id), "responses must be index-stable");
                        assert_eq!(
                            reply.result.encode(),
                            *want,
                            "routed result must be byte-identical to direct compilation"
                        );
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    // Both shards took forwards (the keyspace actually sharded), and the
    // fabric topology reports both reachable.
    let mut control = ServiceClient::connect(addr).expect("connect");
    let stats = control.stats().expect("router stats");
    assert_eq!(stats.get("role").and_then(Json::as_str), Some("router"));
    let forwarded: Vec<u64> = match stats.get("forwarded") {
        Some(Json::Arr(a)) => a.iter().filter_map(Json::as_u64).collect(),
        other => panic!("missing forwarded counters: {other:?}"),
    };
    assert_eq!(forwarded.len(), 2);
    assert_eq!(forwarded.iter().sum::<u64>(), 8 * 2 * 8, "every submit was forwarded");
    assert!(forwarded.iter().all(|&n| n > 0), "one shard owns the whole ring: {forwarded:?}");

    let topo = control.shards().expect("topology");
    let shards = match topo.get("shards") {
        Some(Json::Arr(a)) => a.clone(),
        other => panic!("missing shards: {other:?}"),
    };
    assert_eq!(shards.len(), 2);
    for s in &shards {
        assert_eq!(s.get("reachable").and_then(Json::as_bool), Some(true), "{topo:?}");
    }

    // One SHUTDOWN through the router drains the whole fabric; all three
    // processes exit cleanly.
    let drained = control.shutdown().expect("fabric shutdown");
    assert_eq!(drained.get("drained").and_then(Json::as_bool), Some(true));
    assert_eq!(drained.get("shards_ok").and_then(Json::as_u64), Some(2));
    drop(control);
    router.wait();
    shard_a.wait();
    shard_b.wait();
}

#[test]
fn restarted_shard_serves_previous_results_from_the_disk_tier() {
    let dir = temp_dir("restart");
    let dir_str = dir.to_str().expect("utf8 temp dir").to_string();
    let req = submit_for("ADD", 90_001);

    // First life: compile cold, written through to disk.
    let shard = Daemon::serve(&["--disk-cache", &dir_str]);
    let mut client = ServiceClient::connect(shard.addr).expect("connect");
    let first = client.submit(req.clone()).expect("cold submit");
    assert!(!first.cached, "first life compiles cold");
    let stats = client.stats().expect("stats");
    let disk = stats.get("cache").and_then(|c| c.get("disk")).expect("disk sub-object");
    assert_eq!(disk.get("enabled").and_then(Json::as_bool), Some(true));
    assert!(disk.get("stores").and_then(Json::as_u64).unwrap() >= 1, "write-through: {stats:?}");
    client.shutdown().expect("drain first life");
    drop(client);
    shard.wait();

    // Second life, same directory: the in-memory cache is gone, but the
    // disk tier answers without recompiling.
    let shard = Daemon::serve(&["--disk-cache", &dir_str]);
    let mut client = ServiceClient::connect(shard.addr).expect("connect");
    let revived = client.submit(req.clone()).expect("warm-restart submit");
    assert!(revived.cached, "restarted shard must answer from the disk tier");
    assert_eq!(
        revived.result.encode(),
        first.result.encode(),
        "disk-served payload must be byte-identical to the compile that wrote it"
    );
    assert_eq!(revived.result.encode(), direct_payload(&req), "and to a direct compile");
    let stats = client.stats().expect("stats");
    let disk = stats.get("cache").and_then(|c| c.get("disk")).expect("disk sub-object");
    assert!(
        disk.get("hits").and_then(Json::as_u64).unwrap() >= 1,
        "the disk-hit counter must attest the tier served it: {stats:?}"
    );
    assert_eq!(
        stats.get("completed").and_then(Json::as_u64),
        Some(0),
        "nothing may recompile on a disk hit"
    );

    // The hit was promoted into memory: a repeat stays a hit without
    // another disk probe.
    let before = disk.get("hits").and_then(Json::as_u64).unwrap();
    let repeat = client.submit(req).expect("promoted repeat");
    assert!(repeat.cached);
    let stats = client.stats().expect("stats");
    let after = stats
        .get("cache")
        .and_then(|c| c.get("disk"))
        .and_then(|d| d.get("hits"))
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(before, after, "memory answers the promoted key; disk is not re-probed");

    client.shutdown().expect("drain second life");
    drop(client);
    shard.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_disk_entries_degrade_to_misses_never_a_panic() {
    let dir = temp_dir("corrupt");
    let dir_str = dir.to_str().expect("utf8 temp dir").to_string();
    let reqs: Vec<SubmitRequest> = (90_002..90_005).map(|seed| submit_for("MLT", seed)).collect();

    // Seed the disk tier with three entries, then vandalize each a
    // different way: garbage, truncated mid-header, checksum-breaking
    // bit flip.
    let shard = Daemon::serve(&["--disk-cache", &dir_str]);
    let mut client = ServiceClient::connect(shard.addr).expect("connect");
    let firsts: Vec<String> = reqs
        .iter()
        .map(|req| client.submit(req.clone()).expect("cold submit").result.encode())
        .collect();
    client.shutdown().expect("drain");
    drop(client);
    shard.wait();

    let entries: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .expect("read cache dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "plx"))
        .collect();
    assert_eq!(entries.len(), 3, "the first life must have persisted every entry");
    for (i, path) in entries.iter().enumerate() {
        match i % 3 {
            0 => std::fs::write(path, b"garbage, not a cache entry").expect("garbage"),
            1 => {
                // Truncate mid-header.
                let bytes = std::fs::read(path).expect("read entry");
                std::fs::write(path, &bytes[..bytes.len().min(11)]).expect("truncate");
            }
            _ => {
                // Flip a payload bit so the checksum fails.
                let mut bytes = std::fs::read(path).expect("read entry");
                let last = bytes.len() - 1;
                bytes[last] ^= 0x40;
                std::fs::write(path, &bytes).expect("bit-flip");
            }
        }
    }

    // Second life over the vandalized directory: every probe is a
    // structured miss, the shard recompiles, and the answers are still
    // byte-identical — no panic, no garbage served.
    let shard = Daemon::serve(&["--disk-cache", &dir_str]);
    let mut client = ServiceClient::connect(shard.addr).expect("connect");
    for (req, first) in reqs.into_iter().zip(&firsts) {
        let recompiled = client.submit(req).expect("submit over corrupt cache");
        assert!(!recompiled.cached, "a corrupt entry must be a miss, not a hit");
        assert_eq!(
            recompiled.result.encode(),
            *first,
            "recompilation must reproduce the original payload"
        );
    }
    let stats = client.stats().expect("stats");
    let disk = stats.get("cache").and_then(|c| c.get("disk")).expect("disk sub-object");
    assert!(disk.get("misses").and_then(Json::as_u64).unwrap() >= 3, "{stats:?}");
    assert_eq!(disk.get("hits").and_then(Json::as_u64), Some(0), "{stats:?}");
    client.shutdown().expect("drain");
    drop(client);
    shard.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn router_admin_plane_persists_and_flushes_across_shards() {
    let dir_a = temp_dir("admin-a");
    let dir_b = temp_dir("admin-b");
    let shard_a = Daemon::serve(&["--disk-cache", dir_a.to_str().unwrap()]);
    let shard_b = Daemon::serve(&["--disk-cache", dir_b.to_str().unwrap()]);
    let router = Daemon::route(&[shard_a.addr, shard_b.addr]);
    let mut client = ServiceClient::connect(router.addr).expect("connect");

    // Compile a handful of jobs through the router, then persist and
    // flush every shard through the single admin endpoint.
    for seed in 0..4u64 {
        let reply = client.submit(submit_for("HLF", seed)).expect("submit");
        assert!(!reply.cached);
    }
    let persisted = client.cache_persist().expect("fabric-wide persist");
    assert_eq!(persisted.get("shards_ok").and_then(Json::as_u64), Some(2), "{persisted:?}");
    let flushed = client.cache_flush().expect("fabric-wide flush");
    assert_eq!(flushed.get("shards_ok").and_then(Json::as_u64), Some(2));

    // Memory is flushed, but the flush never touches the disk tier: the
    // repeat is still served as cached (from disk) on whichever shard
    // owns it, without recompiling.
    let repeat = client.submit(submit_for("HLF", 0)).expect("repeat after flush");
    assert!(repeat.cached, "the disk tier must back a flushed memory cache");

    // Resize fans out too; 0 disables every in-memory cache.
    let resized = client.cache_resize(0).expect("fabric-wide resize");
    assert_eq!(resized.get("shards_ok").and_then(Json::as_u64), Some(2));

    let drained = client.shutdown().expect("fabric shutdown");
    assert_eq!(drained.get("drained").and_then(Json::as_bool), Some(true));
    drop(client);
    router.wait();
    shard_a.wait();
    shard_b.wait();
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
