//! Pins the `STATS` response shape against a golden file.
//!
//! The metrics backing `STATS` moved into the unified observability
//! registry; this test is the backward-compatibility contract proving the
//! re-sourcing changed nothing a client could observe: every key path, in
//! order, exactly as before. A failure means the wire shape drifted —
//! regenerate deliberately with `UPDATE_GOLDEN=1 cargo test -p
//! parallax-service --test stats_golden` and flag the break for clients.

use parallax_service::{Json, Metrics};

/// Flatten a JSON value into its ordered key paths (`a.b`, `arr[].k`).
/// Arrays descend into their first element only: element shape is
/// homogeneous, element *count* is data, not shape.
fn paths(prefix: &str, v: &Json, out: &mut Vec<String>) {
    match v {
        Json::Obj(pairs) => {
            for (k, val) in pairs {
                let p = if prefix.is_empty() { k.clone() } else { format!("{prefix}.{k}") };
                out.push(p.clone());
                paths(&p, val, out);
            }
        }
        Json::Arr(items) => {
            if let Some(first) = items.first() {
                paths(&format!("{prefix}[]"), first, out);
            }
        }
        _ => {}
    }
}

#[test]
fn stats_json_shape_is_pinned() {
    let m = Metrics::default();
    m.latency.record(123);
    // Mirrors the server's `cache_json()` shape: byte-budget gauges plus
    // the always-present disk sub-object (zeroed when no disk tier runs).
    let cache = Json::obj(vec![
        ("len", Json::Int(0)),
        ("capacity", Json::Int(8)),
        ("weight", Json::Int(0)),
        ("hits", Json::Int(0)),
        ("misses", Json::Int(0)),
        ("evictions", Json::Int(0)),
        (
            "disk",
            Json::obj(vec![
                ("enabled", Json::Bool(false)),
                ("len", Json::Int(0)),
                ("hits", Json::Int(0)),
                ("misses", Json::Int(0)),
                ("stores", Json::Int(0)),
                ("store_errors", Json::Int(0)),
            ]),
        ),
    ]);
    let stats = m.to_json(0, 8, cache);
    let mut got = Vec::new();
    paths("", &stats, &mut got);
    let got = got.join("\n") + "\n";

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/stats_shape.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).expect("write golden");
    }
    let want = std::fs::read_to_string(path)
        .expect("golden file missing; regenerate with UPDATE_GOLDEN=1");
    assert_eq!(
        got, want,
        "STATS key paths changed — clients pin this shape; if the change is \
         deliberate, regenerate with UPDATE_GOLDEN=1 and call it out in the PR"
    );
}
