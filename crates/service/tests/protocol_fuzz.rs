//! Negative-path protocol tests: hostile or broken wire input — truncated
//! frames, oversized lines, invalid UTF-8/JSON, unknown ops, random
//! garbage — must always be answered with a structured
//! `{"ok":false,"error":...}` line (or a clean close for an empty
//! truncated stream) and must never kill a worker: the same server keeps
//! compiling real jobs afterwards.

use parallax_service::{start, Json, ServerConfig, ServerHandle, ServiceClient, SubmitRequest};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};

fn test_server() -> ServerHandle {
    start(ServerConfig {
        workers: 2,
        queue_capacity: 8,
        cache_capacity: 8,
        // Small cap so the oversized-line path is cheap to exercise.
        max_line_bytes: 64 * 1024,
        ..Default::default()
    })
    .expect("bind ephemeral port")
}

/// Send raw bytes on a fresh connection, half-close the write side, and
/// collect every response line until the server closes.
fn raw_exchange(addr: std::net::SocketAddr, bytes: &[u8]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(bytes).expect("write");
    stream.shutdown(Shutdown::Write).expect("half-close");
    BufReader::new(stream).lines().map_while(Result::ok).collect()
}

/// The server is still healthy: a real submission compiles on it.
fn assert_still_serving(addr: std::net::SocketAddr) {
    let mut client = ServiceClient::connect(addr).expect("connect");
    let reply = client
        .submit(SubmitRequest { quick: true, ..Default::default() })
        .expect("server must still compile after hostile input");
    assert_eq!(reply.result.get("swaps").and_then(Json::as_u64), Some(0));
}

fn assert_structured_error(line: &str) {
    let v = parallax_service::json::parse(line).unwrap_or_else(|e| {
        panic!("response must stay valid JSON, got {line:?}: {e}");
    });
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{line}");
    assert!(v.get("error").and_then(Json::as_str).is_some(), "{line}");
}

#[test]
fn truncated_frames_answer_or_close_cleanly() {
    let server = test_server();
    let addr = server.addr();

    // A frame cut off before its newline: processed as a final partial
    // line (a parse error) and answered before the connection closes.
    let responses = raw_exchange(addr, b"{\"cmd\":\"sub");
    assert_eq!(responses.len(), 1, "{responses:?}");
    assert_structured_error(&responses[0]);

    // A clean half-close with no bytes at all: no response, no harm.
    assert!(raw_exchange(addr, b"").is_empty());

    // A valid request followed by a truncated second one: both answered
    // (the first with ok:true).
    let responses = raw_exchange(addr, b"{\"cmd\":\"ping\"}\n{\"cmd\":\"st");
    assert_eq!(responses.len(), 2, "{responses:?}");
    assert!(responses[0].contains("\"pong\":true"), "{responses:?}");
    assert_structured_error(&responses[1]);

    assert_still_serving(addr);
}

#[test]
fn oversized_lines_get_a_structured_error_and_resynchronize() {
    let server = test_server();
    let addr = server.addr();

    // One giant line (4x the cap), then a valid ping on the same
    // connection: the server must discard through the newline, answer
    // with a structured error, and then serve the ping normally.
    let mut giant = vec![b'x'; 256 * 1024];
    giant.push(b'\n');
    giant.extend_from_slice(b"{\"cmd\":\"ping\"}\n");
    let responses = raw_exchange(addr, &giant);
    assert_eq!(responses.len(), 2, "{responses:?}");
    assert_structured_error(&responses[0]);
    assert!(responses[0].contains("exceeds"), "{responses:?}");
    assert!(responses[1].contains("\"pong\":true"), "resync failed: {responses:?}");

    // Oversized truncated tail (no newline before EOF): still answered.
    let responses = raw_exchange(addr, &vec![b'y'; 256 * 1024]);
    assert_eq!(responses.len(), 1, "{responses:?}");
    assert_structured_error(&responses[0]);

    let mut client = ServiceClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert!(
        stats.get("bad_requests").and_then(Json::as_u64).unwrap() >= 2,
        "oversized lines must count as bad requests"
    );
    assert_still_serving(addr);
}

#[test]
fn invalid_utf8_json_and_unknown_ops_are_rejected_without_casualties() {
    let server = test_server();
    let addr = server.addr();

    let cases: &[&[u8]] = &[
        b"\xff\xfe\x80garbage\n",                        // invalid UTF-8
        b"not json at all\n",                            // invalid JSON
        b"{\"cmd\":\"explode\"}\n",                      // unknown op
        b"{}\n",                                         // missing cmd
        b"{\"cmd\":\"submit\"}\n",                       // submit without a source
        b"{\"cmd\":\"submit\",\"workload\":\"NOPE\"}\n", // unknown workload
        b"{\"cmd\":\"submit\",\"qasm\":\"bad\",\"workload\":\"QFT\"}\n", // both sources
        b"[1,2,3]\n",                                    // non-object JSON
        b"\"just a string\"\n",                          // non-object JSON
    ];
    for &case in cases {
        let responses = raw_exchange(addr, case);
        assert_eq!(responses.len(), 1, "case {case:?} -> {responses:?}");
        assert_structured_error(&responses[0]);
    }
    assert_still_serving(addr);
}

#[test]
fn malformed_sweeps_are_rejected_without_casualties() {
    let server = test_server();
    let addr = server.addr();

    // Every malformed sweep is a single structured error line — the server
    // must not start compiling (or worse, panic binding) a bad parameter
    // set. JSON cannot spell NaN, so the non-finite arm rides in on the
    // parser's permissive `1e999` -> infinity mapping: the *protocol*
    // accepts the number, the server's bind validation rejects it.
    let cases: &[(&[u8], &str)] = &[
        (b"{\"cmd\":\"submit-sweep\",\"workload\":\"QFT\"}\n", "params"),
        (b"{\"cmd\":\"submit-sweep\",\"workload\":\"QFT\",\"params\":[]}\n", "empty sweep"),
        (b"{\"cmd\":\"submit-sweep\",\"workload\":\"QFT\",\"params\":7}\n", "params"),
        (b"{\"cmd\":\"submit-sweep\",\"workload\":\"QFT\",\"params\":[7]}\n", "array of numbers"),
        (b"{\"cmd\":\"submit-sweep\",\"workload\":\"QFT\",\"params\":[[\"x\"]]}\n", "number"),
        (
            b"{\"cmd\":\"submit-sweep\",\"workload\":\"QFT\",\"params\":[[0.5]]}\n",
            "parameter count mismatch",
        ),
    ];
    for &(wire, needle) in cases {
        let responses = raw_exchange(addr, wire);
        assert_eq!(responses.len(), 1, "case {:?} -> {responses:?}", String::from_utf8_lossy(wire));
        assert_structured_error(&responses[0]);
        assert!(
            responses[0].contains(needle),
            "error for {:?} must mention {needle:?}: {}",
            String::from_utf8_lossy(wire),
            responses[0]
        );
    }

    // Arity is validated before finiteness, so `[[1e999]]` alone rejects
    // as a count mismatch; spell a correct-arity point with one infinity
    // to pin the non-finite rejection.
    let request = parallax_service::SubmitRequest {
        source: parallax_service::SubmitSource::Workload("QFT".into()),
        quick: true,
        ..Default::default()
    };
    let circuit = request.resolve_circuit().expect("workload resolves");
    let slots = parallax_circuit::CircuitTemplate::from_circuit(&circuit).num_params();
    assert!(slots > 0, "QFT must carry U3 slots");
    let mut point = vec!["0.1".to_string(); slots];
    point[slots / 2] = "1e999".into();
    let wire = format!(
        "{{\"cmd\":\"submit-sweep\",\"workload\":\"QFT\",\"quick\":true,\"params\":[[{}]]}}\n",
        point.join(",")
    );
    let responses = raw_exchange(addr, wire.as_bytes());
    assert_eq!(responses.len(), 1, "{responses:?}");
    assert_structured_error(&responses[0]);
    assert!(responses[0].contains("not finite"), "{responses:?}");

    // The typed client cannot transport Inf/NaN at all: the canonical
    // encoder maps non-finite to `null`, which the parser refuses as a
    // non-number — also a structured error, never a compile.
    let mut client = ServiceClient::connect(addr).expect("connect");
    let mut params = vec![vec![0.1f64; slots]];
    params[0][0] = f64::NAN;
    let err = client
        .submit_sweep(parallax_service::SweepRequest { submit: request, params })
        .expect_err("a NaN sweep point must be refused");
    assert!(err.to_string().contains("must be a number"), "{err}");

    // An oversized sweep line (4x the request-line cap) is the transport
    // layer's problem: structured error, resync, and the server lives on.
    let mut giant = Vec::from(&b"{\"cmd\":\"submit-sweep\",\"workload\":\"QFT\",\"params\":[["[..]);
    while giant.len() < 256 * 1024 {
        giant.extend_from_slice(b"0.125,");
    }
    giant.extend_from_slice(b"0.125]]}\n{\"cmd\":\"ping\"}\n");
    let responses = raw_exchange(addr, &giant);
    assert_eq!(responses.len(), 2, "{responses:?}");
    assert_structured_error(&responses[0]);
    assert!(responses[0].contains("exceeds"), "{responses:?}");
    assert!(responses[1].contains("\"pong\":true"), "resync failed: {responses:?}");

    assert_still_serving(addr);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    /// Random garbage lines (newline-free byte soup, printable or not):
    /// every line gets exactly one structured error response, and the
    /// server survives to compile another day.
    #[test]
    fn random_garbage_never_kills_the_server(
        lines in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 1..200),
            1..4,
        )
    ) {
        // One shared server across cases would hide per-case crashes less
        // well than it saves time; still, binding is cheap enough per case.
        let server = test_server();
        let addr = server.addr();
        let mut wire = Vec::new();
        let mut expected = 0usize;
        for line in &lines {
            let cleaned: Vec<u8> =
                line.iter().copied().filter(|&b| b != b'\n' && b != b'\r').collect();
            if std::str::from_utf8(&cleaned).is_ok_and(|s| s.trim().is_empty()) {
                // Exactly the server's skip rule: a valid-UTF-8 line that
                // trims to nothing (str::trim is Unicode-aware — 0x0B
                // counts) gets no response by design; invalid UTF-8 is
                // always answered.
                continue;
            }
            wire.extend_from_slice(&cleaned);
            wire.push(b'\n');
            expected += 1;
        }
        let responses = raw_exchange(addr, &wire);
        prop_assert_eq!(responses.len(), expected, "one response per line");
        for r in &responses {
            let v = parallax_service::json::parse(r)
                .map_err(|e| TestCaseError::fail(format!("bad response {r:?}: {e}")))?;
            // Random bytes cannot spell a valid request, which always has
            // a lowercase `cmd` — every response is a structured error.
            prop_assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
            prop_assert!(v.get("error").and_then(Json::as_str).is_some());
        }
        assert_still_serving(addr);
    }
}
