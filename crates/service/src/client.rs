//! Blocking client for the compile service.
//!
//! One [`ServiceClient`] wraps one TCP connection; requests on a
//! connection are answered strictly in order, so a sequential caller can
//! pair every response with its request (and assert it via the `id` echo).

use crate::json::{self, Json};
use crate::protocol::{encode_request, CacheOp, Request, SubmitRequest, SweepRequest};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport problem (connect/read/write).
    Io(std::io::Error),
    /// The server's reply was not a valid response line.
    Protocol(String),
    /// The server answered `{"ok":false,...}`; payload is the error text.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A successful submit response.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitReply {
    /// Whether the result came from the server's cache.
    pub cached: bool,
    /// The client-supplied id, echoed back.
    pub id: Option<u64>,
    /// The request's trace id: the client-supplied string echoed back, or
    /// the server-minted 16-hex id tagging this compile's spans.
    pub trace_id: String,
    /// Server-side latency from arrival to response, µs.
    pub total_us: u64,
    /// The canonical compilation payload (metrics + schedule digest).
    pub result: Json,
}

/// One point of a successful sweep response.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPointReply {
    /// Zero-based index into the request's `params`.
    pub point: u64,
    /// Whether the process-wide template cache answered this point.
    pub cached: bool,
    /// Server-side nanoseconds to serve this point (template probe +
    /// parameter rebind; includes the one-time compile on a miss).
    pub rebind_ns: u64,
    /// Bit-exact hash of the bound circuit this point executes
    /// ([`parallax_circuit::circuit_bits_hash`] — recompute it from a
    /// local `CircuitTemplate::bind` to verify the materialization).
    pub bound_hash: String,
    /// The canonical compilation payload every point of the sweep shares.
    pub result: Json,
}

/// A successful submit-sweep response: the header plus every point line.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReply {
    /// The client-supplied id, echoed back.
    pub id: Option<u64>,
    /// The sweep's trace id (client-supplied or server-minted); every
    /// point of the sweep shares it.
    pub trace_id: String,
    /// Parameter slots per point (the structure's U3 angle count).
    pub params_per_point: u64,
    /// Points answered by the template cache (cold sweep: N − 1).
    pub template_cache_hits: u64,
    /// Server-side latency for the whole sweep, µs.
    pub total_us: u64,
    /// One reply per requested parameter vector, in request order.
    pub points: Vec<SweepPointReply>,
}

/// A blocking connection to a `parallax-serve` instance.
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServiceClient {
    /// Connect to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // Tiny request/response messages: disable Nagle so each line goes
        // out immediately instead of waiting on delayed ACKs.
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { reader, writer: stream })
    }

    /// Send one request line and read its response line.
    pub fn roundtrip(&mut self, request: &Request) -> Result<Json, ClientError> {
        self.roundtrip_line(&encode_request(request))
    }

    /// Send a raw wire line (must be one line) and parse the response.
    pub fn roundtrip_line(&mut self, line: &str) -> Result<Json, ClientError> {
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.writer.write_all(framed.as_bytes())?;
        self.read_response_line()
    }

    /// Read and validate one `{"ok":...}` response line off the stream.
    fn read_response_line(&mut self) -> Result<Json, ClientError> {
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        let v =
            json::parse(response.trim_end()).map_err(|e| ClientError::Protocol(e.to_string()))?;
        match v.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(v),
            Some(false) => Err(ClientError::Server(
                v.get("error").and_then(Json::as_str).unwrap_or("unknown error").to_string(),
            )),
            None => Err(ClientError::Protocol(format!("response missing 'ok': {response}"))),
        }
    }

    /// Submit a compile job and wait for its result.
    pub fn submit(&mut self, request: SubmitRequest) -> Result<SubmitReply, ClientError> {
        let v = self.roundtrip(&Request::Submit(Box::new(request)))?;
        Ok(SubmitReply {
            cached: v
                .get("cached")
                .and_then(Json::as_bool)
                .ok_or_else(|| ClientError::Protocol("missing 'cached'".into()))?,
            id: v.get("id").and_then(Json::as_u64),
            trace_id: v.get("trace_id").and_then(Json::as_str).unwrap_or_default().to_string(),
            total_us: v.get("total_us").and_then(Json::as_u64).unwrap_or(0),
            result: v
                .get("result")
                .cloned()
                .ok_or_else(|| ClientError::Protocol("missing 'result'".into()))?,
        })
    }

    /// Submit a parameter sweep and collect its streamed response: the
    /// header line, then exactly `points` per-point lines. A refused sweep
    /// (validation error) surfaces as [`ClientError::Server`] from the
    /// single error line the server sent instead of a stream.
    pub fn submit_sweep(&mut self, request: SweepRequest) -> Result<SweepReply, ClientError> {
        let header = self.roundtrip(&Request::SubmitSweep(Box::new(request)))?;
        if header.get("sweep").and_then(Json::as_bool) != Some(true) {
            return Err(ClientError::Protocol("missing sweep header".into()));
        }
        let count = header
            .get("points")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("sweep header missing 'points'".into()))?;
        let mut points = Vec::with_capacity(count as usize);
        for i in 0..count {
            let v = self.read_response_line()?;
            points.push(SweepPointReply {
                point: v
                    .get("point")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| ClientError::Protocol(format!("point {i} missing 'point'")))?,
                cached: v
                    .get("cached")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| ClientError::Protocol(format!("point {i} missing 'cached'")))?,
                rebind_ns: v.get("rebind_ns").and_then(Json::as_u64).unwrap_or(0),
                bound_hash: v
                    .get("bound_hash")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
                result: v
                    .get("result")
                    .cloned()
                    .ok_or_else(|| ClientError::Protocol(format!("point {i} missing 'result'")))?,
            });
        }
        Ok(SweepReply {
            id: header.get("id").and_then(Json::as_u64),
            trace_id: header.get("trace_id").and_then(Json::as_str).unwrap_or_default().to_string(),
            params_per_point: header.get("params_per_point").and_then(Json::as_u64).unwrap_or(0),
            template_cache_hits: header
                .get("template_cache_hits")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            total_us: header.get("total_us").and_then(Json::as_u64).unwrap_or(0),
            points,
        })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(&Request::Ping)
    }

    /// Fetch the live metrics snapshot (the `stats` sub-object).
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        let v = self.roundtrip(&Request::Stats)?;
        v.get("stats").cloned().ok_or_else(|| ClientError::Protocol("missing 'stats'".into()))
    }

    /// Fetch the full `STATS` response wrapper, which also carries the
    /// response's `trace_id` (the `stats` sub-object never does).
    pub fn stats_response(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(&Request::Stats)
    }

    /// Fetch the server's unified metrics registry rendered as Prometheus
    /// text exposition (the `METRICS` op).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let v = self.roundtrip(&Request::Metrics)?;
        v.get("metrics")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("missing 'metrics'".into()))
    }

    /// Fetch the server's most recent per-request span trees (the `TRACE`
    /// op). Empty unless the server runs with tracing enabled
    /// (`PARALLAX_TRACE=1`); the response's `enabled` flag disambiguates.
    pub fn trace(&mut self, limit: usize) -> Result<Json, ClientError> {
        self.roundtrip(&Request::Trace { limit })
    }

    /// Ask the server to drain and stop accepting; returns once every
    /// accepted job has completed.
    pub fn shutdown(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(&Request::Shutdown)
    }

    /// Admin: drop every in-memory result-cache entry (disk untouched).
    /// Against a router this fans out to every shard.
    pub fn cache_flush(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(&Request::Cache(CacheOp::Flush))
    }

    /// Admin: change the in-memory result-cache byte budget (0 disables).
    pub fn cache_resize(&mut self, bytes: usize) -> Result<Json, ClientError> {
        self.roundtrip(&Request::Cache(CacheOp::Resize { bytes }))
    }

    /// Admin: write every in-memory result-cache entry through to the
    /// disk tier (errors if the server runs without one).
    pub fn cache_persist(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(&Request::Cache(CacheOp::Persist))
    }

    /// Admin: stop accepting new submissions and finish accepted work,
    /// keeping the process alive for stats/metrics/admin traffic.
    pub fn drain(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(&Request::Drain)
    }

    /// Admin: fabric topology and health — a router's shard table, or a
    /// single shard's self-report.
    pub fn shards(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(&Request::Shards)
    }
}

fn cache_layer_line(cache: Option<&Json>) -> String {
    match cache {
        Some(c) => {
            let g = |k: &str| c.get(k).and_then(Json::as_u64).unwrap_or(0);
            // The layout cache is weighted in qubit-units; the result
            // cache counts entries and has no `weight` gauge.
            let fill = match c.get("weight").and_then(Json::as_u64) {
                Some(w) => format!("len {}  weight {}/{}", g("len"), w, g("capacity")),
                None => format!("len {}/{}", g("len"), g("capacity")),
            };
            format!(
                "{fill}  hits {}  misses {}  evictions {}",
                g("hits"),
                g("misses"),
                g("evictions")
            )
        }
        None => "unavailable".to_string(),
    }
}

fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us} µs")
    } else if us < 1_000_000 {
        format!("{:.2} ms", us as f64 / 1e3)
    } else {
        format!("{:.3} s", us as f64 / 1e6)
    }
}

/// Render a `STATS` snapshot as the human-readable report that
/// `parallax-client stats` prints: job counters, queue gauge, all four
/// cache layers (per-server result cache, process-wide layout, move-plan,
/// and compiled-template caches), the sweep/rebind counters, the
/// `PARALLAX_PROFILE` stage table, and the latency histogram.
pub fn render_stats(stats: &Json) -> String {
    let n = |key: &str| stats.get(key).and_then(Json::as_u64).unwrap_or(0);
    let mut out = String::new();
    out.push_str(&format!(
        "jobs          submitted {}  completed {}  failed {}  bad_requests {}\n",
        n("submitted"),
        n("completed"),
        n("failed"),
        n("bad_requests")
    ));
    out.push_str(&format!(
        "rejected      queue_full {}  shutdown {}\n",
        n("rejected_full"),
        n("rejected_shutdown")
    ));
    out.push_str(&format!("queue         depth {}/{}\n", n("queue_depth"), n("queue_capacity")));
    out.push_str(&format!("result cache  {}\n", cache_layer_line(stats.get("cache"))));
    if let Some(disk) = stats.get("cache").and_then(|c| c.get("disk")) {
        let line = if disk.get("enabled").and_then(Json::as_bool) == Some(true) {
            let g = |k: &str| disk.get(k).and_then(Json::as_u64).unwrap_or(0);
            format!(
                "len {}  hits {}  misses {}  stores {}  store_errors {}",
                g("len"),
                g("hits"),
                g("misses"),
                g("stores"),
                g("store_errors")
            )
        } else {
            "disabled (start the server with --disk-cache DIR)".to_string()
        };
        out.push_str(&format!("disk cache    {line}\n"));
    }
    out.push_str(&format!("layout cache  {}\n", cache_layer_line(stats.get("layout_cache"))));
    out.push_str(&format!("plan cache    {}\n", cache_layer_line(stats.get("plan_cache"))));
    out.push_str(&format!("tmpl cache    {}\n", cache_layer_line(stats.get("template_cache"))));
    let rebind_mean_ns = n("rebind_ns").checked_div(n("template_cache_hits")).unwrap_or(0);
    out.push_str(&format!(
        "sweeps        points {}  template hits {}  misses {}  rebind mean {} ns\n",
        n("sweep_points"),
        n("template_cache_hits"),
        n("template_cache_misses"),
        rebind_mean_ns
    ));

    if let Some(latency) = stats.get("latency") {
        let g = |k: &str| latency.get(k).and_then(Json::as_u64).unwrap_or(0);
        out.push_str(&format!(
            "latency       count {}  mean {}  max {}\n",
            g("count"),
            fmt_us(g("mean_us")),
            fmt_us(g("max_us"))
        ));
        if let (Some(Json::Arr(bounds)), Some(Json::Arr(counts))) =
            (latency.get("bounds_us"), latency.get("counts"))
        {
            for (bound, count) in bounds.iter().zip(counts) {
                let count = count.as_u64().unwrap_or(0);
                if count == 0 {
                    continue;
                }
                let label = match bound.as_u64() {
                    Some(us) => format!("<= {}", fmt_us(us)),
                    None => "overflow".to_string(),
                };
                out.push_str(&format!("  {label:<12} {count}\n"));
            }
        }
    }

    if let Some(profile) = stats.get("profile") {
        // (rendered last: it is empty in the common, unprofiled case)
        let enabled = profile.get("enabled").and_then(Json::as_bool).unwrap_or(false);
        let stages = match profile.get("stages") {
            Some(Json::Arr(stages)) => stages.as_slice(),
            _ => &[],
        };
        let any = stages.iter().any(|s| s.get("calls").and_then(Json::as_u64).unwrap_or(0) > 0);
        if enabled || any {
            out.push_str("profile       stage times (cumulative)\n");
            for s in stages {
                let name = s.get("stage").and_then(Json::as_str).unwrap_or("?");
                let g = |k: &str| s.get(k).and_then(Json::as_u64).unwrap_or(0);
                out.push_str(&format!(
                    "  {name:<12} calls {:<8} total {:<12} allocs {}\n",
                    g("calls"),
                    fmt_us(g("total_us")),
                    g("allocs")
                ));
            }
        } else {
            out.push_str("profile       disabled (set PARALLAX_PROFILE=1 on the server)\n");
        }
    }
    out.trim_end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    #[test]
    fn renders_every_section_of_a_stats_snapshot() {
        let m = Metrics::default();
        Metrics::inc(&m.submitted);
        Metrics::inc(&m.completed);
        Metrics::inc(&m.cache_hits);
        m.latency.record(250_000);
        let result_cache = Json::obj(vec![
            ("len", Json::Int(2)),
            ("capacity", Json::Int(64)),
            ("hits", Json::Int(1)),
            ("misses", Json::Int(2)),
            ("evictions", Json::Int(0)),
            (
                "disk",
                Json::obj(vec![
                    ("enabled", Json::Bool(true)),
                    ("len", Json::Int(5)),
                    ("hits", Json::Int(3)),
                    ("misses", Json::Int(1)),
                    ("stores", Json::Int(5)),
                    ("store_errors", Json::Int(0)),
                ]),
            ),
        ]);
        Metrics::inc(&m.sweep_points);
        Metrics::inc(&m.sweep_points);
        Metrics::inc(&m.template_cache_hits);
        m.rebind_ns.add(4200);
        let stats = m.to_json(1, 64, result_cache);
        let text = render_stats(&stats);
        assert!(text.contains("jobs          submitted 1  completed 1"), "{text}");
        assert!(text.contains("queue         depth 1/64"), "{text}");
        assert!(text.contains("result cache  len 2/64  hits 1  misses 2"), "{text}");
        assert!(
            text.contains("disk cache    len 5  hits 3  misses 1  stores 5  store_errors 0"),
            "{text}"
        );
        assert!(text.contains("layout cache  len "), "layout-cache layer missing:\n{text}");
        assert!(text.contains("plan cache    len "), "plan-cache layer missing:\n{text}");
        assert!(text.contains("tmpl cache    len "), "template-cache layer missing:\n{text}");
        assert!(
            text.contains("sweeps        points 2  template hits 1  misses 0  rebind mean 4200 ns"),
            "{text}"
        );
        assert!(text.contains("latency       count 1  mean 250.00 ms"), "{text}");
        assert!(text.contains("<= 1.000 s"), "histogram bucket missing:\n{text}");
        assert!(text.contains("profile"), "{text}");
    }

    #[test]
    fn renders_gracefully_with_missing_sections() {
        let text = render_stats(&Json::obj(vec![("submitted", Json::Int(3))]));
        assert!(text.contains("submitted 3"));
        assert!(text.contains("result cache  unavailable"));
        assert!(text.contains("layout cache  unavailable"));
        assert!(text.contains("plan cache    unavailable"));
        assert!(text.contains("tmpl cache    unavailable"));
    }
}
