//! Blocking client for the compile service.
//!
//! One [`ServiceClient`] wraps one TCP connection; requests on a
//! connection are answered strictly in order, so a sequential caller can
//! pair every response with its request (and assert it via the `id` echo).

use crate::json::{self, Json};
use crate::protocol::{encode_request, Request, SubmitRequest};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport problem (connect/read/write).
    Io(std::io::Error),
    /// The server's reply was not a valid response line.
    Protocol(String),
    /// The server answered `{"ok":false,...}`; payload is the error text.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A successful submit response.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitReply {
    /// Whether the result came from the server's cache.
    pub cached: bool,
    /// The client-supplied id, echoed back.
    pub id: Option<u64>,
    /// Server-side latency from arrival to response, µs.
    pub total_us: u64,
    /// The canonical compilation payload (metrics + schedule digest).
    pub result: Json,
}

/// A blocking connection to a `parallax-serve` instance.
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServiceClient {
    /// Connect to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // Tiny request/response messages: disable Nagle so each line goes
        // out immediately instead of waiting on delayed ACKs.
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { reader, writer: stream })
    }

    /// Send one request line and read its response line.
    pub fn roundtrip(&mut self, request: &Request) -> Result<Json, ClientError> {
        self.roundtrip_line(&encode_request(request))
    }

    /// Send a raw wire line (must be one line) and parse the response.
    pub fn roundtrip_line(&mut self, line: &str) -> Result<Json, ClientError> {
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.writer.write_all(framed.as_bytes())?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        let v =
            json::parse(response.trim_end()).map_err(|e| ClientError::Protocol(e.to_string()))?;
        match v.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(v),
            Some(false) => Err(ClientError::Server(
                v.get("error").and_then(Json::as_str).unwrap_or("unknown error").to_string(),
            )),
            None => Err(ClientError::Protocol(format!("response missing 'ok': {response}"))),
        }
    }

    /// Submit a compile job and wait for its result.
    pub fn submit(&mut self, request: SubmitRequest) -> Result<SubmitReply, ClientError> {
        let v = self.roundtrip(&Request::Submit(Box::new(request)))?;
        Ok(SubmitReply {
            cached: v
                .get("cached")
                .and_then(Json::as_bool)
                .ok_or_else(|| ClientError::Protocol("missing 'cached'".into()))?,
            id: v.get("id").and_then(Json::as_u64),
            total_us: v.get("total_us").and_then(Json::as_u64).unwrap_or(0),
            result: v
                .get("result")
                .cloned()
                .ok_or_else(|| ClientError::Protocol("missing 'result'".into()))?,
        })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(&Request::Ping)
    }

    /// Fetch the live metrics snapshot (the `stats` sub-object).
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        let v = self.roundtrip(&Request::Stats)?;
        v.get("stats").cloned().ok_or_else(|| ClientError::Protocol("missing 'stats'".into()))
    }

    /// Ask the server to drain and stop accepting; returns once every
    /// accepted job has completed.
    pub fn shutdown(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(&Request::Shutdown)
    }
}
