//! # `parallax-service`: the concurrent compile server
//!
//! Turns the deterministic Parallax pipeline into a long-running serving
//! subsystem: a multi-threaded TCP server that accepts OpenQASM (or
//! Table III workload) jobs over a newline-delimited JSON protocol,
//! schedules them through a bounded priority queue onto a worker pool,
//! and answers repeat submissions from a content-addressed LRU result
//! cache — without ever recompiling. Everything is `std`-only: the wire
//! protocol, JSON codec, queue, cache, and metrics are hand-rolled
//! because the build environment has no registry access.
//!
//! ## Architecture
//!
//! ```text
//! client ──TCP──▶ connection thread ──▶ bounded priority JobQueue ──▶ worker pool
//!                      │    ▲                                            │
//!                      │    └──────────── reply channel ◀────────────────┤
//!                      ▼                                                 ▼
//!                 result cache ◀───────── canonical payloads ────────────┘
//! ```
//!
//! * Responses on one connection are strictly request-ordered
//!   (index-stable); concurrency comes from many connections.
//! * The cache key is (stable circuit hash, machine+config fingerprint),
//!   so a hit can only serve a payload the compiler would have reproduced
//!   bit-identically ([`cache`], [`protocol::circuit_content_hash`]).
//! * A full queue is backpressure: the submit is refused with a `queue
//!   full` error after `enqueue_timeout_ms`, never silently dropped.
//! * Shutdown drains: accepted jobs all complete and reply before the
//!   `SHUTDOWN` response is sent ([`server`]).
//! * `STATS` reports job counters, queue depth, cache hit rate, and a
//!   log-bucket latency histogram ([`metrics`]).
//! * `METRICS` serves the unified observability registry (service
//!   counters, compiler stage timers, cache gauges, latency histograms)
//!   as Prometheus text exposition; `TRACE` returns the most recent
//!   per-request span trees when the server runs with `PARALLAX_TRACE=1`.
//!   Every submit/sweep/stats response carries a `trace_id` — client
//!   supplied (echoed verbatim) or server-minted 16-hex — correlating it
//!   with those spans.
//! * `submit-sweep` serves variational parameter sweeps: one structure, N
//!   parameter vectors, answered as a streamed header + per-point lines.
//!   The structure compiles once into a process-wide
//!   [`CompiledTemplate`](parallax_core::CompiledTemplate) cache; every
//!   other point is a microsecond-scale parameter rebind, with per-point
//!   `rebind_ns` and `template_cache_hits` reported in `STATS`.
//!
//! ## Running it
//!
//! ```text
//! cargo run --release -p parallax-service --bin parallax-serve -- --addr 127.0.0.1:7878
//! cargo run --release -p parallax-service --bin parallax-client -- \
//!     --addr 127.0.0.1:7878 submit --workload QFT --seed 3
//! cargo run --release -p parallax-service --bin parallax-client -- \
//!     --addr 127.0.0.1:7878 submit path/to/circuit.qasm
//! cargo run --release -p parallax-service --bin parallax-client -- \
//!     --addr 127.0.0.1:7878 sweep --workload QAOA --points 100
//! cargo run --release -p parallax-service --bin parallax-client -- \
//!     --addr 127.0.0.1:7878 stats
//! cargo run --release -p parallax-service --bin parallax-client -- \
//!     --addr 127.0.0.1:7878 shutdown
//! ```
//!
//! Or from code:
//!
//! ```
//! use parallax_service::{start, ServerConfig, ServiceClient, SubmitRequest, SubmitSource};
//!
//! let mut server = start(ServerConfig::default()).unwrap();
//! let mut client = ServiceClient::connect(server.addr()).unwrap();
//! let reply = client
//!     .submit(SubmitRequest {
//!         source: SubmitSource::Workload("ADD".into()),
//!         quick: true,
//!         ..Default::default()
//!     })
//!     .unwrap();
//! assert_eq!(reply.result.get("swaps").and_then(|s| s.as_u64()), Some(0));
//! server.shutdown();
//! ```

pub mod cache;
pub mod client;
pub mod disk;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod router;
pub mod server;
pub mod worker;

pub use cache::{CacheKey, ResultCache};
pub use client::{
    render_stats, ClientError, ServiceClient, SubmitReply, SweepPointReply, SweepReply,
};
pub use disk::DiskCache;
pub use json::{Json, JsonError};
pub use metrics::{LatencyHistogram, Metrics};
/// The bounded priority scheduler now lives in `parallax-core` so batch
/// compilation and the service share one type; re-exported here so
/// `parallax_service::queue::JobQueue` keeps resolving.
pub use parallax_core::queue;
pub use parallax_core::queue::{JobQueue, PushError};
pub use protocol::{
    circuit_content_hash, compile_payload, encode_request, parse_request, schedule_digest, Request,
    SubmitRequest, SubmitSource, SweepRequest, DEFAULT_TRACE_LIMIT,
};
pub use router::{start_router, RouterConfig, RouterHandle};
pub use server::{start, ServerConfig, ServerHandle, ServiceShared};
pub use worker::{Job, JobOutcome};
