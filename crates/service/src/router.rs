//! The fabric front end: a router process that shards compile traffic
//! across N `parallax-serve` workers by consistent hashing on the job's
//! content address.
//!
//! The router speaks the exact same newline-JSON protocol as a shard, so
//! clients (and `parallax-client`) point at either tier unchanged. For a
//! `submit`/`submit-sweep` it resolves the circuit and compiler locally —
//! the identical resolution a shard performs — folds the resulting
//! `(circuit hash, machine+config fingerprint)` cache key onto a
//! consistent-hash ring, and relays the request to the owning shard. Every
//! request for one content address therefore lands on the same shard,
//! keeping that shard's in-memory and disk cache tiers hot for its slice
//! of the keyspace; adding a shard remaps only ~1/N of the ring.
//!
//! Responses are relayed **verbatim** — the router never re-encodes a
//! shard's payload, so the byte-identical-to-direct-compile property the
//! end-to-end suite asserts survives the extra hop. Requests arriving
//! without a `trace_id` get one minted and injected before forwarding, so
//! a `TRACE` query (which fans out and merges shard trees) still yields
//! one tree per request, findable by the id the client saw.
//!
//! Admin-plane fan-out: `CACHE`/`DRAIN`/`SHUTDOWN` broadcast to every
//! shard; `SHARDS` returns the ring topology with per-shard health probes.
//! `PING`/`STATS`/`METRICS` answer locally (the router's own
//! `parallax_router_*` counters live in the process-wide registry).

use crate::json::{self, Json};
use crate::protocol::{encode_request, error_response, parse_request, Request};
use crate::server::{read_frame_capped, FrameRead};
use parallax_trace::Counter;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Shard addresses (`host:port` of running `parallax-serve` processes).
    /// Must be non-empty; ring order follows this list.
    pub shards: Vec<String>,
    /// Virtual nodes per shard on the hash ring. More vnodes smooth the
    /// keyspace split at the cost of a larger ring table.
    pub vnodes: usize,
    /// Hard cap on one request line's length, bytes (mirrors the shard's).
    pub max_line_bytes: usize,
    /// Per-shard connect timeout.
    pub connect_timeout_ms: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            shards: Vec::new(),
            vnodes: 64,
            max_line_bytes: 8 * 1024 * 1024,
            connect_timeout_ms: 2000,
        }
    }
}

/// A consistent-hash ring: each shard owns `vnodes` pseudo-random points;
/// a key routes to the shard owning the first point at or clockwise of it.
pub struct HashRing {
    /// (ring point, shard index), sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
    vnodes: usize,
}

impl HashRing {
    /// Build the ring for `shards` shards with `vnodes` points each.
    pub fn new(shards: usize, vnodes: usize) -> Self {
        let vnodes = vnodes.max(1);
        let mut points: Vec<(u64, usize)> = (0..shards)
            .flat_map(|s| {
                (0..vnodes).map(move |r| {
                    let label = format!("shard-{s}-vnode-{r}");
                    (parallax_qasm::fnv1a_64(label.as_bytes()), s)
                })
            })
            .collect();
        points.sort_unstable();
        Self { points, shards, vnodes }
    }

    /// The shard owning `key`.
    pub fn route(&self, key: u64) -> usize {
        assert!(!self.points.is_empty(), "routing over an empty ring");
        let i = self.points.partition_point(|&(p, _)| p < key);
        self.points[if i == self.points.len() { 0 } else { i }].1
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Virtual nodes per shard.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }
}

/// Fold a two-u64 content address into the single ring key. FNV-1a over
/// the little-endian bytes, matching the hashes used everywhere else.
pub fn ring_key(circuit: u64, compiler: u64) -> u64 {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&circuit.to_le_bytes());
    bytes[8..].copy_from_slice(&compiler.to_le_bytes());
    parallax_qasm::fnv1a_64(&bytes)
}

/// Per-shard observability handles, registered in the process-wide
/// metrics registry under `parallax_router_*`.
struct RouterMetrics {
    /// Requests forwarded to each shard (data plane).
    forwarded: Vec<Counter>,
    /// Transport failures talking to each shard (after the one retry).
    shard_errors: Vec<Counter>,
    /// Requests the router answered itself (ping/stats/metrics/rejects).
    local: Counter,
}

impl RouterMetrics {
    fn new(shards: usize) -> Self {
        use std::sync::atomic::AtomicU64;
        static INSTANCE: AtomicU64 = AtomicU64::new(0);
        let instance = INSTANCE.fetch_add(1, Ordering::Relaxed).to_string();
        let per_shard = |name: &str| {
            (0..shards)
                .map(|s| {
                    parallax_trace::counter(
                        name,
                        &[("shard", &s.to_string()), ("instance", &instance)],
                    )
                })
                .collect()
        };
        Self {
            forwarded: per_shard("parallax_router_forwarded_total"),
            shard_errors: per_shard("parallax_router_shard_errors_total"),
            local: parallax_trace::counter(
                "parallax_router_local_answers_total",
                &[("instance", &instance)],
            ),
        }
    }
}

struct RouterCore {
    shards: Vec<String>,
    ring: HashRing,
    metrics: RouterMetrics,
    addr: SocketAddr,
    exiting: AtomicBool,
    max_line_bytes: usize,
    connect_timeout: Duration,
    started: Instant,
    exit_requested: Mutex<bool>,
    exit: Condvar,
}

/// A running router. Dropping the handle stops its accept loop (the
/// shards it fronts are owned elsewhere and keep running).
pub struct RouterHandle {
    core: Arc<RouterCore>,
    accept_thread: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.core.addr
    }

    /// Stop accepting connections and join the accept loop. Never touches
    /// the shards — a client-initiated `SHUTDOWN` is what drains the
    /// fabric. Idempotent.
    pub fn shutdown(&mut self) {
        self.core.exiting.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.core.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Block until some client's `SHUTDOWN` has fanned out to the shards
    /// and its acknowledgement is on the wire, then stop — the route
    /// daemon's main loop.
    pub fn wait_until_drained(&mut self) {
        {
            let mut requested = self.core.exit_requested.lock().expect("exit lock");
            while !*requested {
                requested = self.core.exit.wait(requested).expect("exit lock");
            }
        }
        self.shutdown();
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start a router per `config`; returns once the listener is bound. Shards
/// are dialed lazily per client connection, so they may come up later.
pub fn start_router(config: RouterConfig) -> std::io::Result<RouterHandle> {
    if config.shards.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "router needs at least one shard address",
        ));
    }
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let core = Arc::new(RouterCore {
        ring: HashRing::new(config.shards.len(), config.vnodes),
        metrics: RouterMetrics::new(config.shards.len()),
        shards: config.shards,
        addr,
        exiting: AtomicBool::new(false),
        max_line_bytes: config.max_line_bytes.max(1),
        connect_timeout: Duration::from_millis(config.connect_timeout_ms.max(1)),
        started: Instant::now(),
        exit_requested: Mutex::new(false),
        exit: Condvar::new(),
    });
    let accept_core = core.clone();
    let accept_thread = std::thread::Builder::new()
        .name("parallax-route-accept".to_string())
        .spawn(move || accept_loop(&listener, &accept_core))?;
    Ok(RouterHandle { core, accept_thread: Some(accept_thread) })
}

fn accept_loop(listener: &TcpListener, core: &Arc<RouterCore>) {
    for stream in listener.incoming() {
        if core.exiting.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let core = core.clone();
        let _ = std::thread::Builder::new()
            .name("parallax-route-conn".to_string())
            .spawn(move || handle_client(stream, &core));
    }
}

/// One pooled connection from this client's handler thread to a shard.
/// Each client connection owns its own pool, so shard links are never
/// shared across client threads and responses can't interleave.
struct ShardConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ShardConn {
    fn connect(addr: &str, timeout: Duration) -> std::io::Result<Self> {
        let resolved: Vec<SocketAddr> = std::net::ToSocketAddrs::to_socket_addrs(addr)?.collect();
        let first = resolved.first().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "no address resolved")
        })?;
        let stream = TcpStream::connect_timeout(first, timeout)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { reader, writer: stream })
    }

    /// Send one wire line, read one response line.
    fn roundtrip(&mut self, line: &str) -> std::io::Result<String> {
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.writer.write_all(framed.as_bytes())?;
        self.read_line()
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "shard closed the connection",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }
}

/// The per-client pool of shard connections, dialed lazily.
struct ShardPool {
    conns: Vec<Option<ShardConn>>,
}

impl ShardPool {
    fn new(shards: usize) -> Self {
        Self { conns: (0..shards).map(|_| None).collect() }
    }

    /// One request/response exchange with shard `idx`. A transport failure
    /// drops the pooled connection and retries once on a fresh dial — a
    /// shard that restarted (the disk-tier warm-restart flow) is picked
    /// back up transparently.
    fn exchange(&mut self, core: &RouterCore, idx: usize, line: &str) -> Result<String, String> {
        for attempt in 0..2 {
            if self.conns[idx].is_none() {
                match ShardConn::connect(&core.shards[idx], core.connect_timeout) {
                    Ok(conn) => self.conns[idx] = Some(conn),
                    Err(e) => {
                        if attempt == 1 {
                            core.metrics.shard_errors[idx].inc();
                            return Err(format!(
                                "shard {idx} ({}) unreachable: {e}",
                                core.shards[idx]
                            ));
                        }
                        continue;
                    }
                }
            }
            match self.conns[idx].as_mut().expect("pooled conn").roundtrip(line) {
                Ok(response) => return Ok(response),
                Err(e) => {
                    self.conns[idx] = None;
                    if attempt == 1 {
                        core.metrics.shard_errors[idx].inc();
                        return Err(format!("shard {idx} ({}) failed: {e}", core.shards[idx]));
                    }
                }
            }
        }
        unreachable!("both exchange attempts returned")
    }

    /// Read one additional already-in-flight line from shard `idx` (sweep
    /// point lines following a header). No retry: a mid-stream failure
    /// must surface, not resend the whole sweep.
    fn read_extra_line(&mut self, core: &RouterCore, idx: usize) -> Result<String, String> {
        match self.conns[idx].as_mut() {
            Some(conn) => conn.read_line().map_err(|e| {
                self.conns[idx] = None;
                core.metrics.shard_errors[idx].inc();
                format!("shard {idx} ({}) died mid-sweep: {e}", core.shards[idx])
            }),
            None => Err(format!("shard {idx} connection lost mid-sweep")),
        }
    }
}

fn handle_client(stream: TcpStream, core: &Arc<RouterCore>) {
    let _ = stream.set_nodelay(true);
    let Ok(reader_stream) = stream.try_clone() else { return };
    let mut writer = stream;
    let mut reader = BufReader::new(reader_stream);
    let mut pool = ShardPool::new(core.shards.len());
    loop {
        let (mut response, was_shutdown) = match read_frame_capped(&mut reader, core.max_line_bytes)
        {
            Err(_) | Ok(FrameRead::Eof) => break,
            Ok(FrameRead::Oversized) => (
                error_response(
                    &format!("request line exceeds {} bytes", core.max_line_bytes),
                    None,
                ),
                false,
            ),
            Ok(FrameRead::Line(bytes)) => match String::from_utf8(bytes) {
                Err(_) => (error_response("request line is not valid UTF-8", None), false),
                Ok(line) if line.trim().is_empty() => continue,
                Ok(line) => route_request(&line, core, &mut pool),
            },
        };
        response.push('\n');
        let written = writer.write_all(response.as_bytes());
        if was_shutdown {
            *core.exit_requested.lock().expect("exit lock") = true;
            core.exit.notify_all();
        }
        if written.is_err() {
            break;
        }
    }
}

/// Dispatch one request line: answer locally, forward to the owning
/// shard, or fan out across all shards. Always returns one response
/// (sweeps: one header + N point lines, newline-joined like the shard's).
fn route_request(line: &str, core: &Arc<RouterCore>, pool: &mut ShardPool) -> (String, bool) {
    match parse_request(line) {
        Err(e) => {
            core.metrics.local.inc();
            (error_response(&e, None), false)
        }
        Ok(Request::Ping) => {
            core.metrics.local.inc();
            (
                Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("pong", Json::Bool(true)),
                    ("role", Json::Str("router".into())),
                    ("uptime_us", Json::Int(core.started.elapsed().as_micros() as u64)),
                ])
                .encode(),
                false,
            )
        }
        Ok(Request::Stats) => {
            core.metrics.local.inc();
            (router_stats_response(core), false)
        }
        Ok(Request::Metrics) => {
            core.metrics.local.inc();
            (
                Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("metrics", Json::Str(parallax_trace::render_prometheus())),
                ])
                .encode(),
                false,
            )
        }
        Ok(Request::Trace { limit }) => (merged_trace_response(core, pool, limit), false),
        Ok(Request::Shards) => (topology_response(core, pool), false),
        Ok(Request::Cache(op)) => (fan_out_response(core, pool, &Request::Cache(op)), false),
        Ok(Request::Drain) => (fan_out_response(core, pool, &Request::Drain), false),
        Ok(Request::Shutdown) => {
            // Drain every shard first; only then acknowledge, so "drained"
            // means the whole fabric finished its accepted work.
            let response = fan_out_response(core, pool, &Request::Shutdown);
            (response, true)
        }
        Ok(Request::Submit(mut req)) => {
            let routed = match route_key_for(&req) {
                Ok(key) => key,
                Err(e) => {
                    core.metrics.local.inc();
                    return (error_response(&e, req.id), false);
                }
            };
            inject_trace(&mut req.trace);
            let shard = core.ring.route(routed);
            core.metrics.forwarded[shard].inc();
            let wire = encode_request(&Request::Submit(req.clone()));
            match pool.exchange(core, shard, &wire) {
                Ok(response) => (response, false),
                Err(e) => (error_response(&e, req.id), false),
            }
        }
        Ok(Request::SubmitSweep(mut req)) => {
            let routed = match route_key_for(&req.submit) {
                Ok(key) => key,
                Err(e) => {
                    core.metrics.local.inc();
                    return (error_response(&e, req.submit.id), false);
                }
            };
            inject_trace(&mut req.submit.trace);
            let shard = core.ring.route(routed);
            core.metrics.forwarded[shard].inc();
            let id = req.submit.id;
            let wire = encode_request(&Request::SubmitSweep(req));
            (forward_sweep(core, pool, shard, &wire, id), false)
        }
    }
}

/// Mint and inject a wire trace id when the client did not supply one, so
/// the shard annotates its span tree with an id the router's merged
/// `TRACE` (and the client's response echo) can find.
fn inject_trace(trace: &mut Option<String>) {
    if trace.is_none() {
        *trace = Some(format!("{:016x}", parallax_trace::next_trace_id()));
    }
}

/// Resolve the submission exactly as a shard would and fold its content
/// address onto the ring. Invalid submissions fail here — the router
/// rejects them with the same error text a shard would, without burning a
/// forward.
fn route_key_for(req: &crate::protocol::SubmitRequest) -> Result<u64, String> {
    let compiler = req.build_compiler()?;
    let circuit = req.resolve_circuit()?;
    if circuit.num_qubits() > compiler.machine().num_sites() {
        return Err(format!(
            "circuit needs {} qubits but {} has {} sites",
            circuit.num_qubits(),
            compiler.machine().name,
            compiler.machine().num_sites()
        ));
    }
    Ok(ring_key(crate::protocol::circuit_content_hash(&circuit), compiler.fingerprint()))
}

/// Forward a sweep and relay its streamed response: the header line names
/// how many point lines follow; read and relay exactly that many.
fn forward_sweep(
    core: &RouterCore,
    pool: &mut ShardPool,
    shard: usize,
    wire: &str,
    id: Option<u64>,
) -> String {
    let header = match pool.exchange(core, shard, wire) {
        Ok(h) => h,
        Err(e) => return error_response(&e, id),
    };
    let parsed = match json::parse(&header) {
        Ok(p) => p,
        Err(e) => return error_response(&format!("shard {shard} sent invalid JSON: {e}"), id),
    };
    let is_sweep = parsed.get("ok").and_then(Json::as_bool) == Some(true)
        && parsed.get("sweep").and_then(Json::as_bool) == Some(true);
    if !is_sweep {
        return header; // single-line refusal/error: relay verbatim
    }
    let points = parsed.get("points").and_then(Json::as_u64).unwrap_or(0);
    let mut lines = Vec::with_capacity(points as usize + 1);
    lines.push(header);
    for _ in 0..points {
        match pool.read_extra_line(core, shard) {
            Ok(line) => lines.push(line),
            Err(e) => return error_response(&e, id),
        }
    }
    lines.join("\n")
}

/// The router's own `STATS`: role, topology size, and per-shard forwarding
/// counters (the richer per-shard vitals live behind `SHARDS`).
fn router_stats_response(core: &RouterCore) -> String {
    let per_shard =
        |counters: &[Counter]| Json::Arr(counters.iter().map(|c| Json::Int(c.get())).collect());
    let stats = Json::obj(vec![
        ("role", Json::Str("router".into())),
        ("shards", Json::Int(core.shards.len() as u64)),
        ("vnodes", Json::Int(core.ring.vnodes() as u64)),
        ("uptime_us", Json::Int(core.started.elapsed().as_micros() as u64)),
        ("forwarded", per_shard(&core.metrics.forwarded)),
        ("shard_errors", per_shard(&core.metrics.shard_errors)),
        ("local_answers", Json::Int(core.metrics.local.get())),
    ]);
    let trace = format!("{:016x}", parallax_trace::next_trace_id());
    Json::obj(vec![("ok", Json::Bool(true)), ("trace_id", Json::Str(trace)), ("stats", stats)])
        .encode()
}

/// Fan an admin request out to every shard and report per-shard outcomes.
fn fan_out_response(core: &RouterCore, pool: &mut ShardPool, request: &Request) -> String {
    let wire = encode_request(request);
    let mut oks = 0u64;
    let results: Vec<Json> = (0..core.shards.len())
        .map(|i| match pool.exchange(core, i, &wire) {
            Ok(response) => {
                let parsed = json::parse(&response).unwrap_or(Json::Null);
                if parsed.get("ok").and_then(Json::as_bool) == Some(true) {
                    oks += 1;
                }
                Json::obj(vec![
                    ("index", Json::Int(i as u64)),
                    ("addr", Json::Str(core.shards[i].clone())),
                    ("response", parsed),
                ])
            }
            Err(e) => Json::obj(vec![
                ("index", Json::Int(i as u64)),
                ("addr", Json::Str(core.shards[i].clone())),
                ("error", Json::Str(e)),
            ]),
        })
        .collect();
    let mut pairs = vec![
        ("ok", Json::Bool(oks == core.shards.len() as u64)),
        ("role", Json::Str("router".into())),
        ("shards_ok", Json::Int(oks)),
    ];
    if matches!(request, Request::Shutdown | Request::Drain) {
        pairs.push(("drained", Json::Bool(oks == core.shards.len() as u64)));
    }
    pairs.push(("shards", Json::Arr(results)));
    Json::obj(pairs).encode()
}

/// The `SHARDS` topology: ring parameters plus a live health probe of
/// every shard (its own `SHARDS` self-report, or the transport error).
fn topology_response(core: &RouterCore, pool: &mut ShardPool) -> String {
    let wire = encode_request(&Request::Shards);
    let shards: Vec<Json> = (0..core.shards.len())
        .map(|i| {
            let mut pairs = vec![
                ("index", Json::Int(i as u64)),
                ("addr", Json::Str(core.shards[i].clone())),
                ("forwarded", Json::Int(core.metrics.forwarded[i].get())),
                ("errors", Json::Int(core.metrics.shard_errors[i].get())),
            ];
            match pool.exchange(core, i, &wire) {
                Ok(response) => {
                    let parsed = json::parse(&response).unwrap_or(Json::Null);
                    pairs.push(("reachable", Json::Bool(true)));
                    pairs.push(("info", parsed));
                }
                Err(e) => {
                    pairs.push(("reachable", Json::Bool(false)));
                    pairs.push(("error", Json::Str(e)));
                }
            }
            Json::obj(pairs)
        })
        .collect();
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("role", Json::Str("router".into())),
        ("vnodes", Json::Int(core.ring.vnodes() as u64)),
        ("shards", Json::Arr(shards)),
    ])
    .encode()
}

/// The router's `TRACE`: its own recent span trees plus every shard's,
/// merged into one `traces` array. Shard trees carry the router-injected
/// wire id as `client_trace_id`, which is the id the client saw — so one
/// logical request still yields one findable tree across the fabric.
fn merged_trace_response(core: &RouterCore, pool: &mut ShardPool, limit: usize) -> String {
    let mut traces: Vec<Json> = parallax_trace::recent_traces(limit)
        .iter()
        .map(|t| {
            let events: Vec<Json> = t
                .events
                .iter()
                .map(|e| {
                    Json::obj(vec![
                        ("name", Json::Str(e.name.to_string())),
                        ("tid", Json::Int(u64::from(e.tid))),
                        ("depth", Json::Int(u64::from(e.depth))),
                        ("ts_ns", Json::Int(e.ts_ns)),
                        ("dur_ns", Json::Int(e.dur_ns)),
                    ])
                })
                .collect();
            Json::obj(vec![
                ("trace_id", Json::Str(format!("{:016x}", t.trace_id))),
                ("source", Json::Str("router".into())),
                ("events", Json::Arr(events)),
            ])
        })
        .collect();
    let mut dropped = parallax_trace::dropped_events();
    let mut enabled = parallax_trace::enabled();
    let wire = encode_request(&Request::Trace { limit });
    for i in 0..core.shards.len() {
        let Ok(response) = pool.exchange(core, i, &wire) else { continue };
        let Ok(parsed) = json::parse(&response) else { continue };
        enabled |= parsed.get("enabled").and_then(Json::as_bool).unwrap_or(false);
        dropped += parsed.get("dropped_events").and_then(Json::as_u64).unwrap_or(0);
        if let Some(Json::Arr(shard_traces)) = parsed.get("traces") {
            for tree in shard_traces {
                let mut pairs = vec![("source", Json::Str(format!("shard-{i}")))];
                if let Json::Obj(fields) = tree {
                    for (k, v) in fields {
                        pairs.push((k.as_str(), v.clone()));
                    }
                }
                let owned: Vec<(String, Json)> =
                    pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
                traces.push(Json::Obj(owned));
            }
        }
    }
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("enabled", Json::Bool(enabled)),
        ("dropped_events", Json::Int(dropped)),
        ("traces", Json::Arr(traces)),
    ])
    .encode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ServiceClient;
    use crate::protocol::{SubmitRequest, SubmitSource};
    use crate::server::{start, ServerConfig};

    #[test]
    fn ring_routes_deterministically_and_covers_every_shard() {
        let ring = HashRing::new(3, 64);
        let mut owners = vec![0usize; 3];
        for i in 0..10_000u64 {
            let key = ring_key(i, i.wrapping_mul(0x9E3779B97F4A7C15));
            let shard = ring.route(key);
            assert_eq!(shard, ring.route(key), "routing must be a pure function");
            owners[shard] += 1;
        }
        for (i, n) in owners.iter().enumerate() {
            assert!(
                *n > 1000,
                "shard {i} owns {n}/10000 keys; vnodes should spread the ring: {owners:?}"
            );
        }
    }

    #[test]
    fn growing_the_ring_remaps_only_a_fraction_of_keys() {
        let two = HashRing::new(2, 64);
        let three = HashRing::new(3, 64);
        let keys: Vec<u64> = (0..4096u64).map(|i| ring_key(i, !i)).collect();
        let moved = keys
            .iter()
            .filter(|&&k| {
                let before = two.route(k);
                let after = three.route(k);
                before != after && after != 2
            })
            .count();
        // Consistent hashing: keys either stay put or move to the *new*
        // shard; cross-migration between surviving shards is rare.
        assert!(
            moved < keys.len() / 8,
            "{moved}/{} keys migrated between surviving shards",
            keys.len()
        );
    }

    #[test]
    fn route_key_matches_shard_cache_key_inputs() {
        let req = SubmitRequest {
            source: SubmitSource::Workload("ADD".into()),
            seed: 3,
            quick: true,
            ..Default::default()
        };
        let a = route_key_for(&req).unwrap();
        let b = route_key_for(&req).unwrap();
        assert_eq!(a, b);
        let other = SubmitRequest { seed: 4, ..req.clone() };
        assert_ne!(a, route_key_for(&other).unwrap(), "seed steers the key");
        let bad = SubmitRequest { machine: "ibm".into(), ..req };
        assert!(route_key_for(&bad).is_err());
    }

    /// Full in-process fabric: 2 real shards behind a router, exercised
    /// over real sockets with the library client.
    #[test]
    fn router_fronts_two_shards_transparently() {
        let shard_cfg = || ServerConfig {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 1 << 20,
            ..Default::default()
        };
        let shard_a = start(shard_cfg()).expect("shard a");
        let shard_b = start(shard_cfg()).expect("shard b");
        let mut router = start_router(RouterConfig {
            shards: vec![shard_a.addr().to_string(), shard_b.addr().to_string()],
            ..Default::default()
        })
        .expect("router");

        let mut client = ServiceClient::connect(router.addr()).expect("connect");
        let pong = client.ping().unwrap();
        assert_eq!(pong.get("role").and_then(Json::as_str), Some("router"));

        // Several distinct jobs: all compile, repeats are cache hits on
        // whichever shard owns them, and every response carries a trace id.
        for seed in 0..4u64 {
            let submit = || SubmitRequest {
                source: SubmitSource::Workload("ADD".into()),
                seed,
                quick: true,
                id: Some(seed),
                ..Default::default()
            };
            let first = client.submit(submit()).unwrap();
            assert!(!first.cached, "seed {seed} must be cold");
            assert_eq!(first.id, Some(seed));
            assert_eq!(first.trace_id.len(), 16, "router-minted id: {}", first.trace_id);
            let repeat = client.submit(submit()).unwrap();
            assert!(repeat.cached, "seed {seed} repeat must hit its shard's cache");
            assert_eq!(repeat.result.encode(), first.result.encode());
        }

        // The keyspace actually sharded: both shards saw forwards.
        let stats = client.stats().unwrap();
        assert_eq!(stats.get("role").and_then(Json::as_str), Some("router"));
        let Some(Json::Arr(forwarded)) = stats.get("forwarded") else {
            panic!("stats must carry per-shard forwarded counters")
        };
        let counts: Vec<u64> = forwarded.iter().filter_map(Json::as_u64).collect();
        assert_eq!(counts.len(), 2);
        assert_eq!(counts.iter().sum::<u64>(), 8, "{counts:?}");

        // Topology probe reaches both shards.
        let topo = client.roundtrip(&Request::Shards).unwrap();
        let Some(Json::Arr(shards)) = topo.get("shards") else { panic!("missing shards") };
        assert_eq!(shards.len(), 2);
        for s in shards {
            assert_eq!(s.get("reachable").and_then(Json::as_bool), Some(true), "{topo:?}");
            let info = s.get("info").expect("probe payload");
            assert_eq!(info.get("role").and_then(Json::as_str), Some("shard"));
        }

        // Admin fan-out: flush both result caches, then a repeat recompiles.
        let flushed = client.roundtrip(&Request::Cache(crate::protocol::CacheOp::Flush)).unwrap();
        assert_eq!(flushed.get("shards_ok").and_then(Json::as_u64), Some(2));
        let recompiled = client
            .submit(SubmitRequest {
                source: SubmitSource::Workload("ADD".into()),
                seed: 0,
                quick: true,
                ..Default::default()
            })
            .unwrap();
        assert!(!recompiled.cached, "flush must have emptied the owning shard");

        // Sweep relays its full multi-line stream through the router.
        let sweep = client
            .submit_sweep(crate::protocol::SweepRequest {
                submit: SubmitRequest {
                    source: SubmitSource::Qasm(
                        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\n\
                         u3(0.1,0.2,0.3) q[0];\ncz q[0],q[1];\n"
                            .into(),
                    ),
                    quick: true,
                    ..Default::default()
                },
                params: vec![vec![0.1, 0.2, 0.3], vec![0.4, 0.5, 0.6]],
            })
            .unwrap();
        assert_eq!(sweep.points.len(), 2);
        assert_eq!(sweep.points[0].result.encode(), sweep.points[1].result.encode());

        // SHUTDOWN drains the whole fabric through one request.
        let drained = client.shutdown().unwrap();
        assert_eq!(drained.get("drained").and_then(Json::as_bool), Some(true));
        assert_eq!(drained.get("shards_ok").and_then(Json::as_u64), Some(2));
        router.shutdown();
        drop(shard_a);
        drop(shard_b);
    }

    #[test]
    fn router_refuses_bad_submissions_without_a_shard() {
        // No shard is listening on this address; a bad submit must still be
        // rejected locally, and transport failures must be structured.
        let mut router = start_router(RouterConfig {
            shards: vec!["127.0.0.1:1".to_string()],
            connect_timeout_ms: 200,
            ..Default::default()
        })
        .expect("router");
        let mut client = ServiceClient::connect(router.addr()).expect("connect");
        let bad = client.submit(SubmitRequest {
            source: SubmitSource::Workload("NOPE".into()),
            ..Default::default()
        });
        match bad {
            Err(crate::client::ClientError::Server(e)) => {
                assert!(e.contains("unknown workload"), "{e}")
            }
            other => panic!("expected a local rejection, got {other:?}"),
        }
        let unreachable = client.submit(SubmitRequest {
            source: SubmitSource::Workload("ADD".into()),
            quick: true,
            ..Default::default()
        });
        match unreachable {
            Err(crate::client::ClientError::Server(e)) => {
                assert!(e.contains("shard 0"), "{e}")
            }
            other => panic!("expected a shard transport error, got {other:?}"),
        }
        router.shutdown();
    }

    #[test]
    fn empty_shard_list_is_refused() {
        assert!(start_router(RouterConfig::default()).is_err());
    }
}
