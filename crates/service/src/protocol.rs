//! The newline-delimited wire protocol of the compile service.
//!
//! Every request and response is one line of JSON (embedded newlines in
//! QASM sources are JSON-escaped, so framing never breaks). Requests carry
//! a `cmd` discriminator:
//!
//! ```text
//! {"cmd":"submit","qasm":"OPENQASM 2.0;...","seed":0,"machine":"quera","quick":true}
//! {"cmd":"submit","workload":"QFT","seed":3,"priority":9,"id":17}
//! {"cmd":"submit-sweep","workload":"QAOA","seed":3,"params":[[0.1,0.2],[0.3,0.4]]}
//! {"cmd":"stats"}
//! {"cmd":"ping"}
//! {"cmd":"shutdown"}
//! {"cmd":"cache","op":"flush"}
//! {"cmd":"cache","op":"resize","bytes":8388608}
//! {"cmd":"cache","op":"persist"}
//! {"cmd":"drain"}
//! {"cmd":"shards"}
//! ```
//!
//! The last five are the **admin plane** (see `docs/FABRIC.md`): result
//! cache management, draining a shard without killing its process, and
//! fabric topology. They ride the same newline-JSON framing as data ops,
//! so one client speaks both.
//!
//! Responses are `{"ok":true,...}` or `{"ok":false,"error":"..."}`. A
//! submit response embeds the canonical compilation payload under
//! `"result"` (see [`compile_payload`]); because the [`crate::json`]
//! encoder is canonical, that payload is **byte-identical** to the payload
//! an in-process `ParallaxCompiler::compile` call produces for the same
//! circuit, seed, machine, and knobs — the property the end-to-end suite
//! asserts.
//!
//! `submit-sweep` is the variational fast path: one circuit *structure*
//! plus N parameter vectors. The server compiles (or fetches) the
//! [`CompiledTemplate`](parallax_core::CompiledTemplate) once and answers
//! with a **stream of N+1 lines** — a sweep header, then one response line
//! per parameter point carrying its rebind timing and the shared payload.
//! A sweep that fails validation (wrong arity, non-finite angles, empty
//! `params`) is refused with a single structured error line before any
//! compilation happens.

use crate::json::{self, Json};
use parallax_circuit::{from_qasm, optimize, Circuit};
use parallax_core::{CompilationResult, CompilerConfig, ParallaxCompiler, SchedulingMode};
use parallax_graphine::PlacementConfig;
use parallax_hardware::{MachineSpec, StableHasher};

/// How a submit names its circuit: inline QASM text or a Table III
/// workload acronym.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitSource {
    /// OpenQASM 2.0 source text.
    Qasm(String),
    /// A `parallax-workloads` registry acronym (e.g. `"QFT"`).
    Workload(String),
}

/// A parsed submit request.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// The circuit to compile.
    pub source: SubmitSource,
    /// Seed for every stochastic stage (and workload generation).
    pub seed: u64,
    /// Target machine: `"quera"` (256 sites) or `"atom"` (1225 sites).
    pub machine: String,
    /// Optional AOD row/column override (Fig. 13 knob).
    pub aod_dim: Option<usize>,
    /// Use the fast placement preset (`PlacementConfig::quick`) instead of
    /// the paper-fidelity default.
    pub quick: bool,
    /// Home-return behaviour (Fig. 12 ablation arm).
    pub return_home: bool,
    /// Scheduler arm (wire key `scheduling`): `"single"` (default, paper
    /// Algorithm 1) or `"multi-mover"` (the ROADMAP item 3 ablation).
    pub scheduling: SchedulingMode,
    /// Scheduling priority, 0..=9; higher pops first.
    pub priority: u8,
    /// Optional client-chosen id echoed back in the response, so clients
    /// can assert responses are index-stable.
    pub id: Option<u64>,
    /// Optional client-supplied trace id (wire key `trace_id`): echoed
    /// verbatim in every response line for cross-system correlation. When
    /// absent the server mints one (16 hex digits) and returns it.
    pub trace: Option<String>,
}

/// A parsed submit-sweep request: one circuit structure, N parameter
/// vectors. The submit fields name the structure, machine, and knobs
/// exactly as for a plain submit; `priority` is ignored (sweeps are served
/// inline on the connection, not through the worker queue).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRequest {
    /// The circuit/machine/knobs the whole sweep shares.
    pub submit: SubmitRequest,
    /// One parameter vector per sweep point; each must match the
    /// structure's slot count (validated against the template server-side).
    pub params: Vec<Vec<f64>>,
}

/// An admin operation on the result-cache tier (`{"cmd":"cache",...}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOp {
    /// Drop every in-memory entry (the disk tier is untouched).
    Flush,
    /// Change the in-memory byte budget at runtime (0 disables).
    Resize {
        /// New capacity in payload bytes.
        bytes: usize,
    },
    /// Write every in-memory entry through to the disk tier.
    Persist,
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Compile a circuit.
    Submit(Box<SubmitRequest>),
    /// Compile one structure, rebind N parameter vectors.
    SubmitSweep(Box<SweepRequest>),
    /// Report live service metrics.
    Stats,
    /// Prometheus text exposition of the process-wide metrics registry.
    Metrics,
    /// The last N compile traces from the span ring buffer.
    Trace {
        /// Maximum number of traces to return.
        limit: usize,
    },
    /// Liveness probe.
    Ping,
    /// Drain in-flight work and stop accepting jobs.
    Shutdown,
    /// Admin: manage the result cache (flush / resize / persist).
    Cache(CacheOp),
    /// Admin: stop accepting new submissions and finish accepted work,
    /// but keep the process alive for stats/metrics/admin traffic.
    Drain,
    /// Admin: fabric topology and per-shard health. A router answers with
    /// its shard table; a plain shard answers with its own role and vitals.
    Shards,
}

/// Default number of traces a `TRACE` op returns.
pub const DEFAULT_TRACE_LIMIT: usize = 4;

/// Highest accepted priority (inclusive).
pub const MAX_PRIORITY: u8 = 9;
/// Default submit priority.
pub const DEFAULT_PRIORITY: u8 = 5;

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = json::parse(line).map_err(|e| e.to_string())?;
    let cmd = v.get("cmd").and_then(Json::as_str).ok_or("missing string field 'cmd'")?;
    match cmd {
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "trace" => Ok(Request::Trace {
            limit: match v.get("limit") {
                None => DEFAULT_TRACE_LIMIT,
                Some(n) => n
                    .as_u64()
                    .filter(|&n| n >= 1)
                    .map(|n| n as usize)
                    .ok_or("'limit' must be a positive number")?,
            },
        }),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        "drain" => Ok(Request::Drain),
        "shards" => Ok(Request::Shards),
        "cache" => {
            let op = v.get("op").and_then(Json::as_str).ok_or("cache needs a string 'op' field")?;
            match op {
                "flush" => Ok(Request::Cache(CacheOp::Flush)),
                "persist" => Ok(Request::Cache(CacheOp::Persist)),
                "resize" => {
                    let bytes = v
                        .get("bytes")
                        .and_then(Json::as_u64)
                        .ok_or("cache resize needs a non-negative 'bytes' field")?;
                    Ok(Request::Cache(CacheOp::Resize { bytes: bytes as usize }))
                }
                other => Err(format!("unknown cache op '{other}' (flush|resize|persist)")),
            }
        }
        "submit" => Ok(Request::Submit(Box::new(parse_submit_fields(&v)?))),
        "submit-sweep" => Ok(Request::SubmitSweep(Box::new(SweepRequest {
            submit: parse_submit_fields(&v)?,
            params: parse_sweep_params(&v)?,
        }))),
        other => Err(format!("unknown cmd '{other}'")),
    }
}

/// The submit fields shared by `submit` and `submit-sweep`.
fn parse_submit_fields(v: &Json) -> Result<SubmitRequest, String> {
    let qasm = v.get("qasm").and_then(Json::as_str);
    let workload = v.get("workload").and_then(Json::as_str);
    let source = match (qasm, workload) {
        (Some(q), None) => SubmitSource::Qasm(q.to_string()),
        (None, Some(w)) => SubmitSource::Workload(w.to_string()),
        (Some(_), Some(_)) => return Err("provide 'qasm' or 'workload', not both".into()),
        (None, None) => return Err("submit needs a 'qasm' or 'workload' field".into()),
    };
    let priority = match v.get("priority") {
        None => DEFAULT_PRIORITY,
        Some(p) => {
            let p = p.as_u64().ok_or("'priority' must be a non-negative number")?;
            u8::try_from(p)
                .ok()
                .filter(|p| *p <= MAX_PRIORITY)
                .ok_or_else(|| format!("'priority' must be in 0..={MAX_PRIORITY}, got {p}"))?
        }
    };
    let scheduling = match v.get("scheduling").and_then(Json::as_str) {
        None | Some("single") => SchedulingMode::Single,
        Some("multi-mover") => SchedulingMode::MultiMover,
        Some(other) => {
            return Err(format!("unknown scheduling '{other}' (use 'single' or 'multi-mover')"))
        }
    };
    Ok(SubmitRequest {
        source,
        seed: v.get("seed").and_then(Json::as_u64).unwrap_or(0),
        machine: v.get("machine").and_then(Json::as_str).unwrap_or("quera").to_string(),
        aod_dim: v.get("aod_dim").and_then(Json::as_u64).map(|n| n as usize),
        quick: v.get("quick").and_then(Json::as_bool).unwrap_or(false),
        return_home: v.get("return_home").and_then(Json::as_bool).unwrap_or(true),
        scheduling,
        priority,
        id: v.get("id").and_then(Json::as_u64),
        trace: v.get("trace_id").and_then(Json::as_str).map(str::to_string),
    })
}

/// The `params` array of a `submit-sweep`: non-empty, every point an array
/// of numbers. Arity and finiteness are checked against the resolved
/// template server-side (the slot count is a property of the circuit, not
/// the wire line).
fn parse_sweep_params(v: &Json) -> Result<Vec<Vec<f64>>, String> {
    let Some(Json::Arr(points)) = v.get("params") else {
        return Err("submit-sweep needs a 'params' array of parameter vectors".into());
    };
    if points.is_empty() {
        return Err("empty sweep: 'params' must contain at least one parameter vector".into());
    }
    points
        .iter()
        .enumerate()
        .map(|(i, point)| {
            let Json::Arr(values) = point else {
                return Err(format!("'params[{i}]' must be an array of numbers"));
            };
            values
                .iter()
                .enumerate()
                .map(|(j, value)| {
                    value.as_f64().ok_or_else(|| format!("'params[{i}][{j}]' must be a number"))
                })
                .collect()
        })
        .collect()
}

impl SubmitRequest {
    /// Resolve the target [`MachineSpec`].
    pub fn machine_spec(&self) -> Result<MachineSpec, String> {
        let mut spec = match self.machine.as_str() {
            "quera" => MachineSpec::quera_aquila_256(),
            "atom" => MachineSpec::atom_1225(),
            other => return Err(format!("unknown machine '{other}' (use 'quera' or 'atom')")),
        };
        if let Some(dim) = self.aod_dim {
            if dim == 0 {
                return Err("'aod_dim' must be positive".into());
            }
            spec = spec.with_aod_dim(dim);
        }
        Ok(spec)
    }

    /// Build the [`CompilerConfig`] this submission asks for. Shared by the
    /// server and by tests computing the expected direct-compile result, so
    /// both sides derive the identical configuration.
    pub fn compiler_config(&self) -> CompilerConfig {
        let placement = if self.quick {
            PlacementConfig::quick(self.seed)
        } else {
            PlacementConfig { seed: self.seed, ..Default::default() }
        };
        CompilerConfig {
            seed: self.seed,
            placement,
            return_home: self.return_home,
            scheduling: self.scheduling,
            ..Default::default()
        }
    }

    /// Build the compiler for this submission.
    pub fn build_compiler(&self) -> Result<ParallaxCompiler, String> {
        Ok(ParallaxCompiler::new(self.machine_spec()?, self.compiler_config()))
    }

    /// Resolve the circuit: parse + lower + peephole-optimize QASM, or
    /// generate the named workload (already optimized by the registry).
    pub fn resolve_circuit(&self) -> Result<Circuit, String> {
        match &self.source {
            SubmitSource::Qasm(text) => {
                let program = parallax_qasm::parse(text).map_err(|e| e.to_string())?;
                let raw = from_qasm(&program).map_err(|e| e.to_string())?;
                Ok(optimize(&raw))
            }
            SubmitSource::Workload(name) => parallax_workloads::benchmark(name)
                .map(|b| b.circuit(self.seed))
                .ok_or_else(|| format!("unknown workload '{name}'")),
        }
    }
}

/// Stable content hash of the exact circuit fed to the compiler: the
/// FNV-1a hash of its canonical QASM rendering. Whitespace and comment
/// differences in submitted text vanish during parsing, so equivalent
/// submissions share a hash.
pub fn circuit_content_hash(circuit: &Circuit) -> u64 {
    parallax_qasm::fnv1a_64(circuit.to_qasm().as_bytes())
}

/// Deterministic digest of the *full* schedule — gate order, per-layer
/// structure, every planned move, AOD selection, and home positions (by
/// f64 bit pattern). Two compilations agree on this digest iff they
/// produced bit-identical schedules, which lets a small response attest to
/// byte-identical compilation without shipping the whole movement plan.
pub fn schedule_digest(result: &CompilationResult) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(result.machine.fingerprint());
    h.write_f64(result.interaction_radius_um);
    h.write_usize(result.num_qubits);
    for p in &result.home_positions {
        h.write_f64(p.x).write_f64(p.y);
    }
    for q in &result.aod_selection.selected {
        h.write_u64(u64::from(*q));
    }
    h.write_usize(result.schedule.layers.len());
    for layer in &result.schedule.layers {
        h.write_usize(layer.gate_indices.len());
        for &g in &layer.gate_indices {
            h.write_usize(g);
        }
        h.write_usize(layer.moves.len());
        for m in &layer.moves {
            h.write_u64(u64::from(m.q)).write_f64(m.x).write_f64(m.y);
        }
        h.write_usize(layer.trap_changes);
        h.write_f64(layer.move_distance_um);
        h.write_f64(layer.return_distance_um);
    }
    h.finish()
}

/// The canonical compilation payload: every headline metric of the paper's
/// evaluation plus the schedule digest. Pure function of the
/// [`CompilationResult`], so a served response and a direct in-process
/// compile encode byte-identically.
pub fn compile_payload(result: &CompilationResult) -> Json {
    let stats = &result.schedule.stats;
    Json::obj(vec![
        ("qubits", Json::Int(result.num_qubits as u64)),
        ("cz", Json::Int(stats.cz_count as u64)),
        ("u3", Json::Int(stats.u3_count as u64)),
        ("swaps", Json::Int(stats.swap_count as u64)),
        ("layers", Json::Int(stats.layer_count as u64)),
        ("moves", Json::Int(stats.moves_planned as u64)),
        ("trap_changes", Json::Int(stats.trap_changes as u64)),
        ("radius_um", Json::Num(result.interaction_radius_um)),
        ("move_distance_um", Json::Num(stats.total_move_distance_um)),
        (
            "aod",
            Json::Arr(result.aod_selection.selected.iter().map(|&q| Json::Int(q as u64)).collect()),
        ),
        ("digest", Json::Str(format!("{:016x}", schedule_digest(result)))),
    ])
}

/// Encode a request as its wire line (inverse of [`parse_request`]).
pub fn encode_request(request: &Request) -> String {
    match request {
        Request::Stats => "{\"cmd\":\"stats\"}".to_string(),
        Request::Metrics => "{\"cmd\":\"metrics\"}".to_string(),
        Request::Trace { limit } => {
            Json::obj(vec![("cmd", Json::Str("trace".into())), ("limit", Json::Int(*limit as u64))])
                .encode()
        }
        Request::Ping => "{\"cmd\":\"ping\"}".to_string(),
        Request::Shutdown => "{\"cmd\":\"shutdown\"}".to_string(),
        Request::Drain => "{\"cmd\":\"drain\"}".to_string(),
        Request::Shards => "{\"cmd\":\"shards\"}".to_string(),
        Request::Cache(op) => match op {
            CacheOp::Flush => "{\"cmd\":\"cache\",\"op\":\"flush\"}".to_string(),
            CacheOp::Persist => "{\"cmd\":\"cache\",\"op\":\"persist\"}".to_string(),
            CacheOp::Resize { bytes } => {
                format!("{{\"cmd\":\"cache\",\"op\":\"resize\",\"bytes\":{bytes}}}")
            }
        },
        Request::Submit(s) => Json::obj(submit_pairs("submit", s)).encode(),
        Request::SubmitSweep(s) => {
            let mut pairs = submit_pairs("submit-sweep", &s.submit);
            let points = s
                .params
                .iter()
                .map(|point| Json::Arr(point.iter().map(|&x| Json::Num(x)).collect()))
                .collect();
            pairs.push(("params", Json::Arr(points)));
            Json::obj(pairs).encode()
        }
    }
}

fn submit_pairs<'a>(cmd: &'a str, s: &SubmitRequest) -> Vec<(&'a str, Json)> {
    let mut pairs = vec![("cmd", Json::Str(cmd.into()))];
    match &s.source {
        SubmitSource::Qasm(text) => pairs.push(("qasm", Json::Str(text.clone()))),
        SubmitSource::Workload(name) => pairs.push(("workload", Json::Str(name.clone()))),
    }
    pairs.push(("seed", Json::Int(s.seed)));
    pairs.push(("machine", Json::Str(s.machine.clone())));
    if let Some(dim) = s.aod_dim {
        pairs.push(("aod_dim", Json::Int(dim as u64)));
    }
    pairs.push(("quick", Json::Bool(s.quick)));
    pairs.push(("return_home", Json::Bool(s.return_home)));
    if s.scheduling == SchedulingMode::MultiMover {
        pairs.push(("scheduling", Json::Str("multi-mover".into())));
    }
    pairs.push(("priority", Json::Int(u64::from(s.priority))));
    if let Some(id) = s.id {
        pairs.push(("id", Json::Int(id)));
    }
    if let Some(trace) = &s.trace {
        pairs.push(("trace_id", Json::Str(trace.clone())));
    }
    pairs
}

impl Default for SubmitRequest {
    fn default() -> Self {
        Self {
            source: SubmitSource::Workload("QFT".into()),
            seed: 0,
            machine: "quera".into(),
            aod_dim: None,
            quick: false,
            return_home: true,
            scheduling: SchedulingMode::Single,
            priority: DEFAULT_PRIORITY,
            id: None,
            trace: None,
        }
    }
}

/// `{"ok":false,"error":...}` with the client-supplied id echoed when known.
pub fn error_response(message: &str, id: Option<u64>) -> String {
    let mut pairs = vec![("ok", Json::Bool(false)), ("error", Json::Str(message.to_string()))];
    if let Some(id) = id {
        pairs.push(("id", Json::Int(id)));
    }
    Json::obj(pairs).encode()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submit(line: &str) -> SubmitRequest {
        match parse_request(line).unwrap() {
            Request::Submit(s) => *s,
            other => panic!("expected submit, got {other:?}"),
        }
    }

    #[test]
    fn parses_control_commands() {
        assert_eq!(parse_request("{\"cmd\":\"ping\"}").unwrap(), Request::Ping);
        assert_eq!(parse_request("{\"cmd\":\"stats\"}").unwrap(), Request::Stats);
        assert_eq!(parse_request("{\"cmd\":\"shutdown\"}").unwrap(), Request::Shutdown);
        assert!(parse_request("{\"cmd\":\"nope\"}").is_err());
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{}").is_err());
    }

    #[test]
    fn parses_admin_commands() {
        assert_eq!(parse_request("{\"cmd\":\"drain\"}").unwrap(), Request::Drain);
        assert_eq!(parse_request("{\"cmd\":\"shards\"}").unwrap(), Request::Shards);
        assert_eq!(
            parse_request("{\"cmd\":\"cache\",\"op\":\"flush\"}").unwrap(),
            Request::Cache(CacheOp::Flush)
        );
        assert_eq!(
            parse_request("{\"cmd\":\"cache\",\"op\":\"persist\"}").unwrap(),
            Request::Cache(CacheOp::Persist)
        );
        assert_eq!(
            parse_request("{\"cmd\":\"cache\",\"op\":\"resize\",\"bytes\":4096}").unwrap(),
            Request::Cache(CacheOp::Resize { bytes: 4096 })
        );
        for bad in [
            "{\"cmd\":\"cache\"}",
            "{\"cmd\":\"cache\",\"op\":\"defrost\"}",
            "{\"cmd\":\"cache\",\"op\":\"resize\"}",
            "{\"cmd\":\"cache\",\"op\":\"resize\",\"bytes\":\"big\"}",
        ] {
            assert!(parse_request(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn submit_defaults_and_overrides() {
        let s = submit("{\"cmd\":\"submit\",\"workload\":\"QFT\"}");
        assert_eq!(s.source, SubmitSource::Workload("QFT".into()));
        assert_eq!(s.seed, 0);
        assert_eq!(s.machine, "quera");
        assert_eq!(s.priority, DEFAULT_PRIORITY);
        assert!(s.return_home);
        assert!(!s.quick);
        assert_eq!(s.scheduling, SchedulingMode::Single);
        assert!(s.id.is_none());

        let s = submit(
            "{\"cmd\":\"submit\",\"qasm\":\"OPENQASM 2.0;\",\"seed\":9,\"machine\":\"atom\",\
             \"quick\":true,\"return_home\":false,\"priority\":9,\"id\":3,\"aod_dim\":7}",
        );
        assert_eq!(s.source, SubmitSource::Qasm("OPENQASM 2.0;".into()));
        assert_eq!(s.seed, 9);
        assert_eq!(s.machine_spec().unwrap().name, "Atom-1225");
        assert_eq!(s.machine_spec().unwrap().aod_dim, 7);
        assert_eq!(s.priority, 9);
        assert_eq!(s.id, Some(3));
        assert!(!s.return_home && s.quick);
    }

    #[test]
    fn submit_validation_errors() {
        assert!(parse_request("{\"cmd\":\"submit\"}").is_err());
        assert!(parse_request("{\"cmd\":\"submit\",\"qasm\":\"x\",\"workload\":\"y\"}").is_err());
        assert!(parse_request("{\"cmd\":\"submit\",\"workload\":\"QFT\",\"priority\":10}").is_err());
        let s = submit("{\"cmd\":\"submit\",\"workload\":\"QFT\",\"machine\":\"ibm\"}");
        assert!(s.machine_spec().is_err());
    }

    #[test]
    fn config_mirrors_request_knobs() {
        let s = submit("{\"cmd\":\"submit\",\"workload\":\"ADD\",\"seed\":4,\"quick\":true}");
        let cfg = s.compiler_config();
        assert_eq!(cfg.seed, 4);
        assert_eq!(cfg.placement.seed, 4);
        assert_eq!(cfg.placement.max_iter, PlacementConfig::quick(4).max_iter);
        let slow = submit("{\"cmd\":\"submit\",\"workload\":\"ADD\",\"seed\":4}");
        assert_eq!(slow.compiler_config().placement.max_iter, PlacementConfig::default().max_iter);
    }

    #[test]
    fn circuit_hash_ignores_formatting_noise() {
        let tidy = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\n\
                    h q[0];\ncx q[0],q[1];\n";
        let noisy = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n\nqreg q[2];\ncreg c[2];\n\
                     h  q[0] ;\ncx q[0] , q[1];\n";
        let c = |text: &str| {
            submit(
                &Json::obj(vec![
                    ("cmd", Json::Str("submit".into())),
                    ("qasm", Json::Str(text.into())),
                ])
                .encode(),
            )
            .resolve_circuit()
            .unwrap()
        };
        assert_eq!(circuit_content_hash(&c(tidy)), circuit_content_hash(&c(noisy)));
    }

    #[test]
    fn payload_and_digest_are_deterministic_and_discriminating() {
        let s = submit("{\"cmd\":\"submit\",\"workload\":\"ADD\",\"seed\":1,\"quick\":true}");
        let circuit = s.resolve_circuit().unwrap();
        let compiler = s.build_compiler().unwrap();
        let a = compiler.compile(&circuit);
        let b = compiler.compile(&circuit);
        assert_eq!(compile_payload(&a).encode(), compile_payload(&b).encode());
        assert_eq!(schedule_digest(&a), schedule_digest(&b));

        let other = submit("{\"cmd\":\"submit\",\"workload\":\"ADD\",\"seed\":2,\"quick\":true}");
        let c = other.build_compiler().unwrap().compile(&other.resolve_circuit().unwrap());
        assert_ne!(schedule_digest(&a), schedule_digest(&c), "seed must steer the digest");
    }

    #[test]
    fn encode_parse_round_trips_every_request() {
        let requests = vec![
            Request::Ping,
            Request::Stats,
            Request::Metrics,
            Request::Trace { limit: 7 },
            Request::Shutdown,
            Request::Drain,
            Request::Shards,
            Request::Cache(CacheOp::Flush),
            Request::Cache(CacheOp::Persist),
            Request::Cache(CacheOp::Resize { bytes: 1 << 20 }),
            Request::Submit(Box::new(SubmitRequest {
                source: SubmitSource::Qasm("OPENQASM 2.0;\nqreg q[1];\n".into()),
                seed: 11,
                machine: "atom".into(),
                aod_dim: Some(12),
                quick: true,
                return_home: false,
                scheduling: SchedulingMode::Single,
                priority: 8,
                id: Some(42),
                trace: Some("corr-77af".into()),
            })),
            Request::Submit(Box::new(SubmitRequest {
                scheduling: SchedulingMode::MultiMover,
                ..Default::default()
            })),
            Request::Submit(Box::default()),
            Request::SubmitSweep(Box::new(SweepRequest {
                submit: SubmitRequest { seed: 7, id: Some(9), ..Default::default() },
                params: vec![vec![0.5, -1.25, 3.0], vec![0.0, 2.0, -0.75]],
            })),
        ];
        for r in requests {
            let line = encode_request(&r);
            assert!(!line.contains('\n'), "wire lines must be single-line: {line}");
            assert_eq!(parse_request(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn sweep_parse_shares_submit_fields_and_validates_params() {
        let r = parse_request(
            "{\"cmd\":\"submit-sweep\",\"workload\":\"QAOA\",\"seed\":4,\"quick\":true,\
             \"params\":[[0.1,0.2],[0.3,0.4]]}",
        )
        .unwrap();
        let Request::SubmitSweep(s) = r else { panic!("expected sweep") };
        assert_eq!(s.submit.source, SubmitSource::Workload("QAOA".into()));
        assert_eq!(s.submit.seed, 4);
        assert!(s.submit.quick);
        assert_eq!(s.params, vec![vec![0.1, 0.2], vec![0.3, 0.4]]);

        // Structured parse errors: missing, empty, and malformed params.
        for bad in [
            "{\"cmd\":\"submit-sweep\",\"workload\":\"QAOA\"}",
            "{\"cmd\":\"submit-sweep\",\"workload\":\"QAOA\",\"params\":[]}",
            "{\"cmd\":\"submit-sweep\",\"workload\":\"QAOA\",\"params\":[0.1]}",
            "{\"cmd\":\"submit-sweep\",\"workload\":\"QAOA\",\"params\":[[\"x\"]]}",
            "{\"cmd\":\"submit-sweep\",\"params\":[[0.1]]}",
        ] {
            assert!(parse_request(bad).is_err(), "{bad}");
        }

        // Infinity parses (1e999 overflows to inf); the *server* refuses it
        // against the template, so the parse layer must stay permissive.
        let r =
            parse_request("{\"cmd\":\"submit-sweep\",\"workload\":\"QAOA\",\"params\":[[1e999]]}")
                .unwrap();
        let Request::SubmitSweep(s) = r else { panic!("expected sweep") };
        assert!(s.params[0][0].is_infinite());
    }

    #[test]
    fn metrics_and_trace_commands_parse() {
        assert_eq!(parse_request("{\"cmd\":\"metrics\"}").unwrap(), Request::Metrics);
        assert_eq!(
            parse_request("{\"cmd\":\"trace\"}").unwrap(),
            Request::Trace { limit: DEFAULT_TRACE_LIMIT }
        );
        assert_eq!(
            parse_request("{\"cmd\":\"trace\",\"limit\":9}").unwrap(),
            Request::Trace { limit: 9 }
        );
        assert!(parse_request("{\"cmd\":\"trace\",\"limit\":0}").is_err());
        assert!(parse_request("{\"cmd\":\"trace\",\"limit\":\"x\"}").is_err());
    }

    #[test]
    fn scheduling_field_parses_and_steers_config() {
        let s = submit("{\"cmd\":\"submit\",\"workload\":\"QFT\",\"scheduling\":\"single\"}");
        assert_eq!(s.scheduling, SchedulingMode::Single);
        let s = submit("{\"cmd\":\"submit\",\"workload\":\"QFT\",\"scheduling\":\"multi-mover\"}");
        assert_eq!(s.scheduling, SchedulingMode::MultiMover);
        assert_eq!(s.compiler_config().scheduling, SchedulingMode::MultiMover);
        assert!(parse_request("{\"cmd\":\"submit\",\"workload\":\"QFT\",\"scheduling\":\"x\"}")
            .is_err());
        // Default-mode encodes omit the key: pre-ablation servers keep
        // accepting lines from new clients.
        assert!(!encode_request(&Request::Submit(Box::default())).contains("scheduling"));
    }

    #[test]
    fn trace_id_field_parses_and_defaults_off() {
        let s = submit("{\"cmd\":\"submit\",\"workload\":\"QFT\"}");
        assert!(s.trace.is_none());
        let s = submit("{\"cmd\":\"submit\",\"workload\":\"QFT\",\"trace_id\":\"abc-123\"}");
        assert_eq!(s.trace.as_deref(), Some("abc-123"));
    }

    #[test]
    fn error_response_shape() {
        assert_eq!(error_response("boom", None), "{\"ok\":false,\"error\":\"boom\"}");
        assert_eq!(error_response("boom", Some(4)), "{\"ok\":false,\"error\":\"boom\",\"id\":4}");
    }
}
